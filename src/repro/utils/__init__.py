"""Shared utilities: RNG management, logging, timing and serialization."""

from repro.utils.logging import get_logger
from repro.utils.random import new_rng, seed_everything, split_rng
from repro.utils.serialization import load_json, load_npz, save_json, save_npz
from repro.utils.timer import Timer, VirtualClock

__all__ = [
    "get_logger",
    "new_rng",
    "seed_everything",
    "split_rng",
    "load_json",
    "load_npz",
    "save_json",
    "save_npz",
    "Timer",
    "VirtualClock",
]
