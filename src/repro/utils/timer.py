"""Wall-clock and virtual-clock timers.

The search ablations (paper Fig. 9) compare strategies by *search time*.
Real wall-clock time would make those benchmarks machine-dependent and slow,
so the library also provides :class:`VirtualClock`, which components advance
by the simulated cost of the work they perform (e.g. an "on-device
measurement" advances it by the measurement round-trip).  Experiments read
either clock through the same interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "VirtualClock"]


@dataclass
class Timer:
    """A simple cumulative wall-clock timer usable as a context manager."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or restart) the timer.

        Restarting a running timer banks the in-flight interval into
        :attr:`elapsed` before restarting, so no measured time is silently
        discarded (the historical behaviour dropped it).
        """
        now = time.perf_counter()
        if self._started_at is not None:
            self.elapsed += now - self._started_at
        self._started_at = now
        return self

    def stop(self) -> float:
        """Stop the timer and accumulate the elapsed interval."""
        if self._started_at is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class VirtualClock:
    """A monotonically advancing simulated clock (seconds).

    Components such as :class:`repro.hardware.measurement.DeviceMeasurement`
    advance the clock by the simulated duration of each operation, so search
    ablations can report "search time" deterministically.
    """

    now: float = 0.0

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by a negative duration: {seconds}")
        self.now += float(seconds)
        return self.now

    def reset(self) -> None:
        """Reset the clock to zero."""
        self.now = 0.0
