"""JSON / npz serialization helpers used by checkpoints and experiments."""

from __future__ import annotations

import dataclasses
import json
import pathlib
from enum import Enum
from typing import Any, Mapping

import numpy as np

__all__ = ["save_json", "load_json", "save_npz", "load_npz", "to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Convert ``obj`` into plain JSON-compatible Python objects.

    Handles numpy scalars and arrays, dataclasses, enums, sets, and nested
    containers of those.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialise object of type {type(obj).__name__}")


def save_json(path: str | pathlib.Path, obj: Any, indent: int = 2) -> pathlib.Path:
    """Serialise ``obj`` to JSON at ``path``, creating parent directories."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
    return path


def load_json(path: str | pathlib.Path) -> Any:
    """Load a JSON document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_npz(path: str | pathlib.Path, arrays: Mapping[str, np.ndarray]) -> pathlib.Path:
    """Save a mapping of named arrays to a compressed ``.npz`` file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in arrays.items()})
    return path


def load_npz(path: str | pathlib.Path) -> dict[str, np.ndarray]:
    """Load all arrays from a ``.npz`` file into a dictionary."""
    with np.load(path, allow_pickle=False) as data:
        return {name: data[name] for name in data.files}
