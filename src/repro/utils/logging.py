"""Logging helpers with a single shared configuration."""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"
_CONFIGURED = False


def _configure_root() -> None:
    """Attach a stream handler to the package root logger exactly once."""
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the package namespace.

    Args:
        name: Dotted suffix, e.g. ``"nas.search"``.

    Returns:
        A :class:`logging.Logger` named ``repro.<name>``.
    """
    _configure_root()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int | str) -> None:
    """Set the verbosity of all package loggers.

    Args:
        level: A ``logging`` level constant or name (e.g. ``"INFO"``).
    """
    _configure_root()
    logging.getLogger(_ROOT_NAME).setLevel(level)
