"""Random-number-generator helpers.

All stochastic components of the library (dataset generation, supernet path
sampling, evolutionary search, measurement noise) take an explicit
``numpy.random.Generator`` so experiments are reproducible and components can
be seeded independently.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["new_rng", "split_rng", "seed_everything"]


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a fresh :class:`numpy.random.Generator`.

    Args:
        seed: Seed for the generator.  ``None`` draws entropy from the OS.

    Returns:
        A ``numpy.random.Generator`` backed by PCG64.
    """
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from ``rng``.

    Useful when a component needs to hand sub-generators to parallel or
    repeated sub-tasks without correlating their streams.

    Args:
        rng: Parent generator (advanced by this call).
        n: Number of child generators to create.

    Returns:
        List of ``n`` independent generators.
    """
    if n < 0:
        raise ValueError(f"number of child generators must be >= 0, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and numpy's global RNGs and return a local generator.

    Library code never relies on global RNG state, but examples and
    benchmarks call this once at start-up for belt-and-braces determinism.

    Args:
        seed: The global seed.

    Returns:
        A fresh generator seeded with ``seed`` for subsequent explicit use.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))
    return new_rng(seed)
