"""Bounded LRU caching for the serving engine.

Two cache uses share the same :class:`LRUCache` implementation:

* **Edge-index caching** — KNN graph construction is the dominant inference
  cost HGNAS identifies (paper Fig. 3), and it depends only on the feature
  matrix of one cloud, never on its batch neighbours.  The
  :class:`CachingGraphBuilder` therefore builds (or reuses) the local edge
  index per cloud, keyed by a content hash of the cloud's quantised
  features, and offsets it into the stacked node set.
* **Result caching** — the engine stores final logits per
  ``(model, input fingerprint)`` so repeated inputs skip inference
  entirely.

Keys are content hashes of quantised coordinates (see
:func:`cloud_fingerprint`), so byte-identical and near-identical inputs
(within quantisation precision) hit the same entry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterable

import numpy as np

from repro.graph.knn import knn_graph
from repro.graph.sampling import random_graph
from repro.nn.dtype import WIDE_DTYPE, as_float_array

__all__ = ["CacheStats", "LRUCache", "cloud_fingerprint", "CachingGraphBuilder"]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss counters.

    A ``capacity`` of 0 disables storage entirely: every lookup misses and
    ``put`` is a no-op, which lets callers toggle caching without branching.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the oldest entry when full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def stats(self) -> CacheStats:
        """Return a snapshot of the cache counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )


def cloud_fingerprint(
    points: np.ndarray, decimals: int = 6, extra: Iterable[Hashable] = ()
) -> str:
    """Content hash of a point cloud, stable under sub-precision jitter.

    Coordinates are rounded to ``decimals`` before hashing, so floating-point
    noise below the quantisation step maps to the same key while any real
    geometric difference changes it.  ``extra`` mixes additional context
    (e.g. the neighbourhood size ``k``) into the digest.
    """
    quantised = np.round(np.asarray(points, dtype=WIDE_DTYPE), decimals)
    # Normalise -0.0 so that -1e-12 and +1e-12 round to the same bytes.
    quantised = quantised + 0.0
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(quantised.shape).encode())
    digest.update(quantised.tobytes())
    for item in extra:
        digest.update(repr(item).encode())
    return digest.hexdigest()


class CachingGraphBuilder:
    """Per-cloud graph construction with content-addressed edge reuse.

    Implements the :data:`repro.nas.derived.GraphBuilder` protocol.  Each
    cloud of the batch is hashed (quantised features + method + ``k``); the
    local edge index is fetched from the LRU cache or built fresh and then
    offset into the stacked node set.  Random sampling is seeded from the
    fingerprint, which makes the builder fully deterministic: identical
    inputs yield identical graphs whether or not the cache is enabled — the
    property behind the engine's bit-identical cached/uncached results.
    """

    def __init__(self, cache: LRUCache | None = None, decimals: int = 6, shared=None):
        self.cache = cache
        self.decimals = decimals
        #: Optional cross-process tier (a
        #: :class:`repro.serving.diskcache.SharedArrayCache`): edge indices
        #: built by one pool worker are reused by its siblings.  Edge keys
        #: depend only on cloud geometry + method + k, never on any
        #: per-process state, so they are shareable as-is; rebuilt edges are
        #: deterministic, so the tier cannot change results.
        self.shared = shared

    def _build_local(self, method: str, features: np.ndarray, k: int, key: str) -> np.ndarray:
        if method == "knn":
            return knn_graph(features, k)
        if method == "random":
            rng = np.random.default_rng(int(key[:15], 16))
            return random_graph(features.shape[0], k, rng)
        raise ValueError(f"unknown sample method '{method}'")

    def __call__(
        self, method: str, features: np.ndarray, batch_vector: np.ndarray, k: int
    ) -> np.ndarray:
        # Preserve the compute dtype; fingerprints quantise to float64
        # internally so cache keys stay dtype-independent.
        features = as_float_array(features)
        batch_vector = np.asarray(batch_vector, dtype=np.int64)
        edges: list[np.ndarray] = []
        for graph_id in np.unique(batch_vector):
            node_ids = np.flatnonzero(batch_vector == graph_id)
            cloud = features[node_ids]
            key = cloud_fingerprint(cloud, self.decimals, extra=(method, k))
            local = self.cache.get(key) if self.cache is not None else None
            if local is None and self.shared is not None:
                local = self.shared.get(key)
            if local is None:
                local = self._build_local(method, cloud, k, key)
                if self.shared is not None:
                    self.shared.put_if_absent(key, local)
            if self.cache is not None and key not in self.cache:
                self.cache.put(key, local)
            edges.append(node_ids[local])
        if not edges:
            return np.zeros((2, 0), dtype=np.int64)
        return np.concatenate(edges, axis=1)
