"""Multi-process serving: a pool of worker engines behind one frontend.

One synchronous :class:`~repro.serving.engine.InferenceEngine` caps
aggregate throughput at a single core.  :class:`WorkerPoolEngine` spawns N
worker processes, each hosting a full engine over the same deployments
(the registry is snapshotted to disk and every worker loads it), and
serves requests through a future-based frontend:

1. **Admission control runs in the frontend** — SLO and queue-depth
   rejection happens *before* any IPC, so a request the cost model would
   refuse never pays serialization or a queue round trip.  Worker engines
   run with admission disabled; a rejection is therefore counted exactly
   once, in the frontend's telemetry.
2. **Dispatch** is least-loaded: each admitted request goes to the live
   worker with the fewest in-flight requests, onto that worker's own task
   queue, where the worker micro-batches whatever has accumulated.
3. **Results** come back over a shared result queue and resolve
   :class:`concurrent.futures.Future` objects, so callers can block
   (:meth:`WorkerPoolEngine.request`), fan out
   (:meth:`~WorkerPoolEngine.submit_many`), or await them from asyncio
   (:mod:`repro.serving.frontend`).
4. **Deadlines**: every request carries ``enqueue + request_timeout_s``;
   a worker drops expired requests without executing them and the
   frontend fails the future with :class:`DeadlineExceededError`.
5. **Crash handling + supervision**: a worker process that dies (or goes
   silent past the heartbeat timeout — a stall) is detected by the
   collector loop; its in-flight requests are requeued once onto a
   surviving worker (then failed with :class:`WorkerCrashError`), and the
   slot itself is restarted with bounded exponential backoff up to
   ``max_restarts`` times, after which the pool degrades gracefully to
   the surviving workers.  A frontend sweep force-fails any future still
   pending past its deadline plus a grace period, so no caller ever
   hangs on a request a dead worker never dequeued.
6. **Shared cache tier**: workers share a disk-backed result/edge cache
   (:mod:`repro.serving.diskcache`) under the pool root, so a cloud
   served by worker 0 is a cache hit on worker 3.
7. **Telemetry**: each worker ships its
   :meth:`~repro.serving.telemetry.TelemetryStore.snapshot` (plus cache
   stats and its obs metrics snapshot) on shutdown; the frontend merges
   them into one fleet-wide view with per-worker breakdowns.
"""

from __future__ import annotations

import dataclasses
import pathlib
import queue as queue_module
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.faults import fault_point
from repro.hardware.latency import estimate_latency
from repro.nn.dtype import get_default_dtype
from repro.obs.metrics import get_metrics, merge_snapshots
from repro.serving.cache import CacheStats
from repro.serving.engine import AdmissionError, EngineConfig, InferenceResult, validate_points
from repro.serving.registry import DeployedModel, ModelRegistry
from repro.serving.telemetry import TelemetryStore
from repro.utils.logging import get_logger

__all__ = [
    "DeadlineExceededError",
    "WorkerCrashError",
    "PoolConfig",
    "WorkerPoolEngine",
]

_LOGGER = get_logger("serving.pool")


class DeadlineExceededError(RuntimeError):
    """Raised when a request's deadline expired before it finished."""


class WorkerCrashError(RuntimeError):
    """Raised when the worker serving a request died and retries ran out."""


@dataclass(frozen=True)
class PoolConfig:
    """Worker-pool policy knobs."""

    #: Number of worker processes (each hosts a full engine).
    workers: int = 2
    #: Per-request deadline, from admission to result delivery.
    request_timeout_s: float = 30.0
    #: Frontend queue-depth cap: in-flight requests beyond this are rejected
    #: at admission, before any IPC.
    max_queue_depth: int = 1024
    #: Enable the cross-process disk cache tier under the pool root.
    shared_cache: bool = True
    #: How many times a crashed worker's in-flight request is requeued onto
    #: a surviving worker before its future fails.
    max_retries: int = 1
    #: ``multiprocessing`` start method; ``None`` picks ``fork`` where
    #: available (fast startup) and falls back to ``spawn``.
    start_method: str | None = None
    #: Collector poll interval (also bounds crash-detection latency).
    poll_interval_s: float = 0.05
    #: Compute dtype workers serve under; ``None`` captures the ambient
    #: default dtype at pool construction.
    dtype: str | None = None
    #: Supervisor: how many times one worker slot may be restarted after a
    #: crash or stall before it is left dead (graceful degradation).
    max_restarts: int = 2
    #: Initial restart backoff; doubles per restart of the same worker.
    restart_backoff_s: float = 0.1
    #: Ceiling on the per-worker restart backoff.
    restart_backoff_max_s: float = 5.0
    #: How often an idle worker emits a liveness heartbeat.
    heartbeat_interval_s: float = 0.5
    #: A live process silent for longer than this is treated as stalled and
    #: killed+restarted by the supervisor; ``0`` disables stall detection.
    heartbeat_timeout_s: float = 10.0
    #: Extra slack past a request's deadline before the frontend force-fails
    #: its future (covers requests a worker never got to dequeue).
    deadline_grace_s: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.request_timeout_s <= 0:
            raise ValueError(f"request_timeout_s must be positive, got {self.request_timeout_s}")
        if self.max_queue_depth <= 0:
            raise ValueError(f"max_queue_depth must be positive, got {self.max_queue_depth}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.poll_interval_s <= 0:
            raise ValueError(f"poll_interval_s must be positive, got {self.poll_interval_s}")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start_method '{self.start_method}'")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.restart_backoff_s < 0 or self.restart_backoff_max_s < 0:
            raise ValueError("restart backoffs must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise ValueError(f"heartbeat_interval_s must be positive, got {self.heartbeat_interval_s}")
        if self.heartbeat_timeout_s < 0:
            raise ValueError(f"heartbeat_timeout_s must be >= 0, got {self.heartbeat_timeout_s}")
        if 0 < self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError("heartbeat_timeout_s must exceed heartbeat_interval_s")
        if self.deadline_grace_s < 0:
            raise ValueError(f"deadline_grace_s must be >= 0, got {self.deadline_grace_s}")


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _drain_batch(task_queue, first, max_batch_size: int) -> tuple[list, list]:
    """Gather up to ``max_batch_size`` request messages; control messages pass through."""
    requests, control = [first], []
    while len(requests) < max_batch_size:
        try:
            message = task_queue.get_nowait()
        except queue_module.Empty:
            break
        if message[0] == "req":
            requests.append(message)
        else:
            control.append(message)
            break
    return requests, control


def _result_payload(result: InferenceResult) -> dict:
    return {
        "model": result.model,
        "label": result.label,
        "logits": result.logits,
        "probabilities": result.probabilities,
        "latency_ms": result.latency_ms,
        "queue_ms": result.queue_ms,
        "batch_size": result.batch_size,
        "from_cache": result.from_cache,
        "estimated_device_ms": result.estimated_device_ms,
    }


def _serve_messages(engine, worker_id: int, messages: list, result_queue) -> None:
    """Serve one micro-batch of ``("req", ...)`` messages through the engine."""
    live: list[tuple] = []
    now = time.time()
    for message in messages:
        _, request_id, _, _, deadline = message
        if deadline is not None and now > deadline:
            result_queue.put(("err", request_id, worker_id, "DeadlineExceeded", "deadline expired in queue"))
        else:
            live.append(message)
    # Group consecutively by model so one engine.submit_many call serves a
    # whole micro-batch (order inside a group is preserved).
    index = 0
    while index < len(live):
        model = live[index][2]
        group = [live[index]]
        index += 1
        while index < len(live) and live[index][2] == model:
            group.append(live[index])
            index += 1
        try:
            results = engine.submit_many(model, [message[3] for message in group])
        except Exception:
            # Isolate the poisoned request: replay the group one by one so
            # healthy requests of the same batch still get served.
            for message in group:
                try:
                    result = engine.submit(model, message[3])
                except Exception as error:  # noqa: BLE001 - forwarded to the frontend
                    result_queue.put(
                        ("err", message[1], worker_id, type(error).__name__, str(error))
                    )
                else:
                    get_metrics().count("serving.worker.served")
                    result_queue.put(("ok", message[1], worker_id, _result_payload(result)))
            continue
        get_metrics().count("serving.worker.served", len(group))
        for message, result in zip(group, results):
            result_queue.put(("ok", message[1], worker_id, _result_payload(result)))


def _worker_main(
    worker_id: int,
    registry_dir: str,
    engine_config: EngineConfig,
    dtype: str,
    task_queue,
    result_queue,
    heartbeat_interval_s: float = 0.5,
) -> None:
    """Entry point of one worker process: engine loop over the task queue.

    Heartbeats are emitted *from the serve loop itself* (after startup, on
    every idle poll timeout, and after every batch) — a worker whose loop
    is wedged mid-batch goes silent and the supervisor can tell it apart
    from an idle one, which a side thread's heartbeats could not.
    """
    try:
        from repro.nn.dtype import set_default_dtype
        from repro.obs import reset_observability
        from repro.serving.engine import InferenceEngine

        # A forked worker inherits the parent's observability state; a
        # spawned one starts clean either way.  Reset so this worker's
        # snapshot covers exactly its own work.
        reset_observability()
        set_default_dtype(dtype)
        registry = ModelRegistry.load(registry_dir)
        engine = InferenceEngine(registry, engine_config)
    except Exception as error:  # noqa: BLE001 - startup failure, reported then fatal
        result_queue.put(("fatal", worker_id, f"{type(error).__name__}: {error}"))
        return
    result_queue.put(("hb", worker_id))
    while True:
        try:
            message = task_queue.get(timeout=heartbeat_interval_s)
        except queue_module.Empty:
            result_queue.put(("hb", worker_id))
            continue
        if message[0] == "req":
            # Chaos hook: a plan can crash this worker (hard exit, no
            # cleanup), stall it (sleep past the heartbeat timeout), or
            # raise in the serve path — exactly where production faults bite.
            fault_point("serving.worker.serve", worker=worker_id)
            requests, control = _drain_batch(task_queue, message, engine_config.max_batch_size)
            _serve_messages(engine, worker_id, requests, result_queue)
            result_queue.put(("hb", worker_id))
            for extra in control:
                if _handle_control(engine, worker_id, extra, result_queue):
                    return
        elif _handle_control(engine, worker_id, message, result_queue):
            return


def _handle_control(engine, worker_id: int, message, result_queue) -> bool:
    """Process a non-request message; returns True when the worker should exit."""
    if message[0] == "stop":
        cache_stats = {name: dataclasses.asdict(stats) for name, stats in engine.cache_stats().items()}
        if engine.shared_cache is not None:
            cache_stats["shared"]["writes"] = engine.shared_cache.writes
        result_queue.put(
            (
                "bye",
                worker_id,
                {
                    "telemetry": engine.telemetry.snapshot(),
                    "caches": cache_stats,
                    "metrics": get_metrics().snapshot(),
                },
            )
        )
        return True
    if message[0] == "crash":  # test hook: simulate a hard worker death
        import os

        os._exit(13)
    return False


# ---------------------------------------------------------------------- #
# Frontend
# ---------------------------------------------------------------------- #
@dataclass
class _InFlight:
    """Frontend bookkeeping for one dispatched request."""

    future: Future
    model: str
    points: np.ndarray
    worker_id: int
    deadline: float
    retries: int = 0


class _Worker:
    """Frontend handle of one worker slot (survives process restarts)."""

    def __init__(self, worker_id: int, process, task_queue):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.inflight = 0
        self.alive = True
        self.finished = False  # sent its shutdown snapshot
        self.restarts = 0
        self.last_heartbeat = time.time()
        self.next_restart_at = 0.0

    def is_running(self) -> bool:
        return self.alive and self.process.is_alive()


_ERROR_TYPES: dict[str, type[Exception]] = {
    "DeadlineExceeded": DeadlineExceededError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "AdmissionError": AdmissionError,
}


class WorkerPoolEngine:
    """N worker processes behind one admission-controlled frontend.

    Args:
        registry: Deployments to serve.  Snapshotted to disk at
            construction (:meth:`ModelRegistry.save`); every worker loads
            the snapshot, so all workers replicate the same models with
            bit-identical weights.
        config: Per-worker engine policy.  The frontend owns admission
            control, so workers run with it disabled; when the pool's
            shared cache is enabled, ``shared_cache_dir`` is pointed at
            the pool root unless the config already names one.
        pool_config: Pool-level policy (worker count, deadlines, crash
            retries, queue depth).
        root: Directory for the registry snapshot and the shared cache
            tier — pass the workspace root so cached results survive the
            pool.  ``None`` uses a temporary directory removed at
            shutdown.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: EngineConfig | None = None,
        pool_config: PoolConfig | None = None,
        root: str | pathlib.Path | None = None,
    ):
        import multiprocessing

        self.pool_config = pool_config or PoolConfig()
        self.registry = registry
        self._owns_root = root is None
        self.root = pathlib.Path(tempfile.mkdtemp(prefix="repro-pool-")) if root is None else pathlib.Path(root)
        config = config or EngineConfig()
        if self.pool_config.shared_cache and config.shared_cache_dir is None:
            config = dataclasses.replace(config, shared_cache_dir=str(self.root / "serving_cache"))
        self.config = config
        dtype = self.pool_config.dtype or str(np.dtype(get_default_dtype()))
        # Frontend-side telemetry: rejections (admission lives here) and
        # per-model request counts merged with worker snapshots at shutdown.
        self.telemetry = TelemetryStore(config.telemetry_window)
        self.worker_snapshots: dict[int, dict] = {}
        self.fleet_metrics: dict[str, dict] = {}
        self.requeued = 0
        self.worker_crashes = 0
        self.restarts = 0
        self.stalls = 0
        self.submitted = 0
        self._latency_estimates: dict[tuple[str, int], float] = {}
        self._lock = threading.Lock()
        self._inflight: dict[int, _InFlight] = {}
        self._next_request_id = 0
        self._shutdown = False
        self._all_done = threading.Event()

        registry_dir = self.root / "pool_registry"
        registry.save(registry_dir)
        method = self.pool_config.start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        # Kept for the supervisor: restarting a crashed worker re-launches
        # _worker_main with exactly the construction-time arguments.
        self._context = multiprocessing.get_context(method)
        self._registry_dir = registry_dir
        self._worker_config = dataclasses.replace(config, admission_control=False)
        self._dtype_str = dtype
        self._result_queue = self._context.Queue()
        self._workers: list[_Worker] = []
        for worker_id in range(self.pool_config.workers):
            process, task_queue = self._launch_worker(worker_id)
            self._workers.append(_Worker(worker_id, process, task_queue))
        self._collector = threading.Thread(target=self._collect_loop, name="pool-collector", daemon=True)
        self._collector.start()

    def _launch_worker(self, worker_id: int):
        """Start one worker process; returns ``(process, task_queue)``."""
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                worker_id,
                str(self._registry_dir),
                self._worker_config,
                self._dtype_str,
                task_queue,
                self._result_queue,
                self.pool_config.heartbeat_interval_s,
            ),
            daemon=True,
        )
        process.start()
        return process, task_queue

    # ------------------------------------------------------------------ #
    # Context manager
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "WorkerPoolEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Admission control (frontend side, before IPC)
    # ------------------------------------------------------------------ #
    def estimate_request_ms(self, entry: DeployedModel, num_points: int) -> float:
        """Cost-model latency of one request on the entry's target device."""
        key = (entry.name, num_points)
        if key not in self._latency_estimates:
            workload = entry.architecture.to_workload(
                num_points=num_points, k=entry.k, num_classes=entry.num_classes
            )
            self._latency_estimates[key] = estimate_latency(workload, entry.device).total_ms
        return self._latency_estimates[key]

    def _admit(self, entry: DeployedModel, points: np.ndarray) -> float:
        estimated = self.estimate_request_ms(entry, points.shape[0])
        if not self.config.admission_control:
            return estimated
        if entry.slo_ms is not None and estimated > entry.slo_ms:
            self.telemetry.model(entry.name).record_rejection()
            get_metrics().count("serving.pool.rejected")
            raise AdmissionError(
                f"request rejected: estimated {estimated:.2f} ms on {entry.device.name} "
                f"exceeds the {entry.slo_ms:.2f} ms SLO of model '{entry.name}'"
            )
        if len(self._inflight) >= self.pool_config.max_queue_depth:
            self.telemetry.model(entry.name).record_rejection()
            get_metrics().count("serving.pool.rejected")
            raise AdmissionError(
                f"request rejected: {len(self._inflight)} requests in flight at capacity "
                f"({self.pool_config.max_queue_depth})"
            )
        return estimated

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def submit(self, model: str, points: np.ndarray) -> Future:
        """Admit and dispatch one request; returns a future of its result.

        Raises:
            AdmissionError: When the request would blow the model's SLO
                budget or the frontend queue is at capacity (raised here,
                before any IPC).
            ValueError: When the cloud fails validation for this model.
            RuntimeError: When the pool has been shut down or every worker
                has crashed.
        """
        if self._shutdown:
            raise RuntimeError("pool has been shut down")
        entry = self.registry.get(model)
        points = validate_points(entry, points)
        self._admit(entry, points)
        deadline = time.time() + self.pool_config.request_timeout_s
        future: Future = Future()
        with self._lock:
            worker = self._pick_worker()
            request_id = self._next_request_id
            self._next_request_id += 1
            self._inflight[request_id] = _InFlight(
                future=future, model=model, points=points, worker_id=worker.worker_id, deadline=deadline
            )
            worker.inflight += 1
            self.submitted += 1
        self.telemetry.observe_queue_depth(len(self._inflight))
        get_metrics().count("serving.pool.dispatched")
        worker.task_queue.put(("req", request_id, model, points, deadline))
        return future

    def _pick_worker(self) -> _Worker:
        """Least-loaded live worker (callers hold the lock)."""
        candidates = [worker for worker in self._workers if worker.is_running()]
        if not candidates:
            raise RuntimeError("no live workers in the pool (all crashed or stopped)")
        return min(candidates, key=lambda worker: worker.inflight)

    def request(self, model: str, points: np.ndarray, timeout: float | None = None) -> InferenceResult:
        """Serve one cloud synchronously through the pool."""
        return self.submit(model, points).result(
            timeout=timeout if timeout is not None else self.pool_config.request_timeout_s + 5.0
        )

    def submit_many(self, model: str, clouds, return_exceptions: bool = False) -> list:
        """Serve a stream of clouds concurrently across the pool.

        Every cloud is admitted and dispatched before any result is
        awaited, so the workers run in parallel.  With
        ``return_exceptions``, per-request failures (admission, deadline,
        crash) come back in-place instead of raising; otherwise the first
        failure raises after all dispatched requests completed (unlike the
        in-process engine, already-dispatched work is not cancelled — the
        results are simply discarded).
        """
        outcomes: list = []
        futures: list[Future] = []
        for cloud in clouds:
            try:
                futures.append(self.submit(model, cloud))
                outcomes.append(None)
            except Exception as error:  # noqa: BLE001 - collected per request
                futures.append(None)  # type: ignore[arg-type]
                outcomes.append(error)
        timeout = self.pool_config.request_timeout_s + 5.0
        for index, future in enumerate(futures):
            if future is None:
                continue
            try:
                outcomes[index] = future.result(timeout=timeout)
            except Exception as error:  # noqa: BLE001 - collected per request
                outcomes[index] = error
        if not return_exceptions:
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
        return outcomes

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight; returns whether it emptied."""
        limit = time.monotonic() + (timeout if timeout is not None else self.pool_config.request_timeout_s)
        while time.monotonic() < limit:
            with self._lock:
                if not self._inflight:
                    return True
            time.sleep(self.pool_config.poll_interval_s)
        with self._lock:
            return not self._inflight

    # ------------------------------------------------------------------ #
    # Result collection / crash handling
    # ------------------------------------------------------------------ #
    def _collect_loop(self) -> None:
        last_supervise = 0.0
        while True:
            try:
                message = self._result_queue.get(timeout=self.pool_config.poll_interval_s)
            except queue_module.Empty:
                message = None
            # Supervision runs on idle polls *and* (throttled) under load,
            # so a steady request stream cannot starve crash/stall/deadline
            # detection.
            now = time.monotonic()
            if message is None or now - last_supervise >= self.pool_config.poll_interval_s:
                last_supervise = now
                self._check_workers()
                self._expire_overdue()
                if self._finished():
                    self._all_done.set()
                    if self._shutdown:
                        return
            if message is None:
                continue
            kind = message[0]
            if kind == "ok":
                self._beat(message[2])
                self._resolve(message[1], message[2], message[3])
            elif kind == "err":
                self._beat(message[2])
                self._fail(message[1], message[2], message[3], message[4])
            elif kind == "hb":
                self._beat(message[1])
            elif kind == "bye":
                self._on_bye(message[1], message[2])
            elif kind == "fatal":
                self._on_fatal(message[1], message[2])

    def _beat(self, worker_id: int) -> None:
        for worker in self._workers:
            if worker.worker_id == worker_id:
                worker.last_heartbeat = time.time()

    def _finished(self) -> bool:
        return self._shutdown and all(worker.finished or not worker.is_running() for worker in self._workers)

    def _take(self, request_id: int) -> _InFlight | None:
        with self._lock:
            slot = self._inflight.pop(request_id, None)
            if slot is not None:
                for worker in self._workers:
                    if worker.worker_id == slot.worker_id:
                        worker.inflight -= 1
        return slot

    def _resolve(self, request_id: int, worker_id: int, payload: dict) -> None:
        slot = self._take(request_id)
        if slot is None or slot.future.done():
            return  # duplicate delivery after a requeue race
        # Request telemetry is recorded by the worker engine that served it
        # (shipped in its shutdown snapshot); the frontend only contributes
        # rejections and queue depth, so merged fleet totals equal the sum
        # of per-worker totals with nothing counted twice.
        slot.future.set_result(InferenceResult(request_id=request_id, worker=worker_id, **payload))

    def _fail(self, request_id: int, worker_id: int, error_type: str, message: str) -> None:
        slot = self._take(request_id)
        if slot is None or slot.future.done():
            return
        if error_type == "DeadlineExceeded":
            get_metrics().count("serving.pool.deadline_expired")
        exception = _ERROR_TYPES.get(error_type, RuntimeError)(f"worker {worker_id}: {message}")
        slot.future.set_exception(exception)

    def _on_bye(self, worker_id: int, snapshot: dict) -> None:
        self.worker_snapshots[worker_id] = snapshot
        for worker in self._workers:
            if worker.worker_id == worker_id:
                worker.finished = True
                worker.alive = False

    def _on_fatal(self, worker_id: int, message: str) -> None:
        _LOGGER.error("pool worker %d failed to start: %s", worker_id, message)
        for worker in self._workers:
            if worker.worker_id == worker_id:
                worker.alive = False
                self._schedule_restart(worker)
        self._reassign(worker_id, reason=f"worker {worker_id} failed to start: {message}")

    def _schedule_restart(self, worker: _Worker) -> None:
        backoff = min(
            self.pool_config.restart_backoff_s * 2.0**worker.restarts,
            self.pool_config.restart_backoff_max_s,
        )
        worker.next_restart_at = time.time() + backoff

    def _on_crash(self, worker: _Worker, reason: str) -> None:
        worker.alive = False
        self.worker_crashes += 1
        get_metrics().count("serving.pool.worker_crashes")
        self._schedule_restart(worker)
        self._reassign(worker.worker_id, reason=reason)

    def _check_workers(self) -> None:
        """Supervisor pass: detect crashes and stalls, restart within budget."""
        now = time.time()
        config = self.pool_config
        for worker in self._workers:
            if not worker.alive or worker.finished:
                continue
            if not worker.process.is_alive():
                _LOGGER.warning("pool worker %d died (exit code %s)", worker.worker_id, worker.process.exitcode)
                self._on_crash(worker, reason=f"worker {worker.worker_id} crashed")
            elif (
                not self._shutdown
                and config.heartbeat_timeout_s > 0
                and now - worker.last_heartbeat > config.heartbeat_timeout_s
            ):
                # Alive but silent past the timeout: the serve loop is wedged.
                # Kill it and let the restart path bring up a fresh process.
                self.stalls += 1
                get_metrics().count("serving.pool.stalled")
                _LOGGER.warning(
                    "pool worker %d stalled (no heartbeat for %.1fs); killing it",
                    worker.worker_id,
                    now - worker.last_heartbeat,
                )
                worker.process.kill()
                worker.process.join(timeout=5.0)
                self._on_crash(worker, reason=f"worker {worker.worker_id} stalled")
        if self._shutdown:
            return
        for worker in self._workers:
            if (
                not worker.alive
                and not worker.finished
                and worker.restarts < config.max_restarts
                and now >= worker.next_restart_at
            ):
                self._restart_worker(worker)

    def _restart_worker(self, worker: _Worker) -> None:
        """Replace a dead worker's process (same slot, fresh queue + engine).

        When the restart budget is exhausted the slot stays dead and the
        pool degrades to the surviving workers — requests keep flowing as
        long as one worker lives.
        """
        worker.restarts += 1
        self.restarts += 1
        get_metrics().count("serving.pool.restarts")
        process, task_queue = self._launch_worker(worker.worker_id)
        with self._lock:
            worker.process = process
            worker.task_queue = task_queue
            worker.inflight = 0
            worker.last_heartbeat = time.time()
            worker.alive = True
        _LOGGER.warning(
            "restarted pool worker %d (restart %d/%d)",
            worker.worker_id,
            worker.restarts,
            self.pool_config.max_restarts,
        )

    def _expire_overdue(self) -> None:
        """Fail any in-flight request past ``deadline + grace``.

        Workers drop expired requests they dequeue, but a request a dead or
        wedged worker never dequeues would otherwise hang its future
        forever; this sweep bounds every caller's wait at the deadline plus
        a small delivery grace.
        """
        now = time.time()
        grace = self.pool_config.deadline_grace_s
        with self._lock:
            overdue = [
                request_id for request_id, slot in self._inflight.items() if now > slot.deadline + grace
            ]
        for request_id in overdue:
            slot = self._take(request_id)
            if slot is None or slot.future.done():
                continue
            get_metrics().count("serving.pool.deadline_expired")
            slot.future.set_exception(
                DeadlineExceededError(f"request {request_id} exceeded its deadline before being served")
            )

    def _reassign(self, dead_worker_id: int, reason: str) -> None:
        """Requeue (once) or fail every in-flight request of a dead worker."""
        with self._lock:
            orphans = [
                (request_id, slot)
                for request_id, slot in self._inflight.items()
                if slot.worker_id == dead_worker_id
            ]
        for request_id, slot in orphans:
            retry_target: _Worker | None = None
            if slot.retries < self.pool_config.max_retries and time.time() < slot.deadline:
                with self._lock:
                    try:
                        retry_target = self._pick_worker()
                    except RuntimeError:
                        retry_target = None
                    if retry_target is not None:
                        slot.retries += 1
                        slot.worker_id = retry_target.worker_id
                        retry_target.inflight += 1
            if retry_target is not None:
                self.requeued += 1
                get_metrics().count("serving.pool.requeued")
                retry_target.task_queue.put(("req", request_id, slot.model, slot.points, slot.deadline))
            else:
                taken = self._take(request_id)
                if taken is not None and not taken.future.done():
                    taken.future.set_exception(WorkerCrashError(reason))

    # ------------------------------------------------------------------ #
    # Shutdown / telemetry aggregation
    # ------------------------------------------------------------------ #
    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop the pool: drain, collect worker snapshots, merge telemetry.

        Idempotent.  Each worker finishes its queued requests, ships its
        telemetry/cache/metrics snapshot and exits; the frontend merges the
        metrics snapshots into the process-global registry (so ``--trace``
        and ``repro report`` see fleet-wide totals) and keeps the raw
        per-worker snapshots for :meth:`report`.
        """
        if self._shutdown:
            return
        self.drain(timeout=timeout)
        self._shutdown = True
        for worker in self._workers:
            if worker.is_running():
                worker.task_queue.put(("stop",))
        self._all_done.wait(timeout=timeout)
        self._collector.join(timeout=timeout)
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        # Fail anything still unresolved (e.g. every worker crashed at once).
        with self._lock:
            leftovers = list(self._inflight.items())
            self._inflight.clear()
        for _, slot in leftovers:
            if not slot.future.done():
                slot.future.set_exception(WorkerCrashError("pool shut down before the request completed"))
        metric_snapshots = [
            snapshot["metrics"] for snapshot in self.worker_snapshots.values() if snapshot.get("metrics")
        ]
        if metric_snapshots:
            self.fleet_metrics = merge_snapshots(*metric_snapshots)
            registry = get_metrics()
            if registry.enabled:
                registry.merge(self.fleet_metrics)
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def fleet_telemetry(self) -> TelemetryStore:
        """Frontend telemetry with every collected worker snapshot merged in."""
        fleet = TelemetryStore(self.config.telemetry_window)
        fleet.merge(self.telemetry.snapshot())
        for snapshot in self.worker_snapshots.values():
            fleet.merge(snapshot["telemetry"])
        return fleet

    def fleet_cache_stats(self) -> dict[str, CacheStats]:
        """Per-cache counters summed across collected worker snapshots."""
        totals: dict[str, dict[str, int]] = {}
        for snapshot in self.worker_snapshots.values():
            for name, stats in snapshot.get("caches", {}).items():
                bucket = totals.setdefault(name, {"hits": 0, "misses": 0, "evictions": 0, "size": 0, "capacity": 0})
                for field in bucket:
                    bucket[field] += int(stats.get(field, 0))
        if "shared" in totals:
            # One shared directory, reported by every worker: size/capacity
            # are a shared view, not additive.
            workers = max(1, len(self.worker_snapshots))
            totals["shared"]["size"] //= workers
            totals["shared"]["capacity"] //= workers
        return {name: CacheStats(**bucket) for name, bucket in totals.items()}

    def report(self) -> dict[str, object]:
        """Fleet-wide telemetry report with per-worker breakdowns."""
        fleet = self.fleet_telemetry()
        per_worker = {}
        for worker_id, snapshot in sorted(self.worker_snapshots.items()):
            worker_store = TelemetryStore(self.config.telemetry_window).merge(snapshot["telemetry"])
            per_worker[worker_id] = worker_store.report()
        return {
            "fleet": fleet.report(self.fleet_cache_stats() or None),
            "workers": per_worker,
            "frontend": {
                "submitted": self.submitted,
                "requeued": self.requeued,
                "worker_crashes": self.worker_crashes,
                "restarts": self.restarts,
                "stalls": self.stalls,
                "pool_workers": self.pool_config.workers,
            },
        }

    def format_report(self) -> str:
        """Human-readable fleet report (fleet aggregate + per-worker lines)."""
        report = self.report()
        fleet = self.fleet_telemetry()
        lines = ["== fleet telemetry (all workers) =="]
        lines.append(fleet.format_report(self.fleet_cache_stats() or None))
        frontend = report["frontend"]
        lines.append(
            f"frontend: submitted={frontend['submitted']} requeued={frontend['requeued']} "
            f"worker_crashes={frontend['worker_crashes']} restarts={frontend['restarts']} "
            f"stalls={frontend['stalls']} workers={frontend['pool_workers']}"
        )
        for worker_id, worker_report in report["workers"].items():
            served = sum(stats["served"] for stats in worker_report["models"].values())
            batches = sum(stats["batches"] for stats in worker_report["models"].values())
            lines.append(f"worker {worker_id}: served={served} batches={batches}")
        return "\n".join(lines)
