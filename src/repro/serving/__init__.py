"""Inference serving for searched architectures.

Turns HGNAS search results into a servable workload — the deployment
scenario the paper optimises for.  The subsystem layers:

* :mod:`repro.serving.registry` — named, persistable deployments
  (architecture + model + target device + SLO).
* :mod:`repro.serving.batcher` — dynamic micro-batching of single-cloud
  requests.
* :mod:`repro.serving.cache` — bounded LRU caches for KNN edge indices
  (the dominant cost, per the paper) and full inference results.
* :mod:`repro.serving.engine` — the synchronous engine with cost-model
  driven admission control tying it all together.
* :mod:`repro.serving.telemetry` — rolling latency percentiles,
  throughput, queue depth and cache hit rates per model.
* :mod:`repro.serving.diskcache` — disk-backed, cross-process cache tier
  shared by the workers of a pool.
* :mod:`repro.serving.pool` — :class:`WorkerPoolEngine`: N worker
  processes, each hosting a full engine, behind one admission-controlled
  future-based frontend with crash requeue and fleet telemetry.
* :mod:`repro.serving.frontend` — asyncio adapter over the pool plus a
  JSON-lines TCP server (``repro serve --workers N --port P``) with
  connect/read timeouts.
* :mod:`repro.serving.resilience` — client-side retry-with-backoff and a
  circuit breaker composed by the frontend.
* :mod:`repro.serving.cli` — the ``repro-serve`` demo entry point.

High-level helpers live in :func:`repro.api.deploy_architecture` and
:func:`repro.api.serve`.
"""

from repro.serving.batcher import BatcherConfig, MicroBatcher, QueuedRequest
from repro.serving.cache import CacheStats, CachingGraphBuilder, LRUCache, cloud_fingerprint
from repro.serving.diskcache import SharedArrayCache, deployment_fingerprint
from repro.serving.engine import (
    AdmissionError,
    EngineConfig,
    InferenceEngine,
    InferenceResult,
    validate_points,
)
from repro.serving.frontend import AsyncServingFrontend, FrontendTimeoutError, request_over_tcp
from repro.serving.pool import DeadlineExceededError, PoolConfig, WorkerCrashError, WorkerPoolEngine
from repro.serving.registry import DeployedModel, ModelRegistry
from repro.serving.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.serving.telemetry import ModelTelemetry, TelemetryStore

__all__ = [
    "BatcherConfig",
    "MicroBatcher",
    "QueuedRequest",
    "CacheStats",
    "CachingGraphBuilder",
    "LRUCache",
    "cloud_fingerprint",
    "SharedArrayCache",
    "deployment_fingerprint",
    "AdmissionError",
    "EngineConfig",
    "InferenceEngine",
    "InferenceResult",
    "validate_points",
    "AsyncServingFrontend",
    "FrontendTimeoutError",
    "request_over_tcp",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryPolicy",
    "DeadlineExceededError",
    "PoolConfig",
    "WorkerCrashError",
    "WorkerPoolEngine",
    "DeployedModel",
    "ModelRegistry",
    "ModelTelemetry",
    "TelemetryStore",
]
