"""Asyncio frontend over the worker pool: in-process awaits + TCP serving.

:class:`AsyncServingFrontend` adapts :class:`~repro.serving.pool.WorkerPoolEngine`
to asyncio:

* :meth:`~AsyncServingFrontend.submit` awaits one request without blocking
  the event loop — admission (which may raise before any IPC) runs on a
  thread-pool executor, and the pool's ``concurrent.futures.Future`` is
  awaited via :func:`asyncio.wrap_future`.
* :meth:`~AsyncServingFrontend.start`/:meth:`~AsyncServingFrontend.stop`
  run a newline-delimited-JSON TCP server (``repro serve --workers N
  --port P``): one request object per line in, one response object per
  line out, errors reported in-band as ``{"ok": false, ...}`` so a bad
  request never kills the connection.

The wire format is deliberately minimal — stdlib-only JSON lines — so
tests and the CLI client need nothing beyond :mod:`asyncio` and
:mod:`json`.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.serving.engine import AdmissionError, InferenceResult
from repro.serving.pool import DeadlineExceededError, WorkerCrashError, WorkerPoolEngine
from repro.utils.logging import get_logger

__all__ = ["AsyncServingFrontend", "request_over_tcp"]

_LOGGER = get_logger("serving.frontend")

#: Exception types reported to TCP clients by name (anything else is
#: flattened to ``"InternalError"`` so internals do not leak on the wire).
_CLIENT_ERRORS = (AdmissionError, DeadlineExceededError, WorkerCrashError, ValueError, KeyError)


def _result_message(result: InferenceResult) -> dict:
    return {
        "ok": True,
        "model": result.model,
        "label": result.label,
        "logits": [float(value) for value in np.asarray(result.logits).ravel()],
        "latency_ms": result.latency_ms,
        "batch_size": result.batch_size,
        "from_cache": result.from_cache,
        "worker": result.worker,
    }


def _error_message(error: BaseException) -> dict:
    if isinstance(error, _CLIENT_ERRORS):
        name = type(error).__name__
        message = str(error)
    else:  # pragma: no cover - defensive
        name = "InternalError"
        message = "internal server error"
        _LOGGER.exception("unexpected serving error")
    return {"ok": False, "error": name, "message": message}


class AsyncServingFrontend:
    """Awaitable request API and a JSON-lines TCP server over one pool."""

    def __init__(self, pool: WorkerPoolEngine):
        self.pool = pool
        self._server: asyncio.AbstractServer | None = None
        self.requests_served = 0
        self.requests_failed = 0

    # ------------------------------------------------------------------ #
    # In-process async API
    # ------------------------------------------------------------------ #
    async def submit(self, model: str, points: np.ndarray) -> InferenceResult:
        """Await one request through the pool without blocking the loop.

        ``pool.submit`` validates and admission-checks synchronously (it
        can reject before any IPC), so it runs on the default executor;
        the returned worker future is then awaited natively.
        """
        loop = asyncio.get_running_loop()
        future = await loop.run_in_executor(None, self.pool.submit, model, points)
        return await asyncio.wrap_future(future)

    # ------------------------------------------------------------------ #
    # TCP server (newline-delimited JSON)
    # ------------------------------------------------------------------ #
    async def _handle_line(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            model = request["model"]
            points = np.asarray(request["points"], dtype=get_default_dtype())
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            return {"ok": False, "error": "BadRequest", "message": f"malformed request: {error}"}
        try:
            result = await self.submit(model, points)
        except Exception as error:  # noqa: BLE001 - reported in-band to the client
            return _error_message(error)
        return _result_message(result)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                if response["ok"]:
                    self.requests_served += 1
                else:
                    self.requests_failed += 1
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client went away
            pass
        finally:
            # Close without awaiting: the handler task is cancelled when the
            # server stops, and awaiting wait_closed() here would surface
            # that cancellation as a spurious error callback.
            writer.close()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start the TCP server; returns the bound ``(host, port)``.

        Pass ``port=0`` to bind an ephemeral port (tests, CI smoke runs).
        """
        if self._server is not None:
            raise RuntimeError("frontend server already started")
        self._server = await asyncio.start_server(self._handle_connection, host=host, port=port)
        bound = self._server.sockets[0].getsockname()
        _LOGGER.info("serving frontend listening on %s:%d", bound[0], bound[1])
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting connections (the pool itself is left running)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def serve_until(self, stop_event: asyncio.Event, host: str = "127.0.0.1", port: int = 0) -> None:
        """Run the TCP server until ``stop_event`` is set (CLI entry point)."""
        await self.start(host=host, port=port)
        try:
            await stop_event.wait()
        finally:
            await self.stop()


async def request_over_tcp(host: str, port: int, requests: list[dict]) -> list[dict]:
    """Send request objects over one connection; returns the response objects.

    The stdlib-only client used by the CLI's ``--port`` smoke mode, the
    benchmark's load generator and the tests.
    """
    reader, writer = await asyncio.open_connection(host, port)
    responses: list[dict] = []
    try:
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed the connection mid-stream")
            responses.append(json.loads(line))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return responses
