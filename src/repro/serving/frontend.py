"""Asyncio frontend over the worker pool: in-process awaits + TCP serving.

:class:`AsyncServingFrontend` adapts :class:`~repro.serving.pool.WorkerPoolEngine`
to asyncio:

* :meth:`~AsyncServingFrontend.submit` awaits one request without blocking
  the event loop — admission (which may raise before any IPC) runs on a
  thread-pool executor, and the pool's ``concurrent.futures.Future`` is
  awaited via :func:`asyncio.wrap_future`.
* :meth:`~AsyncServingFrontend.start`/:meth:`~AsyncServingFrontend.stop`
  run a newline-delimited-JSON TCP server (``repro serve --workers N
  --port P``): one request object per line in, one response object per
  line out, errors reported in-band as ``{"ok": false, ...}`` so a bad
  request never kills the connection.

The wire format is deliberately minimal — stdlib-only JSON lines — so
tests and the CLI client need nothing beyond :mod:`asyncio` and
:mod:`json`.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.faults import fault_point
from repro.nn.dtype import get_default_dtype
from repro.obs.metrics import get_metrics
from repro.serving.engine import AdmissionError, InferenceResult
from repro.serving.pool import DeadlineExceededError, WorkerCrashError, WorkerPoolEngine
from repro.serving.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.utils.logging import get_logger

__all__ = ["AsyncServingFrontend", "FrontendTimeoutError", "request_over_tcp"]

_LOGGER = get_logger("serving.frontend")


class FrontendTimeoutError(TimeoutError):
    """A TCP connect or read exceeded its deadline (reported in-band by name)."""


#: Exception types reported to TCP clients by name (anything else is
#: flattened to ``"InternalError"`` so internals do not leak on the wire).
_CLIENT_ERRORS = (
    AdmissionError,
    DeadlineExceededError,
    WorkerCrashError,
    CircuitOpenError,
    FrontendTimeoutError,
    ValueError,
    KeyError,
)


def _result_message(result: InferenceResult) -> dict:
    return {
        "ok": True,
        "model": result.model,
        "label": result.label,
        "logits": [float(value) for value in np.asarray(result.logits).ravel()],
        "latency_ms": result.latency_ms,
        "batch_size": result.batch_size,
        "from_cache": result.from_cache,
        "worker": result.worker,
    }


def _error_message(error: BaseException) -> dict:
    if isinstance(error, _CLIENT_ERRORS):
        name = type(error).__name__
        message = str(error)
    else:  # pragma: no cover - defensive
        name = "InternalError"
        message = "internal server error"
        _LOGGER.exception("unexpected serving error")
    return {"ok": False, "error": name, "message": message}


class AsyncServingFrontend:
    """Awaitable request API and a JSON-lines TCP server over one pool."""

    def __init__(
        self,
        pool: WorkerPoolEngine,
        retry_policy: RetryPolicy | None = None,
        circuit_breaker: CircuitBreaker | None = None,
        idle_timeout_s: float | None = None,
    ):
        self.pool = pool
        # Worker crashes are transparent by default: a bounded retry gives
        # the supervisor time to requeue/restart before the client sees it.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.circuit_breaker = circuit_breaker
        self.idle_timeout_s = idle_timeout_s
        self._server: asyncio.AbstractServer | None = None
        self.requests_served = 0
        self.requests_failed = 0
        self.retries = 0

    # ------------------------------------------------------------------ #
    # In-process async API
    # ------------------------------------------------------------------ #
    async def submit(self, model: str, points: np.ndarray) -> InferenceResult:
        """Await one request through the pool without blocking the loop.

        ``pool.submit`` validates and admission-checks synchronously (it
        can reject before any IPC), so it runs on the default executor;
        the returned worker future is then awaited natively.  Worker
        crashes are retried with bounded exponential backoff up to the
        frontend's :class:`RetryPolicy`; an attached breaker fails fast
        with :class:`CircuitOpenError` while the pool looks unhealthy.
        Deadline/admission failures are terminal — the first is already
        late, the second is the pool shedding load on purpose.
        """
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            attempt += 1
            if self.circuit_breaker is not None:
                self.circuit_breaker.allow()
            try:
                future = await loop.run_in_executor(None, self.pool.submit, model, points)
                result = await asyncio.wrap_future(future)
            except WorkerCrashError:
                if self.circuit_breaker is not None:
                    self.circuit_breaker.record_failure()
                if attempt >= self.retry_policy.max_attempts:
                    raise
                self.retries += 1
                get_metrics().count("serving.frontend.retries")
                backoff = self.retry_policy.backoff(attempt)
                _LOGGER.warning("worker crash on attempt %d/%d; retrying in %.3fs", attempt, self.retry_policy.max_attempts, backoff)
                await asyncio.sleep(backoff)
                continue
            if self.circuit_breaker is not None:
                self.circuit_breaker.record_success()
            return result

    # ------------------------------------------------------------------ #
    # TCP server (newline-delimited JSON)
    # ------------------------------------------------------------------ #
    async def _handle_line(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            model = request["model"]
            points = np.asarray(request["points"], dtype=get_default_dtype())
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            return {"ok": False, "error": "BadRequest", "message": f"malformed request: {error}"}
        try:
            result = await self.submit(model, points)
        except Exception as error:  # noqa: BLE001 - reported in-band to the client
            return _error_message(error)
        return _result_message(result)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    if self.idle_timeout_s is not None:
                        line = await asyncio.wait_for(reader.readline(), timeout=self.idle_timeout_s)
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    # A stalled peer no longer pins this handler forever: tell
                    # it why (in-band, typed) and drop the connection.
                    message = {
                        "ok": False,
                        "error": "FrontendTimeoutError",
                        "message": f"no request received within {self.idle_timeout_s}s; closing connection",
                    }
                    writer.write(json.dumps(message).encode() + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                if response["ok"]:
                    self.requests_served += 1
                else:
                    self.requests_failed += 1
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client went away
            pass
        finally:
            # Close without awaiting: the handler task is cancelled when the
            # server stops, and awaiting wait_closed() here would surface
            # that cancellation as a spurious error callback.
            writer.close()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start the TCP server; returns the bound ``(host, port)``.

        Pass ``port=0`` to bind an ephemeral port (tests, CI smoke runs).
        """
        if self._server is not None:
            raise RuntimeError("frontend server already started")
        self._server = await asyncio.start_server(self._handle_connection, host=host, port=port)
        bound = self._server.sockets[0].getsockname()
        _LOGGER.info("serving frontend listening on %s:%d", bound[0], bound[1])
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting connections (the pool itself is left running)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def serve_until(self, stop_event: asyncio.Event, host: str = "127.0.0.1", port: int = 0) -> None:
        """Run the TCP server until ``stop_event`` is set (CLI entry point)."""
        await self.start(host=host, port=port)
        try:
            await stop_event.wait()
        finally:
            await self.stop()


async def request_over_tcp(
    host: str,
    port: int,
    requests: list[dict],
    connect_timeout_s: float | None = 10.0,
    read_timeout_s: float | None = 60.0,
) -> list[dict]:
    """Send request objects over one connection; returns the response objects.

    The stdlib-only client used by the CLI's ``--port`` smoke mode, the
    benchmark's load generator and the tests.  Both the connect and each
    response read are bounded: a dead or stalled server surfaces as a
    typed :class:`FrontendTimeoutError` instead of hanging the caller
    forever.  Pass ``None`` to disable either timeout.
    """
    try:
        if connect_timeout_s is not None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=connect_timeout_s
            )
        else:
            reader, writer = await asyncio.open_connection(host, port)
    except asyncio.TimeoutError:
        raise FrontendTimeoutError(f"connect to {host}:{port} timed out after {connect_timeout_s}s") from None
    responses: list[dict] = []
    try:
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            fault_point("serving.tcp.read", host=host, port=port)
            try:
                if read_timeout_s is not None:
                    line = await asyncio.wait_for(reader.readline(), timeout=read_timeout_s)
                else:
                    line = await reader.readline()
            except asyncio.TimeoutError:
                raise FrontendTimeoutError(
                    f"no response from {host}:{port} within {read_timeout_s}s"
                ) from None
            if not line:
                raise ConnectionError("server closed the connection mid-stream")
            responses.append(json.loads(line))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return responses
