"""Per-model serving telemetry, built on the :mod:`repro.obs` primitives.

Tracks, per deployed model, a rolling window of request latencies
(queueing + batch execution), batch sizes, throughput derived from the
cumulative busy time of a :class:`repro.utils.timer.Timer`, admission
rejections and the peak queue depth.  The engine injects its cache
counters so one report covers the whole serving stack.

Counts live in :class:`~repro.obs.metrics.Counter` objects and the rolling
windows in windowed :class:`~repro.obs.metrics.Histogram` objects, so a
worker's telemetry has a JSON-serializable :meth:`ModelTelemetry.snapshot`
and an exact :meth:`ModelTelemetry.merge` — the aggregation primitive a
multi-worker frontend needs.  The public ``report()`` shapes are unchanged
from the pre-:mod:`repro.obs` implementation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.nn.dtype import WIDE_DTYPE
from repro.obs.metrics import Counter, Histogram
from repro.serving.cache import CacheStats
from repro.utils.timer import Timer

__all__ = ["ModelTelemetry", "TelemetryStore"]

_PERCENTILES = (50.0, 95.0, 99.0)

#: Millisecond-scale buckets for request latency / queueing histograms.
_MS_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)

#: Power-of-two-ish buckets for batch-size histograms.
_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class ModelTelemetry:
    """Rolling statistics for one deployed model."""

    def __init__(self, window: int = 1024):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._latency = Histogram("serving.request.latency_ms", buckets=_MS_BUCKETS, window=window)
        self._queue = Histogram("serving.request.queue_ms", buckets=_MS_BUCKETS, window=window)
        self._batch_size = Histogram("serving.batch.size", buckets=_SIZE_BUCKETS, window=window)
        self._served = Counter("serving.request.served")
        self._cache_hits = Counter("serving.request.cache_hits")
        self._rejected = Counter("serving.request.rejected")
        self._batches = Counter("serving.batch.count")
        self.busy = Timer()

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #
    def record_request(self, latency_ms: float, queue_ms: float, from_cache: bool) -> None:
        """Record one completed request."""
        self._latency.observe(latency_ms)
        self._queue.observe(queue_ms)
        self._served.inc()
        if from_cache:
            self._cache_hits.inc()

    def record_batch(self, size: int) -> None:
        """Record one executed batch."""
        self._batch_size.observe(size)
        self._batches.inc()

    def record_rejection(self) -> None:
        """Record one request refused by admission control."""
        self._rejected.inc()

    # -------------------------------------------------------------- #
    # Readers (the historical public surface)
    # -------------------------------------------------------------- #
    @property
    def served(self) -> int:
        return int(self._served.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def latencies_ms(self):
        """The rolling window of request latencies (most recent last)."""
        return self._latency.window

    @property
    def queue_ms(self):
        """The rolling window of queueing delays (most recent last)."""
        return self._queue.window

    @property
    def batch_sizes(self):
        """The rolling window of executed batch sizes (most recent last)."""
        return self._batch_size.window

    def latency_percentiles(self, percentiles: Sequence[float] | None = None) -> dict[str, float]:
        """Rolling request-latency percentiles in milliseconds.

        Args:
            percentiles: Percentile ranks in ``[0, 100]``; defaults to
                p50/p95/p99.  Keys are derived once as ``f"p{p:g}"``
                (``p50``, ``p99.9``, ...).
        """
        percentiles = _PERCENTILES if percentiles is None else tuple(percentiles)
        keys = [f"p{p:g}" for p in percentiles]
        if not self._latency.window:
            return {key: 0.0 for key in keys}
        values = np.asarray(self._latency.window, dtype=WIDE_DTYPE)
        return {key: float(np.percentile(values, p)) for key, p in zip(keys, percentiles)}

    @property
    def throughput_rps(self) -> float:
        """Requests served per second of engine busy time."""
        return self.served / self.busy.elapsed if self.busy.elapsed > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        sizes = self._batch_size.window
        return float(np.mean(sizes)) if sizes else 0.0

    def report(self, percentiles: Sequence[float] | None = None) -> dict[str, object]:
        """Snapshot of every statistic as a JSON-compatible dict."""
        queue = self._queue.window
        return {
            "served": self.served,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "busy_s": round(self.busy.elapsed, 4),
            "result_cache_hits": self.cache_hits,
            "mean_queue_ms": round(float(np.mean(queue)) if queue else 0.0, 3),
            "latency_ms": {k: round(v, 3) for k, v in self.latency_percentiles(percentiles).items()},
        }

    # -------------------------------------------------------------- #
    # Cross-worker aggregation
    # -------------------------------------------------------------- #
    def snapshot(self) -> dict:
        """JSON-serializable state, mergeable via :meth:`merge`."""
        return {
            "window": self.window,
            "busy_s": self.busy.elapsed,
            "latency": self._latency.snapshot(),
            "queue": self._queue.snapshot(),
            "batch_size": self._batch_size.snapshot(),
            "served": self._served.snapshot(),
            "cache_hits": self._cache_hits.snapshot(),
            "rejected": self._rejected.snapshot(),
            "batches": self._batches.snapshot(),
        }

    def merge(self, snapshot: Mapping) -> "ModelTelemetry":
        """Fold another worker's :meth:`snapshot` into this telemetry.

        Counts and busy time add exactly; the rolling windows concatenate
        and truncate to this telemetry's window size.
        """
        self._latency.merge(snapshot["latency"])
        self._queue.merge(snapshot["queue"])
        self._batch_size.merge(snapshot["batch_size"])
        self._served.merge(snapshot["served"])
        self._cache_hits.merge(snapshot["cache_hits"])
        self._rejected.merge(snapshot["rejected"])
        self._batches.merge(snapshot["batches"])
        self.busy.elapsed += float(snapshot.get("busy_s", 0.0))
        return self


class TelemetryStore:
    """Telemetry for every model served by one engine."""

    def __init__(self, window: int = 1024):
        self.window = window
        self._models: dict[str, ModelTelemetry] = {}
        self.peak_queue_depth = 0

    def model(self, name: str) -> ModelTelemetry:
        """Return (creating on first use) the telemetry of one model."""
        if name not in self._models:
            self._models[name] = ModelTelemetry(self.window)
        return self._models[name]

    def observe_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of the request queue."""
        self.peak_queue_depth = max(self.peak_queue_depth, int(depth))

    def snapshot(self) -> dict:
        """JSON-serializable state of every model, mergeable via :meth:`merge`."""
        return {
            "peak_queue_depth": self.peak_queue_depth,
            "models": {name: telemetry.snapshot() for name, telemetry in self._models.items()},
        }

    def merge(self, snapshot: Mapping) -> "TelemetryStore":
        """Fold another worker's :meth:`snapshot` into this store."""
        self.peak_queue_depth = max(self.peak_queue_depth, int(snapshot.get("peak_queue_depth", 0)))
        for name, model_snapshot in snapshot.get("models", {}).items():
            self.model(name).merge(model_snapshot)
        return self

    def report(
        self,
        cache_stats: Mapping[str, CacheStats] | None = None,
        percentiles: Sequence[float] | None = None,
    ) -> dict[str, object]:
        """Aggregate report over all models plus engine-level gauges.

        Args:
            cache_stats: Engine cache counters to embed under ``"caches"``.
            percentiles: Latency percentile ranks (default p50/p95/p99),
                forwarded to every model's :meth:`ModelTelemetry.report`.
        """
        report: dict[str, object] = {
            "models": {
                name: telemetry.report(percentiles) for name, telemetry in self._models.items()
            },
            "peak_queue_depth": self.peak_queue_depth,
        }
        if cache_stats:
            report["caches"] = {
                name: {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "size": stats.size,
                    "capacity": stats.capacity,
                    "hit_rate": round(stats.hit_rate, 4),
                }
                for name, stats in cache_stats.items()
            }
        return report

    def format_report(self, cache_stats: Mapping[str, CacheStats] | None = None) -> str:
        """Human-readable multi-line report."""
        report = self.report(cache_stats)
        lines = ["== serving telemetry =="]
        for name, stats in report["models"].items():
            latency = stats["latency_ms"]
            lines.append(
                f"{name}: served={stats['served']} rejected={stats['rejected']} "
                f"batches={stats['batches']} (mean size {stats['mean_batch_size']:.1f}) "
                f"throughput={stats['throughput_rps']:.1f} req/s"
            )
            lines.append(
                f"    latency p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
                f"p99={latency['p99']:.2f}ms  mean queue={stats['mean_queue_ms']:.2f}ms"
            )
        lines.append(f"peak queue depth: {report['peak_queue_depth']}")
        for name, stats in report.get("caches", {}).items():
            lines.append(
                f"{name} cache: hit rate {stats['hit_rate']:.1%} "
                f"({stats['hits']} hits / {stats['misses']} misses, "
                f"{stats['size']}/{stats['capacity']} entries)"
            )
        return "\n".join(lines)
