"""Per-model serving telemetry.

Tracks, per deployed model, a rolling window of request latencies
(queueing + batch execution), batch sizes, throughput derived from the
cumulative busy time of a :class:`repro.utils.timer.Timer`, admission
rejections and the peak queue depth.  The engine injects its cache
counters so one report covers the whole serving stack.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Mapping

import numpy as np

from repro.serving.cache import CacheStats
from repro.utils.timer import Timer

__all__ = ["ModelTelemetry", "TelemetryStore"]

_PERCENTILES = (50.0, 95.0, 99.0)


class ModelTelemetry:
    """Rolling statistics for one deployed model."""

    def __init__(self, window: int = 1024):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.latencies_ms: Deque[float] = deque(maxlen=window)
        self.queue_ms: Deque[float] = deque(maxlen=window)
        self.batch_sizes: Deque[int] = deque(maxlen=window)
        self.served = 0
        self.cache_hits = 0
        self.rejected = 0
        self.batches = 0
        self.busy = Timer()

    def record_request(self, latency_ms: float, queue_ms: float, from_cache: bool) -> None:
        """Record one completed request."""
        self.latencies_ms.append(float(latency_ms))
        self.queue_ms.append(float(queue_ms))
        self.served += 1
        if from_cache:
            self.cache_hits += 1

    def record_batch(self, size: int) -> None:
        """Record one executed batch."""
        self.batch_sizes.append(int(size))
        self.batches += 1

    def record_rejection(self) -> None:
        """Record one request refused by admission control."""
        self.rejected += 1

    def latency_percentiles(self) -> dict[str, float]:
        """Rolling p50/p95/p99 request latency in milliseconds."""
        if not self.latencies_ms:
            return {f"p{int(p)}": 0.0 for p in _PERCENTILES}
        values = np.asarray(self.latencies_ms, dtype=np.float64)
        return {f"p{int(p)}": float(np.percentile(values, p)) for p in _PERCENTILES}

    @property
    def throughput_rps(self) -> float:
        """Requests served per second of engine busy time."""
        return self.served / self.busy.elapsed if self.busy.elapsed > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        sizes = self.batch_sizes
        return float(np.mean(sizes)) if sizes else 0.0

    def report(self) -> dict[str, object]:
        """Snapshot of every statistic as a JSON-compatible dict."""
        return {
            "served": self.served,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "busy_s": round(self.busy.elapsed, 4),
            "result_cache_hits": self.cache_hits,
            "mean_queue_ms": round(float(np.mean(self.queue_ms)) if self.queue_ms else 0.0, 3),
            "latency_ms": {k: round(v, 3) for k, v in self.latency_percentiles().items()},
        }


class TelemetryStore:
    """Telemetry for every model served by one engine."""

    def __init__(self, window: int = 1024):
        self.window = window
        self._models: dict[str, ModelTelemetry] = {}
        self.peak_queue_depth = 0

    def model(self, name: str) -> ModelTelemetry:
        """Return (creating on first use) the telemetry of one model."""
        if name not in self._models:
            self._models[name] = ModelTelemetry(self.window)
        return self._models[name]

    def observe_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of the request queue."""
        self.peak_queue_depth = max(self.peak_queue_depth, int(depth))

    def report(self, cache_stats: Mapping[str, CacheStats] | None = None) -> dict[str, object]:
        """Aggregate report over all models plus engine-level gauges."""
        report: dict[str, object] = {
            "models": {name: telemetry.report() for name, telemetry in self._models.items()},
            "peak_queue_depth": self.peak_queue_depth,
        }
        if cache_stats:
            report["caches"] = {
                name: {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "size": stats.size,
                    "capacity": stats.capacity,
                    "hit_rate": round(stats.hit_rate, 4),
                }
                for name, stats in cache_stats.items()
            }
        return report

    def format_report(self, cache_stats: Mapping[str, CacheStats] | None = None) -> str:
        """Human-readable multi-line report."""
        report = self.report(cache_stats)
        lines = ["== serving telemetry =="]
        for name, stats in report["models"].items():
            latency = stats["latency_ms"]
            lines.append(
                f"{name}: served={stats['served']} rejected={stats['rejected']} "
                f"batches={stats['batches']} (mean size {stats['mean_batch_size']:.1f}) "
                f"throughput={stats['throughput_rps']:.1f} req/s"
            )
            lines.append(
                f"    latency p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
                f"p99={latency['p99']:.2f}ms  mean queue={stats['mean_queue_ms']:.2f}ms"
            )
        lines.append(f"peak queue depth: {report['peak_queue_depth']}")
        for name, stats in report.get("caches", {}).items():
            lines.append(
                f"{name} cache: hit rate {stats['hit_rate']:.1%} "
                f"({stats['hits']} hits / {stats['misses']} misses, "
                f"{stats['size']}/{stats['capacity']} entries)"
            )
        return "\n".join(lines)
