"""Dynamic micro-batching of inference requests.

Single-cloud requests accumulate in per-model FIFO queues; a batch is
released as soon as it is full (``max_batch_size``) or its oldest request
has waited ``max_wait_ms``.  Batching amortises the per-forward dispatch
overhead (python/op dispatch dominates small point clouds) — the serving
throughput benchmark quantifies the gain over one-by-one inference.

The batcher is clock-agnostic: it reads time through an injected callable
(``time.monotonic`` by default), so tests drive the wait-timeout logic with
a fake clock instead of sleeping.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque

import numpy as np

__all__ = ["BatcherConfig", "QueuedRequest", "MicroBatcher"]


@dataclass(frozen=True)
class BatcherConfig:
    """Micro-batching policy."""

    max_batch_size: int = 8
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")


@dataclass
class QueuedRequest:
    """One pending inference request."""

    request_id: int
    model: str
    points: np.ndarray
    enqueued_at: float
    fingerprint: str = ""
    estimated_device_ms: float = 0.0
    extras: dict = field(default_factory=dict)


class MicroBatcher:
    """Accumulates requests into per-model batches."""

    def __init__(self, config: BatcherConfig | None = None, clock: Callable[[], float] = time.monotonic):
        self.config = config or BatcherConfig()
        self.clock = clock
        self._queues: "OrderedDict[str, Deque[QueuedRequest]]" = OrderedDict()

    @property
    def queue_depth(self) -> int:
        """Total number of pending requests across all models."""
        return sum(len(queue) for queue in self._queues.values())

    def depth_for(self, model: str) -> int:
        """Pending requests for one model."""
        queue = self._queues.get(model)
        return len(queue) if queue else 0

    def has_pending(self) -> bool:
        return self.queue_depth > 0

    def enqueue(self, request: QueuedRequest) -> None:
        """Append a request to its model's FIFO queue."""
        self._queues.setdefault(request.model, deque()).append(request)

    def discard(self, request_ids: set[int]) -> int:
        """Remove queued requests by id (cancelled submissions); returns count."""
        removed = 0
        for model in list(self._queues):
            queue = self._queues[model]
            kept = deque(request for request in queue if request.request_id not in request_ids)
            removed += len(queue) - len(kept)
            if kept:
                self._queues[model] = kept
            else:
                del self._queues[model]
        return removed

    def _pop_from(self, model: str) -> list[QueuedRequest]:
        queue = self._queues[model]
        batch = [queue.popleft() for _ in range(min(self.config.max_batch_size, len(queue)))]
        if not queue:
            del self._queues[model]
        return batch

    def pop_ready(self, force: bool = False) -> list[QueuedRequest] | None:
        """Return the next releasable batch, or ``None`` if nothing is due.

        A model's queue releases when it holds a full batch, when its head
        request has waited at least ``max_wait_ms``, or when ``force`` is
        set (used by the synchronous engine to drain).  Among releasable
        models the one with the oldest head request goes first.
        """
        now = self.clock()
        best_model: str | None = None
        best_age = -1.0
        for model, queue in self._queues.items():
            if not queue:
                continue
            age_ms = (now - queue[0].enqueued_at) * 1e3
            releasable = force or len(queue) >= self.config.max_batch_size or age_ms >= self.config.max_wait_ms
            if releasable and age_ms > best_age:
                best_model = model
                best_age = age_ms
        if best_model is None:
            return None
        return self._pop_from(best_model)
