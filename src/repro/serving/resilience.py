"""Client-side resilience policies for the serving frontend.

Two small, dependency-free state machines the asyncio frontend composes
around ``pool.submit``:

* :class:`RetryPolicy` — how many attempts a retryable failure (a worker
  crash mid-request) gets, and the bounded exponential backoff between
  them.  Deadline and admission failures are *not* retryable: the former
  is already late, the latter is the pool protecting itself.
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  failures the circuit *opens* and requests fail fast with
  :class:`CircuitOpenError` instead of piling onto a broken pool.  After
  ``reset_timeout_s`` one probe request is let through (*half-open*); its
  success closes the circuit, its failure re-opens it for another full
  timeout.

Both are synchronous and lock-protected so the frontend may drive them
from executor threads; the frontend owns the actual ``await sleep``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["RetryPolicy", "CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(RuntimeError):
    """Fail-fast rejection: the breaker is open after repeated worker failures."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-exponential retry schedule for retryable request failures."""

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("RetryPolicy.max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("RetryPolicy backoffs must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("RetryPolicy.multiplier must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based: first retry = 1)."""
        return min(self.backoff_s * self.multiplier ** max(attempt - 1, 0), self.max_backoff_s)


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open)."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("CircuitBreaker.failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("CircuitBreaker.reset_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                return "half-open"
            return "open"

    def allow(self) -> None:
        """Admit one request or raise :class:`CircuitOpenError`.

        In the half-open window exactly one probe is admitted; concurrent
        requests keep failing fast until the probe reports back.
        """
        with self._lock:
            if self._opened_at is None:
                return
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.reset_timeout_s and not self._probing:
                self._probing = True
                return
            raise CircuitOpenError(
                f"serving circuit open after {self._failures} consecutive failures; "
                f"retry in {max(self.reset_timeout_s - elapsed, 0.0):.2f}s"
            )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.failure_threshold or self._opened_at is not None:
                self._opened_at = self._clock()
