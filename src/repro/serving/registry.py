"""Registry of deployable searched architectures.

A :class:`DeployedModel` bundles everything the engine needs to serve one
searched architecture: the genotype, the instantiated (possibly trained)
:class:`~repro.nas.derived.DerivedModel`, the target
:class:`~repro.hardware.device.DeviceSpec` whose cost model drives
admission control, and an optional latency SLO.  The
:class:`ModelRegistry` stores entries by name and round-trips through
:mod:`repro.utils.serialization` (JSON metadata + one ``.npz`` of weights
per entry), so a deployment survives process restarts.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re
from collections import OrderedDict
from dataclasses import dataclass

from repro.analysis.shapes import StaticSignature, infer_signature
from repro.analysis.validate import check_model_consistency, validate_architecture
from repro.hardware.device import DeviceSpec
from repro.nas.architecture import Architecture
from repro.nas.derived import DerivedModel
from repro.utils.serialization import load_json, load_npz, save_json, save_npz
from repro.version import __version__
from repro.defaults import DEFAULTS

__all__ = ["DeployedModel", "ModelRegistry"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass
class DeployedModel:
    """One servable entry: architecture + executable model + target device."""

    name: str
    architecture: Architecture
    model: DerivedModel
    device: DeviceSpec
    num_classes: int
    k: int = DEFAULTS.k
    embed_dim: int = DEFAULTS.embed_dim
    seed: int = DEFAULTS.seed
    slo_ms: float | None = None
    #: Monotonic per-registry deployment counter; distinguishes successive
    #: deployments under the same name so engine caches never serve results
    #: computed by a replaced model.  Not persisted — every load is a fresh
    #: deployment.
    generation: int = 0
    #: Statically inferred I/O contract (repro.analysis); computed at
    #: registration, persisted with the entry, and used by the engine for
    #: O(1) request validation.
    signature: StaticSignature | None = None

    def __post_init__(self) -> None:
        if not _NAME_PATTERN.match(self.name):
            raise ValueError(
                f"invalid model name '{self.name}': use letters, digits, '_', '.', '-'"
            )
        if self.num_classes <= 1:
            raise ValueError(f"num_classes must be > 1, got {self.num_classes}")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")

    def metadata(self) -> dict[str, object]:
        """JSON-compatible description (everything except the weights)."""
        return {
            "name": self.name,
            "architecture": self.architecture.to_dict(),
            "device": dataclasses.asdict(self.device),
            "num_classes": self.num_classes,
            "k": self.k,
            "embed_dim": self.embed_dim,
            "seed": self.seed,
            "slo_ms": self.slo_ms,
            "signature": None if self.signature is None else self.signature.to_dict(),
        }


class ModelRegistry:
    """Named collection of deployed models with disk persistence."""

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, DeployedModel]" = OrderedDict()
        self._generation = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def register(
        self,
        name: str,
        architecture: Architecture,
        device: DeviceSpec,
        num_classes: int,
        k: int = DEFAULTS.k,
        embed_dim: int = DEFAULTS.embed_dim,
        seed: int = DEFAULTS.seed,
        slo_ms: float | None = None,
        model: DerivedModel | None = None,
        replace: bool = False,
    ) -> DeployedModel:
        """Register an architecture for serving.

        Args:
            name: Unique registry key.
            architecture: Searched genotype to deploy.
            device: Target device; its cost model drives admission control.
            num_classes: Output classes of the classifier head.
            k: Neighbourhood size used at inference time (default: the
                shared :class:`~repro.workspace.InferenceDefaults`, so the
                served scenario matches the searched one).
            embed_dim: Classifier-head embedding width.
            seed: Weight-initialisation seed (ignored when ``model`` given).
            slo_ms: Optional per-request latency budget on ``device``.
            model: Pre-built (e.g. trained) model; instantiated fresh if omitted.
            replace: Allow overwriting an existing entry of the same name.

        Raises:
            ValueError: When the architecture is statically invalid for the
                deployment scenario, or a supplied ``model`` is inconsistent
                with the genotype it is registered under.
        """
        if name in self._entries and not replace:
            raise ValueError(f"model '{name}' already registered (pass replace=True)")
        report = validate_architecture(
            architecture, k=k, num_classes=num_classes, embed_dim=embed_dim
        )
        if not report.ok:
            raise ValueError(
                f"cannot deploy '{name}': architecture fails static validation\n{report.format()}"
            )
        if model is None:
            model = DerivedModel(architecture, num_classes=num_classes, k=k, embed_dim=embed_dim, seed=seed)
        else:
            problems = check_model_consistency(model, architecture, num_classes, k)
            if problems:
                details = "\n".join(diag.format() for diag in problems)
                raise ValueError(
                    f"cannot deploy '{name}': model is inconsistent with its architecture\n{details}"
                )
        model.eval()
        self._generation += 1
        entry = DeployedModel(
            name=name,
            architecture=architecture,
            model=model,
            device=device,
            num_classes=num_classes,
            k=k,
            embed_dim=embed_dim,
            seed=seed,
            slo_ms=slo_ms,
            generation=self._generation,
            signature=report.signature,
        )
        self._entries[name] = entry
        return entry

    def add(self, deployed: DeployedModel, replace: bool = False) -> DeployedModel:
        """Adopt an existing :class:`DeployedModel` entry wholesale.

        Unlike re-calling :meth:`register` field by field, this preserves
        every field of the entry (including ones added to
        :class:`DeployedModel` later) and only stamps a fresh generation so
        engine caches never serve results computed by a replaced model.
        """
        if deployed.name in self._entries and not replace:
            raise ValueError(f"model '{deployed.name}' already registered (pass replace=True)")
        self._generation += 1
        signature = deployed.signature
        if signature is None:
            signature = infer_signature(
                deployed.architecture,
                deployed.num_classes,
                k=deployed.k,
                embed_dim=deployed.embed_dim,
            )
        entry = dataclasses.replace(deployed, generation=self._generation, signature=signature)
        entry.model.eval()
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> DeployedModel:
        """Return the entry for ``name`` (raises ``KeyError`` if absent)."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"no deployed model '{name}'; registered: {self.list()}") from None

    def list(self) -> list[str]:
        """Registered model names in insertion order."""
        return list(self._entries)

    def entries(self) -> list[DeployedModel]:
        """All registered entries in insertion order."""
        return list(self._entries.values())

    def evict(self, name: str) -> DeployedModel:
        """Remove and return the entry for ``name``."""
        entry = self.get(name)
        del self._entries[name]
        return entry

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: str | pathlib.Path) -> pathlib.Path:
        """Write the registry (metadata + per-entry weights) under ``directory``."""
        directory = pathlib.Path(directory)
        manifest = {
            "format": "repro.serving.registry/v1",
            "version": __version__,
            "entries": [entry.metadata() for entry in self._entries.values()],
        }
        save_json(directory / "registry.json", manifest)
        for entry in self._entries.values():
            save_npz(directory / "weights" / f"{entry.name}.npz", entry.model.state_dict())
        return directory

    @classmethod
    def load(cls, directory: str | pathlib.Path) -> "ModelRegistry":
        """Rebuild a registry saved with :meth:`save`."""
        directory = pathlib.Path(directory)
        manifest = load_json(directory / "registry.json")
        if manifest.get("format") != "repro.serving.registry/v1":
            raise ValueError(f"unrecognised registry format in {directory / 'registry.json'}")
        registry = cls()
        for meta in manifest["entries"]:
            architecture = Architecture.from_dict(meta["architecture"])
            device = DeviceSpec(**meta["device"])
            entry = registry.register(
                name=str(meta["name"]),
                architecture=architecture,
                device=device,
                num_classes=int(meta["num_classes"]),
                k=int(meta["k"]),
                embed_dim=int(meta["embed_dim"]),
                seed=int(meta["seed"]),
                slo_ms=None if meta["slo_ms"] is None else float(meta["slo_ms"]),
            )
            entry.model.load_state_dict(load_npz(directory / "weights" / f"{entry.name}.npz"))
            # Restore the signature computed at original deployment time
            # (e.g. its recorded compute dtype) rather than keeping the one
            # register() just re-inferred under the current policy.
            if meta.get("signature") is not None:
                entry.signature = StaticSignature.from_dict(meta["signature"])
        return registry
