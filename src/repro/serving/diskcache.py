"""Disk-backed, cross-process cache tier for the serving engines.

The in-memory LRU caches of :mod:`repro.serving.cache` are per-process:
with N worker processes serving the same deployment, a cloud computed by
worker 0 would be recomputed by worker 3.  :class:`SharedArrayCache` adds
a second, disk-backed tier under a shared directory (typically the
workspace root) that every worker of a pool reads and writes:

* **Keys** are the same content hashes as the in-memory tier
  (:func:`repro.serving.cache.cloud_fingerprint`), extended with a
  process-independent :func:`deployment_fingerprint` so two workers that
  loaded the same registry snapshot agree on every key even though their
  per-registry ``generation`` counters are local.
* **Writes** are atomic (unique temp file + ``os.replace``), so a racing
  reader sees either the previous complete entry or the new complete
  entry, never a torn one.  Entries are ``put_if_absent`` — the first
  computation of a key wins, mirroring the in-memory tier's first-write
  replay semantics.
* **Values** are single ``.npy`` arrays (result logits, KNN edge
  indices), fanned out over 256 prefix shards to keep directories small.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import uuid

import numpy as np

from repro.faults import fault_point
from repro.serving.cache import CacheStats
from repro.utils.logging import get_logger

__all__ = ["SharedArrayCache", "deployment_fingerprint"]

_LOGGER = get_logger("serving.diskcache")


def deployment_fingerprint(entry, backend: str) -> str:
    """Process-independent content hash of one deployed model.

    Covers everything that determines the logits a deployment produces for
    a given cloud: the genotype, the head configuration, the actual weight
    bytes and the compute backend.  Unlike the registry's ``generation``
    counter (a per-process monotonic stamp), this hash is identical across
    worker processes that loaded the same registry snapshot — the property
    a cross-process cache key needs — while any redeploy that changes the
    weights or architecture changes the key, so a shared cache can never
    serve logits of a replaced model.
    """
    digest = hashlib.blake2b(digest_size=16)
    identity = {
        "architecture": entry.architecture.to_dict(),
        "num_classes": entry.num_classes,
        "k": entry.k,
        "embed_dim": entry.embed_dim,
        "backend": backend,
    }
    digest.update(json.dumps(identity, sort_keys=True, separators=(",", ":")).encode())
    state = entry.model.state_dict()
    for name in sorted(state):
        value = np.ascontiguousarray(state[name])
        digest.update(name.encode())
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


class SharedArrayCache:
    """A content-addressed one-array-per-key cache on shared disk.

    Safe under concurrent readers and writers from multiple processes:
    writes go to a unique temp file in the same shard directory and are
    committed with an atomic rename, and reads tolerate a key appearing or
    disappearing between the lookup and the open.  Hit/miss/write counters
    are per-process (each worker reports its own view; a pool sums them).
    """

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0

    def _path(self, key: str) -> pathlib.Path:
        shard = key[:2] if len(key) >= 2 else "xx"
        return self.directory / shard / f"{key}.npy"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.npy"))

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a damaged entry aside so it is never re-read as a value.

        The ``.corrupt`` suffix takes the file out of every glob and lookup
        path; keeping the bytes (instead of unlinking) preserves evidence
        for debugging what wrote them.
        """
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except FileNotFoundError:  # pragma: no cover - racing deletion
            return
        self.quarantined += 1
        _LOGGER.warning("quarantined corrupt shared-cache entry %s", target)

    def get(self, key: str) -> np.ndarray | None:
        """Load the entry for ``key``, or ``None`` on a miss.

        A truncated or garbled entry (torn by a crashed writer, bit-rotted
        on disk) reads as a miss: the file is quarantined (renamed to
        ``<name>.corrupt``) and the caller recomputes, rather than one bad
        entry failing every request that hashes onto it.
        """
        path = self._path(key)
        spec = fault_point("serving.diskcache.get", key=key)
        if spec is not None and spec.action == "corrupt" and path.exists():
            path.write_bytes(b"\x00corrupt\x00")  # garble in place: the real recovery path runs
        try:
            value = np.load(path, allow_pickle=False)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError, EOFError):
            # Bad magic, truncated payload, or an I/O error mid-read: treat
            # as a miss and quarantine whatever is on disk.  (ValueError also
            # covers a file racing deletion mid-open on some platforms; the
            # quarantine rename is then a no-op.)
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put_if_absent(self, key: str, value: np.ndarray) -> bool:
        """Store ``value`` unless ``key`` already exists; returns whether written.

        The existence check and the rename are not one atomic unit, so two
        racing writers of the same key may both write — they commit via
        ``os.replace``, so the entry is always one writer's complete bytes.
        """
        path = self._path(key)
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.with_name(f".{uuid.uuid4().hex}.tmp.npy")
        with open(staging, "wb") as handle:
            np.save(handle, np.ascontiguousarray(value), allow_pickle=False)
        os.replace(staging, path)
        self.writes += 1
        return True

    def clear(self) -> int:
        """Delete every entry; returns the number removed (counters kept)."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*/*.npy"):
                try:
                    entry.unlink()
                    removed += 1
                except FileNotFoundError:
                    continue
        return removed

    def stats(self) -> CacheStats:
        """This process's counter view (size reflects the shared directory)."""
        size = len(self)
        return CacheStats(hits=self.hits, misses=self.misses, evictions=0, size=size, capacity=size)

    def stats_dict(self) -> dict:
        """JSON-compatible :meth:`stats` plus the write counter."""
        payload = dataclasses.asdict(self.stats())
        payload["writes"] = self.writes
        payload["quarantined"] = self.quarantined
        return payload
