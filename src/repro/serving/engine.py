"""The inference engine: registry + micro-batcher + caches + telemetry.

:class:`InferenceEngine` serves point-cloud classification requests
through deployed searched architectures with a synchronous
``submit()``/``submit_many()`` API:

1. **Admission control** — each request's latency on the entry's target
   device is estimated with the analytical cost model
   (:func:`repro.hardware.latency.estimate_latency`); requests whose
   estimate exceeds the entry's SLO budget, or that arrive while the
   queue is at capacity, are rejected up front instead of queued.
2. **Result cache** — a bounded LRU keyed by the content hash of the
   (quantised) input cloud returns logits for repeated inputs without
   running the model.
3. **Micro-batching** — admitted misses accumulate in the
   :class:`~repro.serving.batcher.MicroBatcher` and execute as packed
   ragged batches (:func:`repro.graph.batching.pack_clouds`).
4. **Edge cache** — during execution a
   :class:`~repro.serving.cache.CachingGraphBuilder` reuses per-cloud KNN
   edge indices, the dominant cost HGNAS identifies.  The builder is
   deterministic (random sampling is seeded from the cloud fingerprint),
   so results are bit-identical with caching on or off.

The worker loop is explicit: ``step()`` executes one due batch,
``run_worker()`` drains the queue; ``submit``/``submit_many`` drive it
internally so callers get a simple blocking API.
"""

from __future__ import annotations

import contextlib
import pathlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.backends import active_backend_name, get_backend, use_backend
from repro.data.dataset import Batch
from repro.graph.batching import pack_clouds
from repro.hardware.latency import estimate_latency
from repro.nn.dtype import get_default_dtype
from repro.nn.tensor import no_grad
from repro.serving.batcher import BatcherConfig, MicroBatcher, QueuedRequest
from repro.serving.cache import CachingGraphBuilder, LRUCache, cloud_fingerprint
from repro.serving.diskcache import SharedArrayCache, deployment_fingerprint
from repro.serving.registry import DeployedModel, ModelRegistry
from repro.serving.telemetry import TelemetryStore

__all__ = ["AdmissionError", "EngineConfig", "InferenceResult", "InferenceEngine", "validate_points"]


class AdmissionError(RuntimeError):
    """Raised when admission control rejects a request."""


@dataclass(frozen=True)
class EngineConfig:
    """Serving-engine policy knobs."""

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    result_cache_capacity: int = 512
    edge_cache_capacity: int = 512
    admission_control: bool = True
    max_queue_depth: int = 1024
    quantize_decimals: int = 6
    telemetry_window: int = 1024
    #: Compute backend batches execute under (a registered name from
    #: :mod:`repro.backends`); ``None`` follows the ambient active backend.
    backend: str | None = None
    #: Directory of the cross-process result/edge cache tier shared by the
    #: workers of a :class:`~repro.serving.pool.WorkerPoolEngine`; ``None``
    #: keeps caching purely in-process.
    shared_cache_dir: str | None = None

    def __post_init__(self) -> None:
        # Every policy knob is validated at construction so misconfiguration
        # fails here with a clear message instead of deep inside the batcher
        # (or inside a worker process, once N engines run behind a pool).
        if self.max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue_depth <= 0:
            raise ValueError(f"max_queue_depth must be positive, got {self.max_queue_depth}")
        if self.result_cache_capacity < 0 or self.edge_cache_capacity < 0:
            raise ValueError("cache capacities must be >= 0")
        if self.quantize_decimals < 0:
            raise ValueError(f"quantize_decimals must be >= 0, got {self.quantize_decimals}")
        if self.telemetry_window <= 0:
            raise ValueError(f"telemetry_window must be positive, got {self.telemetry_window}")
        if self.backend is not None:
            get_backend(self.backend)  # fail fast on unknown names


@dataclass
class InferenceResult:
    """Outcome of one served request."""

    request_id: int
    model: str
    label: int
    logits: np.ndarray
    probabilities: np.ndarray
    latency_ms: float
    queue_ms: float
    batch_size: int
    from_cache: bool
    estimated_device_ms: float
    #: Pool worker that served the request (``None`` for in-process engines).
    worker: int | None = None


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def validate_points(entry: DeployedModel, points: np.ndarray) -> np.ndarray:
    """Coerce and validate one request cloud against a deployment.

    Shared by the in-process engine and the pool frontend (which validates
    before paying the IPC cost of dispatching to a worker).  Serving is an
    entry point, so requests are coerced to the default compute dtype.
    """
    points = np.asarray(points, dtype=get_default_dtype())
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError(f"a request must be a non-empty (N, D) cloud, got shape {points.shape}")
    if entry.signature is not None:
        # O(1) admission check against the statically inferred contract —
        # catches e.g. a single-point cloud sent to a KNN-sampling model
        # up front instead of failing deep inside batch execution.
        problems = entry.signature.validate_request(points.shape[0], points.shape[1])
        if problems:
            raise ValueError(f"model '{entry.name}' cannot serve this request: " + "; ".join(problems))
    elif points.shape[1] != entry.architecture.input_dim:
        raise ValueError(
            f"model '{entry.name}' expects {entry.architecture.input_dim}-D point features, "
            f"got a cloud of shape {points.shape}"
        )
    if not np.isfinite(points).all():
        raise ValueError("a request cloud must not contain NaN or infinite coordinates")
    return points


@dataclass
class _PendingSlot:
    """Bookkeeping for a request between submission and execution."""

    request: QueuedRequest
    result: InferenceResult | None = None
    extras: dict = field(default_factory=dict)


class InferenceEngine:
    """Batched, cached, SLO-aware serving over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: EngineConfig | None = None,
        clock=time.monotonic,
    ):
        self.registry = registry
        self.config = config or EngineConfig()
        self.clock = clock
        self.batcher = MicroBatcher(
            BatcherConfig(self.config.max_batch_size, self.config.max_wait_ms), clock=clock
        )
        self.result_cache = LRUCache(self.config.result_cache_capacity)
        self.edge_cache = LRUCache(self.config.edge_cache_capacity)
        self.telemetry = TelemetryStore(self.config.telemetry_window)
        # Optional cross-process tier: result logits and KNN edge indices
        # shared with the other workers of a pool through disk.
        self.shared_cache: SharedArrayCache | None = None
        shared_edges: SharedArrayCache | None = None
        if self.config.shared_cache_dir is not None:
            shared_root = pathlib.Path(self.config.shared_cache_dir)
            self.shared_cache = SharedArrayCache(shared_root / "results")
            shared_edges = SharedArrayCache(shared_root / "edges")
        self._graph_builder = CachingGraphBuilder(
            cache=self.edge_cache if self.config.edge_cache_capacity > 0 else None,
            decimals=self.config.quantize_decimals,
            shared=shared_edges,
        )
        # Deterministic builder even with caching disabled, so cached and
        # uncached engines produce bit-identical logits.
        self._uncached_builder = CachingGraphBuilder(cache=None, decimals=self.config.quantize_decimals)
        self._pending: dict[int, _PendingSlot] = {}
        self._latency_estimates: dict[tuple[str, int], float] = {}
        self._content_keys: dict[tuple[str, int], str] = {}
        self._next_request_id = 0

    def _backend_name(self) -> str:
        """Backend batches of this engine execute under (for cache identity)."""
        return self.config.backend or active_backend_name()

    def _backend_context(self):
        if self.config.backend is None:
            return contextlib.nullcontext()
        return use_backend(self.config.backend)

    def _content_key(self, entry: DeployedModel) -> str:
        """Process-independent cache identity of one deployment.

        Hashes genotype + head configuration + weight bytes + backend, so
        the key is stable across the worker processes of a pool (unlike the
        per-registry ``generation`` counter) while a redeploy that changes
        the weights or architecture still invalidates every cached result.
        Cached per (name, generation) so the weights are hashed once per
        deployment, not per request.
        """
        cache_key = (entry.name, entry.generation)
        if cache_key not in self._content_keys:
            self._content_keys[cache_key] = deployment_fingerprint(entry, self._backend_name())
        return self._content_keys[cache_key]

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    def estimate_request_ms(self, entry: DeployedModel, num_points: int) -> float:
        """Cost-model latency of one ``num_points`` request on the entry's device."""
        key = (entry.name, num_points)
        if key not in self._latency_estimates:
            workload = entry.architecture.to_workload(
                num_points=num_points, k=entry.k, num_classes=entry.num_classes
            )
            self._latency_estimates[key] = estimate_latency(workload, entry.device).total_ms
        return self._latency_estimates[key]

    def _admit(self, entry: DeployedModel, points: np.ndarray) -> float:
        estimated = self.estimate_request_ms(entry, points.shape[0])
        if not self.config.admission_control:
            return estimated
        if entry.slo_ms is not None and estimated > entry.slo_ms:
            self.telemetry.model(entry.name).record_rejection()
            raise AdmissionError(
                f"request rejected: estimated {estimated:.2f} ms on {entry.device.name} "
                f"exceeds the {entry.slo_ms:.2f} ms SLO of model '{entry.name}'"
            )
        if self.batcher.queue_depth >= self.config.max_queue_depth:
            self.telemetry.model(entry.name).record_rejection()
            raise AdmissionError(
                f"request rejected: queue depth {self.batcher.queue_depth} at capacity "
                f"({self.config.max_queue_depth})"
            )
        return estimated

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def _validate_points(self, entry: DeployedModel, points: np.ndarray) -> np.ndarray:
        return validate_points(entry, points)

    def _enqueue(self, model: str, points: np.ndarray) -> int:
        """Admit one request: serve from the result cache or queue it."""
        entry = self.registry.get(model)
        points = self._validate_points(entry, points)
        estimated = self._admit(entry, points)
        # The content key distinguishes redeployments of the same name (its
        # weight hash changes), so a replace=True re-registration can never
        # serve stale cached logits; it also folds in the backend name, which
        # keeps logits computed by different kernel variants (bit-different
        # under e.g. blocked summation) from aliasing — and, unlike the old
        # per-process generation counter, it is identical across the worker
        # processes of a pool, making the key valid in the shared disk tier.
        fingerprint = cloud_fingerprint(
            points,
            self.config.quantize_decimals,
            extra=(model, self._content_key(entry)),
        )
        request_id = self._next_request_id
        self._next_request_id += 1
        request = QueuedRequest(
            request_id=request_id,
            model=model,
            points=points,
            enqueued_at=self.clock(),
            fingerprint=fingerprint,
            estimated_device_ms=estimated,
        )
        slot = _PendingSlot(request=request)
        self._pending[request_id] = slot
        cached_logits = self.result_cache.get(fingerprint)
        if cached_logits is None and self.shared_cache is not None:
            # Cross-process tier: a cloud computed by any pool worker is an
            # admission-time hit here.  Consulted only at admission — like
            # the local tier — so the composition of computed batches never
            # depends on cache state.
            shared = self.shared_cache.get(fingerprint)
            if shared is not None:
                self.result_cache.put(fingerprint, np.array(shared, copy=True))
                cached_logits = shared
        if cached_logits is not None:
            logits = np.array(cached_logits, copy=True)
            slot.result = InferenceResult(
                request_id=request_id,
                model=model,
                label=int(np.argmax(logits)),
                logits=logits,
                probabilities=_softmax(logits),
                latency_ms=0.0,
                queue_ms=0.0,
                batch_size=0,
                from_cache=True,
                estimated_device_ms=estimated,
            )
            # Telemetry is recorded at collection time (see _collect): if the
            # surrounding submit_many is later cancelled, this request was
            # never delivered and must not count as served.
            slot.extras["admission_hit"] = True
        else:
            self.batcher.enqueue(request)
            self.telemetry.observe_queue_depth(self.batcher.queue_depth)
        return request_id

    def submit(self, model: str, points: np.ndarray) -> InferenceResult:
        """Serve one point cloud synchronously.

        Raises:
            AdmissionError: When the request would blow the model's SLO
                budget or the queue is full.
        """
        request_id = self._enqueue(model, points)
        self.run_worker()
        return self._collect(request_id)

    def submit_many(self, model: str, clouds) -> list[InferenceResult]:
        """Serve a stream of clouds, micro-batching admitted requests.

        All requests are admitted (or rejected) up front, the worker loop
        drains the queue, and results come back in submission order.
        Admission is all-or-nothing: if any request is rejected (or
        invalid), the call's already-admitted requests are cancelled before
        the error propagates, leaving the engine queue unchanged.
        """
        request_ids: list[int] = []
        try:
            for cloud in clouds:
                request_ids.append(self._enqueue(model, cloud))
            self.run_worker()
            return [self._collect(request_id) for request_id in request_ids]
        except Exception:
            # Covers admission failures *and* execution failures: no request
            # of this call may linger in the queue or the pending map.
            self._cancel(request_ids)
            raise

    def _cancel(self, request_ids: list[int]) -> None:
        """Forget queued requests of a failed submission."""
        ids = set(request_ids)
        for request_id in ids:
            self._pending.pop(request_id, None)
        self.batcher.discard(ids)

    def _collect(self, request_id: int) -> InferenceResult:
        slot = self._pending.pop(request_id)
        if slot.result is None:  # pragma: no cover - defensive
            raise RuntimeError(f"request {request_id} was never executed")
        if slot.extras.get("admission_hit"):
            self.telemetry.model(slot.result.model).record_request(
                latency_ms=0.0, queue_ms=0.0, from_cache=True
            )
        return slot.result

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    def step(self, force: bool = True) -> int:
        """Execute the next due batch; returns the number of requests served."""
        batch = self.batcher.pop_ready(force=force)
        if batch is None:
            return 0
        try:
            self._execute_batch(batch)
        except Exception:
            # A poisoned batch must not leave orphaned bookkeeping behind.
            for request in batch:
                self._pending.pop(request.request_id, None)
            raise
        return len(batch)

    def run_worker(self, force: bool = True) -> int:
        """Drain the queue; returns the total number of requests served."""
        total = 0
        while self.batcher.has_pending():
            served = self.step(force=force)
            if served == 0:
                break
            total += served
        return total

    def _execute_batch(self, requests: list[QueuedRequest]) -> None:
        entry = self.registry.get(requests[0].model)
        telemetry = self.telemetry.model(entry.name)
        started = self.clock()
        # In-batch deduplication: identical clouds inside one batch compute
        # once and fan out.  The result cache is only consulted at admission
        # time — never here — so the composition of computed batches does not
        # depend on cache state, which keeps cached and uncached engines
        # bit-identical (BLAS kernels are not bitwise stable across batch
        # shapes).
        compute: list[QueuedRequest] = []
        row_of: dict[str, int] = {}
        for request in requests:
            if request.fingerprint not in row_of:
                row_of[request.fingerprint] = len(compute)
                compute.append(request)
        points, batch_vector = pack_clouds([request.points for request in compute])
        batch = Batch(
            points=points,
            batch=batch_vector,
            labels=np.zeros(len(compute), dtype=np.int64),
            num_graphs=len(compute),
        )
        entry.model.eval()
        entry.model.graph_builder = (
            self._graph_builder if self.config.edge_cache_capacity > 0 else self._uncached_builder
        )
        try:
            with telemetry.busy, no_grad(), self._backend_context():
                logits = entry.model(batch).data
        finally:
            entry.model.graph_builder = None
        telemetry.record_batch(len(compute))
        for fingerprint, row in row_of.items():
            # First write wins: a cached reply always replays the bits of the
            # input's first computation, so cache hits are reproducible even
            # when later batches recompute the same input in a different
            # (bitwise-unstable) batch composition.
            if fingerprint not in self.result_cache:
                self.result_cache.put(fingerprint, np.array(logits[row], copy=True))
            if self.shared_cache is not None:
                # First write wins on disk too: put_if_absent keeps the bits
                # of a key's first cross-process computation.
                self.shared_cache.put_if_absent(fingerprint, logits[row])
        finished = self.clock()
        wall_ms = (finished - started) * 1e3
        for request in requests:
            row = row_of[request.fingerprint]
            row_logits = np.array(logits[row], copy=True)
            # Requests deduplicated onto another request's row were served
            # without dedicated compute; report them as cache-served.
            from_cache = request is not compute[row]
            queue_ms = (started - request.enqueued_at) * 1e3
            result = InferenceResult(
                request_id=request.request_id,
                model=entry.name,
                label=int(np.argmax(row_logits)),
                logits=row_logits,
                probabilities=_softmax(row_logits),
                latency_ms=queue_ms + wall_ms,
                queue_ms=queue_ms,
                batch_size=len(compute),
                from_cache=from_cache,
                estimated_device_ms=request.estimated_device_ms,
            )
            self._pending[request.request_id].result = result
            telemetry.record_request(latency_ms=result.latency_ms, queue_ms=queue_ms, from_cache=from_cache)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def cache_stats(self):
        """Result-, edge- and (when configured) shared-cache counter snapshots."""
        stats = {"result": self.result_cache.stats(), "edge": self.edge_cache.stats()}
        if self.shared_cache is not None:
            stats["shared"] = self.shared_cache.stats()
        return stats

    def report(self) -> dict[str, object]:
        """Full telemetry report including cache statistics."""
        return self.telemetry.report(self.cache_stats())

    def format_report(self) -> str:
        """Human-readable telemetry report."""
        return self.telemetry.format_report(self.cache_stats())
