"""``repro-serve``: command-line demo of the serving engine.

Deploys the paper's Fig. 10 preset architecture for a chosen device and
serves a synthetic request stream through the batched, cached engine,
printing the telemetry report.  Mostly a smoke-test / profiling entry
point; programmatic users should go through :mod:`repro.api`.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.hardware.device import get_device, list_devices
from repro.nas.presets import device_fast_architecture
from repro.serving.engine import AdmissionError, EngineConfig, InferenceEngine
from repro.serving.registry import ModelRegistry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve synthetic point-cloud requests through a deployed HGNAS architecture.",
    )
    parser.add_argument("--device", default="jetson-tx2", help=f"target device ({', '.join(list_devices())} or aliases)")
    parser.add_argument("--requests", type=int, default=64, help="number of synthetic requests")
    parser.add_argument("--num-points", type=int, default=64, help="points per request cloud")
    parser.add_argument("--num-classes", type=int, default=10, help="classifier output classes")
    parser.add_argument("--batch-size", type=int, default=8, help="micro-batch size")
    parser.add_argument("--repeat-every", type=int, default=4, help="reuse a previous cloud every Nth request (0 disables)")
    parser.add_argument("--slo-ms", type=float, default=None, help="per-request latency SLO on the target device")
    parser.add_argument("--no-cache", action="store_true", help="disable result and edge caches")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed for the synthetic stream")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except (KeyError, ValueError, AdmissionError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"repro-serve: error: {message}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    architecture = device_fast_architecture(device.name)

    registry = ModelRegistry()
    registry.register(
        name=f"{architecture.name}-demo",
        architecture=architecture,
        device=device,
        num_classes=args.num_classes,
        k=8,
        slo_ms=args.slo_ms,
    )
    cache_capacity = 0 if args.no_cache else 512
    engine = InferenceEngine(
        registry,
        EngineConfig(
            max_batch_size=args.batch_size,
            result_cache_capacity=cache_capacity,
            edge_cache_capacity=cache_capacity,
        ),
    )

    rng = np.random.default_rng(args.seed)
    clouds: list[np.ndarray] = []
    for index in range(args.requests):
        if args.repeat_every and clouds and index % args.repeat_every == 0:
            clouds.append(clouds[int(rng.integers(0, len(clouds)))])
        else:
            clouds.append(rng.standard_normal((args.num_points, 3)))

    model_name = registry.list()[0]
    results = engine.submit_many(model_name, clouds)
    print(f"served {len(results)} requests on {device.display_name} via '{model_name}'")
    print(engine.format_report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
