"""Deprecated location of the serving CLI — use ``repro serve`` instead.

The ``repro-serve`` console script and this module are kept as back-compat
aliases for the unified :mod:`repro.cli` entry point: :func:`main` prints a
deprecation notice on stderr — once per process, not per invocation — and
forwards its arguments verbatim (including the multi-worker flags
``--workers``/``--port``) to ``repro serve``.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.main import add_serve_arguments
from repro.cli.main import main as _cli_main

__all__ = ["main", "build_parser"]

_WARNED = False


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (same flags as ``repro serve``)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Deprecated alias of 'repro serve': serve synthetic point-cloud requests.",
    )
    add_serve_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    global _WARNED
    if not _WARNED:
        print("repro-serve is deprecated; use 'repro serve' instead.", file=sys.stderr)
        _WARNED = True
    arguments = sys.argv[1:] if argv is None else list(argv)
    return _cli_main(["serve", *arguments])


if __name__ == "__main__":
    raise SystemExit(main())
