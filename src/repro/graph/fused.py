"""Fused gather → message → (MLP) → aggregate kernels.

The materialized message-passing path (:func:`repro.graph.message.build_messages`
followed by an MLP and a :mod:`repro.graph.scatter` aggregation) allocates a
full ``(E, message_dim)`` edge tensor, pushes it through the MLP as one giant
matrix and reduces it with ``np.ufunc.at`` — which is both bandwidth-bound
(every intermediate lives in memory at once) and reduction-bound
(``np.add.at``/``np.maximum.at`` are an order of magnitude slower than
contiguous segment reductions).

This module fuses the whole pipeline over **CSR-sorted edges**:

1. Edges are sorted by target node (KNN/random edge indices are already
   target-major, so this is a cheap verification pass) and turned into
   ``reduceat`` segment offsets.
2. Edges are processed in chunks aligned to segment boundaries: each chunk
   gathers its endpoint features, builds the messages, runs the (optional)
   MLP and reduces per target with ``np.ufunc.reduceat`` — so the peak
   intermediate is ``chunk × width`` instead of ``E × width``.
3. The backward pass is exact: chunks are rematerialized and standard
   backprop runs through the MLP, with max/min tie gradients split equally
   among winners exactly like :func:`repro.graph.scatter.scatter_max`.

The fused path supports the common message types (``source_pos``,
``target_pos``, ``rel_pos``, ``target_rel``) and MLPs made of
``Linear``/``ReLU``/``LeakyReLU`` (+ inert eval-mode ``Dropout``) — which
covers EdgeConv, the derived models and the supernet aggregate.  Everything
runs in the dtype of the node features, so the float32 default policy
(:mod:`repro.nn.dtype`) halves its memory traffic relative to the float64
seed implementation.

:class:`~repro.models.edgeconv.EdgeConv`, :class:`~repro.nas.derived.DerivedModel`
and the supernet dispatch here automatically in no-grad (inference) mode.

The low-level primitives (gather, matmul, segment reduction, scatter
accumulation) are owned by the **active compute backend**
(:mod:`repro.backends`); this module contributes the CSR layout, the
segment-aligned chunking and the exact rematerializing backward, and calls
:func:`repro.backends.active_backend` for the arithmetic.  Dispatch policy
lives there too: the ``materialized`` backend disables fused auto-dispatch,
and the :func:`use_fused_kernels`/:func:`set_fused_kernels` toggles of PR 5
remain as thin shims over ``use_backend``.
"""

from __future__ import annotations

import contextlib
from typing import Sequence

import numpy as np

from repro.backends import active_backend, active_backend_name, set_active_backend, use_backend
from repro.nn.layers import MLP, Dropout, Identity, LeakyReLU, Linear, ReLU, Sequential
from repro.nn.tensor import Tensor, apply_op, as_tensor
from repro.obs.metrics import get_metrics

__all__ = [
    "FUSED_MESSAGE_TYPES",
    "fused_kernels_enabled",
    "set_fused_kernels",
    "use_fused_kernels",
    "linearize_mlp",
    "supports_fused",
    "fused_aggregate",
    "fused_edgeconv",
]

#: Message types with a fused kernel (the linear-gather family).
FUSED_MESSAGE_TYPES = ("source_pos", "target_pos", "rel_pos", "target_rel")

#: Target number of edges per fused chunk; bounds the peak intermediate to
#: ``chunk × max(message_dim, mlp widths)`` floats while staying large
#: enough that BLAS and reduceat run at full throughput.
_CHUNK_EDGES = 32768

def fused_kernels_enabled() -> bool:
    """Whether models auto-dispatch to the fused kernels in no-grad mode.

    The policy now lives on the active compute backend: the ``materialized``
    backend is the one that answers ``False``.
    """
    return active_backend().fused_dispatch


def _toggle_target(enabled: bool) -> str:
    """Backend name that realizes the legacy boolean toggle.

    Disabling means the ``materialized`` backend; re-enabling from the
    materialized backend returns to the ``numpy`` reference.  Enabling while
    a fused-capable backend (numpy, numpy-blocked, numba, ...) is already
    active keeps it — the toggle never downgrades an explicit backend choice.
    """
    if not enabled:
        return "materialized"
    current = active_backend_name()
    return "numpy" if not active_backend().fused_dispatch else current


def set_fused_kernels(enabled: bool) -> None:
    """Deprecated: globally enable/disable fused-kernel dispatch.

    Thin shim over :func:`repro.backends.set_active_backend`; prefer
    ``set_active_backend("materialized")`` / ``set_active_backend("numpy")``.
    """
    set_active_backend(_toggle_target(bool(enabled)))


@contextlib.contextmanager
def use_fused_kernels(enabled: bool = True):
    """Deprecated: context manager that toggles fused-kernel dispatch.

    Thin shim over :func:`repro.backends.use_backend` (kept so the PR-5
    A/B benchmarks run unchanged); prefer
    ``use_backend("materialized")`` / ``use_backend("numpy")``.
    """
    with use_backend(_toggle_target(bool(enabled))):
        yield


def linearize_mlp(mlp) -> list[tuple] | None:
    """Flatten an MLP into fused-kernel steps, or ``None`` if unsupported.

    Supported modules: :class:`Linear`, :class:`ReLU`, :class:`LeakyReLU`,
    :class:`Identity` and eval-mode / zero-probability :class:`Dropout`.
    Anything else (``BatchNorm1d``, active dropout, custom modules) returns
    ``None`` and the caller falls back to the materialized path.
    """
    if mlp is None:
        return []
    if isinstance(mlp, MLP):
        modules: Sequence = list(mlp.layers)
    elif isinstance(mlp, Sequential):
        modules = list(mlp)
    else:
        return None
    steps: list[tuple] = []
    for module in modules:
        if isinstance(module, Linear):
            steps.append(("linear", module.weight, module.bias))
        elif isinstance(module, ReLU):
            steps.append(("act", 0.0))
        elif isinstance(module, LeakyReLU):
            steps.append(("act", float(module.negative_slope)))
        elif isinstance(module, Identity):
            continue
        elif isinstance(module, Dropout):
            if module.training and module.p > 0:
                return None
        else:
            return None
    return steps


def supports_fused(message_type: str, mlp=None) -> bool:
    """Whether the fused kernel can run this (message type, MLP) pair."""
    return message_type in FUSED_MESSAGE_TYPES and linearize_mlp(mlp) is not None


def _csr_segments(edge_index: np.ndarray):
    """Sort edges by target and compute ``reduceat`` segment offsets.

    Returns ``(sources, targets, seg_nodes, seg_starts, seg_counts)`` where
    the edges are target-sorted and the three segment arrays describe the
    non-empty targets only (``reduceat`` cannot express empty segments).
    """
    sources = np.asarray(edge_index[0], dtype=np.int64)
    targets = np.asarray(edge_index[1], dtype=np.int64)
    if targets.size and np.any(targets[:-1] > targets[1:]):
        order = np.argsort(targets, kind="stable")
        sources = sources[order]
        targets = targets[order]
    # Non-empty segments: boundaries where the sorted target changes.
    if targets.size:
        boundaries = np.flatnonzero(np.diff(targets)) + 1
        seg_starts = np.concatenate([[0], boundaries]).astype(np.int64)
        seg_nodes = targets[seg_starts]
        seg_counts = np.diff(np.concatenate([seg_starts, [targets.size]]))
    else:
        seg_starts = np.zeros(0, dtype=np.int64)
        seg_nodes = np.zeros(0, dtype=np.int64)
        seg_counts = np.zeros(0, dtype=np.int64)
    return sources, targets, seg_nodes, seg_starts, seg_counts


def _chunk_messages(backend, xd, src, tgt, message_type):
    if message_type == "source_pos":
        return backend.gather(xd, src)
    if message_type == "target_pos":
        return backend.gather(xd, tgt)
    if message_type == "rel_pos":
        return backend.gather(xd, src) - backend.gather(xd, tgt)
    # target_rel: [x_i, x_j - x_i]
    x_i = backend.gather(xd, tgt)
    return np.concatenate([x_i, backend.gather(xd, src) - x_i], axis=1)


def _run_steps(backend, h, steps, keep_intermediates: bool):
    """Apply linearized MLP steps; optionally keep per-step inputs for backprop."""
    inputs = [] if keep_intermediates else None
    for step in steps:
        if keep_intermediates:
            inputs.append(h)
        if step[0] == "linear":
            _, weight, bias = step
            h = backend.matmul(h, weight.data)
            if bias is not None:
                h = h + bias.data
        else:
            slope = step[1]
            if slope == 0.0:
                h = np.maximum(h, 0.0)
            else:
                h = np.where(h > 0.0, h, slope * h)
    return h, inputs


def _act_derivative(pre, slope, dtype):
    if slope == 0.0:
        return (pre > 0.0).astype(dtype)
    return np.where(pre > 0.0, dtype.type(1.0), dtype.type(slope))


def _scatter_dmsg(backend, dx, dmsg, src, tgt, message_type, feature_dim):
    if message_type == "source_pos":
        backend.scatter_add(dx, src, dmsg)
    elif message_type == "target_pos":
        backend.scatter_add(dx, tgt, dmsg)
    elif message_type == "rel_pos":
        backend.scatter_add(dx, src, dmsg)
        backend.scatter_add(dx, tgt, -dmsg)
    else:  # target_rel
        d_centre = dmsg[:, :feature_dim]
        d_rel = dmsg[:, feature_dim:]
        backend.scatter_add(dx, tgt, d_centre - d_rel)
        backend.scatter_add(dx, src, d_rel)


def fused_edgeconv(
    x: Tensor,
    edge_index: np.ndarray,
    mlp=None,
    message_type: str = "target_rel",
    aggregator: str = "max",
    num_nodes: int | None = None,
    chunk_edges: int = _CHUNK_EDGES,
    validated: bool = False,
) -> Tensor:
    """Fused message → MLP → aggregate, differentiable and chunked.

    Semantically equivalent to ``scatter(mlp(build_messages(x, edge_index,
    message_type)), edge_index[1], num_nodes, aggregator)`` but never
    materializes the full ``(E, F)`` message/activation tensors: edges are
    processed in segment-aligned chunks reduced with ``np.ufunc.reduceat``.

    Args:
        x: Node features ``(N, F)``.
        edge_index: Edge index ``(2, E)`` (targets need not be pre-sorted).
        mlp: Optional per-edge MLP; must satisfy :func:`linearize_mlp`.
        message_type: One of :data:`FUSED_MESSAGE_TYPES`.
        aggregator: ``sum`` / ``mean`` / ``max`` / ``min``.
        num_nodes: Output segment count (defaults to ``x.shape[0]``).
        chunk_edges: Target edges per chunk.
        validated: Skip the edge-index range scan (for indices produced by
            the repo's own — validating — graph builders).

    Returns:
        Aggregated features ``(num_nodes, out_dim)`` wired into autograd:
        gradients are exact (chunks are rematerialized in backward, max/min
        ties split equally among winners like ``scatter_max``).
    """
    x = as_tensor(x)
    if x.ndim != 2:
        raise ValueError(f"fused kernels expect 2-D node features, got shape {x.shape}")
    if message_type not in FUSED_MESSAGE_TYPES:
        raise ValueError(
            f"message type '{message_type}' has no fused kernel; "
            f"supported: {FUSED_MESSAGE_TYPES}"
        )
    if aggregator not in ("sum", "mean", "max", "min"):
        raise ValueError(f"unknown aggregator '{aggregator}'")
    steps = linearize_mlp(mlp)
    if steps is None:
        raise ValueError("MLP structure unsupported by the fused kernel (see linearize_mlp)")
    if chunk_edges <= 0:
        raise ValueError(f"chunk_edges must be positive, got {chunk_edges}")

    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_index.ndim != 2 or edge_index.shape[0] != 2:
        raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
    dim_size = x.shape[0] if num_nodes is None else int(num_nodes)
    if dim_size <= 0:
        raise ValueError(f"num_nodes must be positive, got {dim_size}")
    if not validated and edge_index.size:
        if edge_index.min() < 0:
            raise ValueError("edge_index contains negative node indices")
        # Sources always gather from x; targets index the output segments
        # and — for every message type except source_pos — x as well.
        target_bound = dim_size if message_type == "source_pos" else min(dim_size, x.shape[0])
        if edge_index[0].max() >= x.shape[0] or edge_index[1].max() >= target_bound:
            raise ValueError("edge_index references a node outside the graph")

    # Captured once so the forward pass and the (possibly much later)
    # rematerializing backward run on the same backend even if the ambient
    # context changed in between.
    backend = active_backend()
    metrics = get_metrics()
    metrics.count("graph.fused.dispatch")
    metrics.count("graph.fused.edges", int(edge_index.shape[1]))

    xd = x.data
    dtype = xd.dtype
    feature_dim = xd.shape[1]
    sources, targets, seg_nodes, seg_starts, seg_counts = _csr_segments(edge_index)
    num_edges = targets.size

    out_dim = feature_dim * (2 if message_type == "target_rel" else 1)
    for step in steps:
        if step[0] == "linear":
            out_dim = step[1].shape[1]

    out = np.zeros((dim_size, out_dim), dtype=dtype)

    # Chunk boundaries in segment space: each chunk covers whole segments
    # and at most ~chunk_edges edges (a single oversized segment still
    # becomes its own chunk).
    seg_ends = seg_starts + seg_counts
    chunk_bounds: list[tuple[int, int]] = []
    seg = 0
    while seg < seg_nodes.size:
        limit = seg_starts[seg] + chunk_edges
        stop = int(np.searchsorted(seg_ends, limit, side="right"))
        stop = max(stop, seg + 1)
        chunk_bounds.append((seg, stop))
        seg = stop

    for s0, s1 in chunk_bounds:
        e0, e1 = int(seg_starts[s0]), int(seg_ends[s1 - 1])
        h = _chunk_messages(backend, xd, sources[e0:e1], targets[e0:e1], message_type)
        h, _ = _run_steps(backend, h, steps, keep_intermediates=False)
        out[seg_nodes[s0:s1]] = backend.segment_reduce(
            h, seg_starts[s0:s1] - e0, seg_counts[s0:s1], aggregator
        )

    counts = None
    if aggregator == "mean":
        counts = seg_counts.astype(dtype)
        out[seg_nodes] /= counts[:, None]

    params: list[Tensor] = []
    for step in steps:
        if step[0] == "linear":
            params.append(step[1])
            if step[2] is not None:
                params.append(step[2])
    parents = (x, *params)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray | None]:
        grad = np.asarray(grad, dtype=dtype)
        dx = np.zeros_like(xd) if x.requires_grad else None
        linear_steps = [step for step in steps if step[0] == "linear"]
        d_weights = {id(step): np.zeros_like(step[1].data) for step in linear_steps}
        d_biases = {
            id(step): np.zeros_like(step[2].data) for step in linear_steps if step[2] is not None
        }
        if aggregator == "mean":
            scaled = grad[seg_nodes] / counts[:, None]
        elif aggregator == "sum":
            scaled = grad[seg_nodes]
        for s0, s1 in chunk_bounds:
            e0, e1 = int(seg_starts[s0]), int(seg_ends[s1 - 1])
            src = sources[e0:e1]
            tgt = targets[e0:e1]
            h = _chunk_messages(backend, xd, src, tgt, message_type)
            h, inputs = _run_steps(backend, h, steps, keep_intermediates=True)
            local_counts = seg_counts[s0:s1]
            seg_of_edge = np.repeat(np.arange(s1 - s0), local_counts)
            if aggregator in ("sum", "mean"):
                g = scaled[s0:s1][seg_of_edge]
            else:
                winners = (h == out[seg_nodes[s0:s1]][seg_of_edge]).astype(dtype)
                local_starts = seg_starts[s0:s1] - e0
                # Winner counts are small exact integers, so any backend's
                # summation order yields identical bits here.
                winner_counts = backend.segment_reduce(winners, local_starts, local_counts, "sum")
                g = winners * (grad[seg_nodes[s0:s1]] / winner_counts)[seg_of_edge]
            for step, layer_in in zip(reversed(steps), reversed(inputs)):
                if step[0] == "linear":
                    _, weight, bias = step
                    d_weights[id(step)] += backend.matmul(layer_in.T, g)
                    if bias is not None:
                        d_biases[id(step)] += g.sum(axis=0)
                    g = backend.matmul(g, weight.data.T)
                else:
                    g = g * _act_derivative(layer_in, step[1], dtype)
            if dx is not None:
                _scatter_dmsg(backend, dx, g, src, tgt, message_type, feature_dim)
        grads: list[np.ndarray | None] = [dx]
        for step in linear_steps:
            grads.append(d_weights[id(step)])
            if step[2] is not None:
                grads.append(d_biases[id(step)])
        return grads

    if num_edges == 0:
        # No messages: output is all zeros and every input gets a zero
        # gradient, matching the materialized path's accumulation.
        return apply_op(out, parents, lambda grad: [np.zeros_like(p.data) for p in parents])
    return apply_op(out, parents, backward_fn)


def fused_aggregate(
    x: Tensor,
    edge_index: np.ndarray,
    message_type: str,
    aggregator: str,
    num_nodes: int | None = None,
    validated: bool = False,
) -> Tensor:
    """Fused message construction + aggregation without an MLP.

    The MLP-free counterpart of :func:`fused_edgeconv`, used by the derived
    models and the supernet whose aggregate ops reduce raw messages.
    """
    return fused_edgeconv(
        x,
        edge_index,
        mlp=None,
        message_type=message_type,
        aggregator=aggregator,
        num_nodes=num_nodes,
        validated=validated,
    )
