"""Graph and point-cloud operations used by the GNN models and the NAS space."""

from repro.graph.adjacency import edges_to_dense, gcn_normalize, sum_aggregation_matrix
from repro.graph.batching import (
    batched_knn_graph,
    batched_random_graph,
    global_max_pool,
    global_mean_pool,
    global_sum_pool,
    pack_clouds,
    unpack_clouds,
)
from repro.graph.fused import (
    FUSED_MESSAGE_TYPES,
    fused_aggregate,
    fused_edgeconv,
    fused_kernels_enabled,
    linearize_mlp,
    set_fused_kernels,
    supports_fused,
    use_fused_kernels,
)
from repro.graph.edge_index import (
    add_self_loops,
    coalesce,
    degree,
    remove_self_loops,
    sort_by_target,
    to_undirected,
    validate_edge_index,
)
from repro.graph.knn import knn_graph, knn_indices, pairwise_sq_dists, radius_graph
from repro.graph.message import MESSAGE_TYPES, build_messages, message_dim
from repro.graph.sampling import farthest_point_sampling, random_graph, subsample_points
from repro.graph.scatter import (
    AGGREGATORS,
    scatter,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_sum,
    validate_index,
)

__all__ = [
    "batched_knn_graph",
    "batched_random_graph",
    "global_max_pool",
    "global_mean_pool",
    "global_sum_pool",
    "pack_clouds",
    "unpack_clouds",
    "edges_to_dense",
    "gcn_normalize",
    "sum_aggregation_matrix",
    "validate_edge_index",
    "coalesce",
    "add_self_loops",
    "remove_self_loops",
    "to_undirected",
    "degree",
    "sort_by_target",
    "knn_graph",
    "knn_indices",
    "radius_graph",
    "pairwise_sq_dists",
    "MESSAGE_TYPES",
    "build_messages",
    "message_dim",
    "random_graph",
    "farthest_point_sampling",
    "subsample_points",
    "AGGREGATORS",
    "scatter",
    "scatter_sum",
    "scatter_mean",
    "scatter_max",
    "scatter_min",
    "validate_index",
    "FUSED_MESSAGE_TYPES",
    "fused_aggregate",
    "fused_edgeconv",
    "fused_kernels_enabled",
    "linearize_mlp",
    "set_fused_kernels",
    "supports_fused",
    "use_fused_kernels",
]
