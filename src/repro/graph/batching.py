"""Batch-aware graph construction and pooling.

Mini-batches stack all clouds into one node set with a ``batch`` vector
(see :class:`repro.data.Batch`).  Graph construction must not connect
points belonging to different clouds, and global pooling must reduce each
cloud separately; both are handled here.
"""

from __future__ import annotations

import numpy as np

from repro.graph.knn import knn_graph
from repro.graph.sampling import random_graph
from repro.graph.scatter import scatter_max, scatter_mean, scatter_sum
from repro.nn.tensor import Tensor

__all__ = [
    "batched_knn_graph",
    "batched_random_graph",
    "global_max_pool",
    "global_mean_pool",
    "global_sum_pool",
]


def _check_batch(num_nodes: int, batch: np.ndarray) -> np.ndarray:
    batch = np.asarray(batch, dtype=np.int64)
    if batch.ndim != 1 or batch.shape[0] != num_nodes:
        raise ValueError(f"batch vector must be 1-D with {num_nodes} entries, got shape {batch.shape}")
    if batch.size and np.any(np.diff(batch) < 0):
        raise ValueError("batch vector must be sorted (clouds stored contiguously)")
    return batch


def batched_knn_graph(points: np.ndarray, batch: np.ndarray, k: int) -> np.ndarray:
    """Build a KNN graph independently inside every cloud of a batch.

    Args:
        points: Stacked point coordinates/features of shape ``(N_total, D)``.
        batch: Cloud index per point, sorted ascending.
        k: Number of neighbours.

    Returns:
        Edge index of shape ``(2, E)`` with indices into the stacked node set.
    """
    points = np.asarray(points, dtype=np.float64)
    batch = _check_batch(points.shape[0], batch)
    edges = []
    for graph_id in np.unique(batch):
        node_ids = np.flatnonzero(batch == graph_id)
        local_edges = knn_graph(points[node_ids], k)
        edges.append(node_ids[local_edges])
    if not edges:
        return np.zeros((2, 0), dtype=np.int64)
    return np.concatenate(edges, axis=1)


def batched_random_graph(
    batch: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Build a random-neighbour graph independently inside every cloud."""
    batch = np.asarray(batch, dtype=np.int64)
    if batch.ndim != 1:
        raise ValueError("batch vector must be 1-D")
    edges = []
    for graph_id in np.unique(batch):
        node_ids = np.flatnonzero(batch == graph_id)
        local_edges = random_graph(len(node_ids), k, rng)
        edges.append(node_ids[local_edges])
    if not edges:
        return np.zeros((2, 0), dtype=np.int64)
    return np.concatenate(edges, axis=1)


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-cloud elementwise maximum over node features."""
    return scatter_max(x, _check_batch(x.shape[0], batch), num_graphs)


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-cloud mean over node features."""
    return scatter_mean(x, _check_batch(x.shape[0], batch), num_graphs)


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-cloud sum over node features."""
    return scatter_sum(x, _check_batch(x.shape[0], batch), num_graphs)
