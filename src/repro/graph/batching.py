"""Batch-aware graph construction and pooling.

Mini-batches stack all clouds into one node set with a ``batch`` vector
(see :class:`repro.data.Batch`).  Graph construction must not connect
points belonging to different clouds, and global pooling must reduce each
cloud separately; both are handled here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.knn import knn_graph
from repro.graph.sampling import random_graph
from repro.graph.scatter import scatter_max, scatter_mean, scatter_sum
from repro.nn.dtype import as_float_array, get_default_dtype
from repro.nn.tensor import Tensor

__all__ = [
    "batched_knn_graph",
    "batched_random_graph",
    "global_max_pool",
    "global_mean_pool",
    "global_sum_pool",
    "pack_clouds",
    "unpack_clouds",
]


def _check_batch(num_nodes: int, batch: np.ndarray) -> np.ndarray:
    batch = np.asarray(batch, dtype=np.int64)
    if batch.ndim != 1 or batch.shape[0] != num_nodes:
        raise ValueError(f"batch vector must be 1-D with {num_nodes} entries, got shape {batch.shape}")
    if batch.size and np.any(np.diff(batch) < 0):
        raise ValueError("batch vector must be sorted (clouds stored contiguously)")
    return batch


def pack_clouds(clouds: Sequence[np.ndarray], dim: int = 3) -> tuple[np.ndarray, np.ndarray]:
    """Pack ragged point clouds into a stacked node set plus batch vector.

    The inverse of :func:`unpack_clouds`; the serving micro-batcher uses the
    pair to assemble and disassemble dynamic batches of differently sized
    clouds.

    Args:
        clouds: Sequence of arrays, each of shape ``(N_i, D)`` with a shared
            feature dimension ``D`` and ``N_i >= 1``.
        dim: Feature dimension used for the empty result when ``clouds`` is
            empty (there is no array to infer it from).

    Returns:
        ``(points, batch)`` where ``points`` has shape ``(sum N_i, D)`` and
        ``batch`` maps every row to its cloud index, sorted ascending.
    """
    arrays = [as_float_array(cloud) for cloud in clouds]
    if not arrays:
        return np.zeros((0, dim), dtype=get_default_dtype()), np.zeros((0,), dtype=np.int64)
    for index, cloud in enumerate(arrays):
        if cloud.ndim != 2 or cloud.shape[0] == 0:
            raise ValueError(
                f"cloud {index} must be a non-empty 2-D array, got shape {cloud.shape}"
            )
        if cloud.shape[1] != arrays[0].shape[1]:
            raise ValueError(
                f"cloud {index} has feature dim {cloud.shape[1]}, expected {arrays[0].shape[1]}"
            )
    points = np.concatenate(arrays, axis=0)
    batch = np.concatenate(
        [np.full(cloud.shape[0], index, dtype=np.int64) for index, cloud in enumerate(arrays)]
    )
    return points, batch


def unpack_clouds(
    points: np.ndarray, batch: np.ndarray, num_graphs: int | None = None
) -> list[np.ndarray]:
    """Split a stacked node set back into its per-cloud arrays.

    Args:
        points: Stacked rows of shape ``(N_total, D)``.
        batch: Cloud index per row, sorted ascending.
        num_graphs: Number of clouds; inferred from ``batch`` if omitted.

    Returns:
        A list of ``num_graphs`` arrays; round-trips with :func:`pack_clouds`.
    """
    points = as_float_array(points)
    batch = _check_batch(points.shape[0], batch)
    if num_graphs is None:
        num_graphs = int(batch[-1]) + 1 if batch.size else 0
    return [points[np.flatnonzero(batch == graph_id)].copy() for graph_id in range(num_graphs)]


def batched_knn_graph(points: np.ndarray, batch: np.ndarray, k: int) -> np.ndarray:
    """Build a KNN graph independently inside every cloud of a batch.

    Args:
        points: Stacked point coordinates/features of shape ``(N_total, D)``.
        batch: Cloud index per point, sorted ascending.
        k: Number of neighbours.

    Returns:
        Edge index of shape ``(2, E)`` with indices into the stacked node set.
    """
    points = as_float_array(points)
    batch = _check_batch(points.shape[0], batch)
    edges = []
    for graph_id in np.unique(batch):
        node_ids = np.flatnonzero(batch == graph_id)
        local_edges = knn_graph(points[node_ids], k)
        edges.append(node_ids[local_edges])
    if not edges:
        return np.zeros((2, 0), dtype=np.int64)
    return np.concatenate(edges, axis=1)


def batched_random_graph(
    batch: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Build a random-neighbour graph independently inside every cloud."""
    batch = np.asarray(batch, dtype=np.int64)
    if batch.ndim != 1:
        raise ValueError("batch vector must be 1-D")
    edges = []
    for graph_id in np.unique(batch):
        node_ids = np.flatnonzero(batch == graph_id)
        local_edges = random_graph(len(node_ids), k, rng)
        edges.append(node_ids[local_edges])
    if not edges:
        return np.zeros((2, 0), dtype=np.int64)
    return np.concatenate(edges, axis=1)


def _pool_batch(x: Tensor, batch: np.ndarray, num_graphs: int) -> np.ndarray:
    """Validate a pooling batch vector; O(1) range check thanks to sortedness."""
    batch = _check_batch(x.shape[0], batch)
    if num_graphs <= 0:
        raise ValueError(f"num_graphs must be positive, got {num_graphs}")
    if batch.size and (batch[0] < 0 or batch[-1] >= num_graphs):
        raise ValueError("batch vector references a cloud outside [0, num_graphs)")
    return batch


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-cloud elementwise maximum over node features."""
    return scatter_max(x, _pool_batch(x, batch, num_graphs), num_graphs, validated=True)


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-cloud mean over node features."""
    return scatter_mean(x, _pool_batch(x, batch, num_graphs), num_graphs, validated=True)


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-cloud sum over node features."""
    return scatter_sum(x, _pool_batch(x, batch, num_graphs), num_graphs, validated=True)
