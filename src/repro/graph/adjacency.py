"""Dense adjacency utilities for small graphs.

The architecture graphs consumed by the GNN latency predictor contain at
most a few dozen nodes, so dense adjacency matrices are the natural
representation for its GCN layers.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edge_index import validate_edge_index
from repro.nn.dtype import as_float_array, get_default_dtype

__all__ = ["edges_to_dense", "gcn_normalize", "sum_aggregation_matrix"]


def edges_to_dense(edge_index: np.ndarray, num_nodes: int, symmetric: bool = False) -> np.ndarray:
    """Convert an edge index into a dense ``(num_nodes, num_nodes)`` adjacency.

    Entry ``A[t, s] = 1`` when an edge flows from source ``s`` to target
    ``t`` (so ``A @ X`` aggregates source features into targets).

    Args:
        edge_index: Edge index of shape ``(2, E)``.
        num_nodes: Number of nodes.
        symmetric: Whether to also add the transposed entries.
    """
    edge_index = validate_edge_index(edge_index, num_nodes)
    adj = np.zeros((num_nodes, num_nodes), dtype=get_default_dtype())
    adj[edge_index[1], edge_index[0]] = 1.0
    if symmetric:
        adj = np.maximum(adj, adj.T)
    return adj


def gcn_normalize(adj: np.ndarray, add_self_loops: bool = True, eps: float = 1e-12) -> np.ndarray:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

    Args:
        adj: Dense adjacency matrix (square).
        add_self_loops: Whether to add the identity before normalising.
        eps: Numerical floor for degrees.
    """
    adj = as_float_array(adj)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {adj.shape}")
    if add_self_loops:
        adj = adj + np.eye(adj.shape[0], dtype=adj.dtype)
    degrees = adj.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, eps))
    return adj * inv_sqrt[:, None] * inv_sqrt[None, :]


def sum_aggregation_matrix(adj: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Plain sum-aggregation operator ``A + I`` (the paper's predictor uses sum)."""
    adj = as_float_array(adj)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {adj.shape}")
    if add_self_loops:
        return adj + np.eye(adj.shape[0], dtype=adj.dtype)
    return adj.copy()
