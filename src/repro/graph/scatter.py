"""Differentiable scatter (segment) aggregations.

These implement the *aggregate* step of the message-passing paradigm: edge
messages of shape ``(E, F)`` are reduced per target node into an output of
shape ``(num_nodes, F)``.  All four aggregators of the HGNAS function space
(Table I) are supported: ``sum``, ``mean``, ``max`` and ``min``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, apply_op, as_tensor

__all__ = ["scatter_sum", "scatter_mean", "scatter_max", "scatter_min", "scatter", "AGGREGATORS"]


def _check_inputs(src: Tensor, index: np.ndarray, dim_size: int) -> tuple[Tensor, np.ndarray]:
    src = as_tensor(src)
    if src.ndim != 2:
        raise ValueError(f"scatter expects 2-D messages (E, F), got shape {src.shape}")
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1 or index.shape[0] != src.shape[0]:
        raise ValueError(
            f"index must be 1-D with one entry per message; got index shape {index.shape} "
            f"for {src.shape[0]} messages"
        )
    if dim_size <= 0:
        raise ValueError(f"dim_size must be positive, got {dim_size}")
    if index.size and (index.min() < 0 or index.max() >= dim_size):
        raise ValueError("scatter index out of range")
    return src, index


def scatter_sum(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Sum messages per target node."""
    src, index = _check_inputs(src, index, dim_size)
    out = np.zeros((dim_size, src.shape[1]), dtype=np.float64)
    np.add.at(out, index, src.data)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        return [grad[index]]

    return apply_op(out, (src,), backward_fn)


def scatter_mean(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Average messages per target node (empty targets yield zero)."""
    src, index = _check_inputs(src, index, dim_size)
    counts = np.bincount(index, minlength=dim_size).astype(np.float64)
    safe_counts = np.maximum(counts, 1.0)
    out = np.zeros((dim_size, src.shape[1]), dtype=np.float64)
    np.add.at(out, index, src.data)
    out /= safe_counts[:, None]

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        return [(grad / safe_counts[:, None])[index]]

    return apply_op(out, (src,), backward_fn)


def _scatter_extreme(src: Tensor, index: np.ndarray, dim_size: int, mode: str) -> Tensor:
    src, index = _check_inputs(src, index, dim_size)
    fill = -np.inf if mode == "max" else np.inf
    reducer = np.maximum if mode == "max" else np.minimum
    out = np.full((dim_size, src.shape[1]), fill, dtype=np.float64)
    reducer.at(out, index, src.data)
    empty = ~np.isfinite(out)
    out = np.where(empty, 0.0, out)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        # The winners (possibly tied) receive the gradient, split equally.
        # Computed here rather than in the forward pass so inference-only
        # callers (e.g. batched population scoring) never pay for it.
        winner_mask = (src.data == out[index]) & ~empty[index]
        winner_counts = np.zeros((dim_size, src.shape[1]), dtype=np.float64)
        np.add.at(winner_counts, index, winner_mask.astype(np.float64))
        winner_counts = np.maximum(winner_counts, 1.0)
        return [winner_mask * (grad / winner_counts)[index]]

    return apply_op(out, (src,), backward_fn)


def scatter_max(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Elementwise maximum of messages per target node (empty targets yield zero)."""
    return _scatter_extreme(src, index, dim_size, "max")


def scatter_min(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Elementwise minimum of messages per target node (empty targets yield zero)."""
    return _scatter_extreme(src, index, dim_size, "min")


AGGREGATORS = {
    "sum": scatter_sum,
    "mean": scatter_mean,
    "max": scatter_max,
    "min": scatter_min,
}


def scatter(src: Tensor, index: np.ndarray, dim_size: int, reduce: str = "sum") -> Tensor:
    """Dispatch to one of the named aggregators (``sum``/``mean``/``max``/``min``)."""
    try:
        fn = AGGREGATORS[reduce]
    except KeyError as exc:
        raise ValueError(f"unknown reduce '{reduce}', expected one of {sorted(AGGREGATORS)}") from exc
    return fn(src, index, dim_size)
