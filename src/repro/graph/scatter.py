"""Differentiable scatter (segment) aggregations.

These implement the *aggregate* step of the message-passing paradigm: edge
messages of shape ``(E, F)`` are reduced per target node into an output of
shape ``(num_nodes, F)``.  All four aggregators of the HGNAS function space
(Table I) are supported: ``sum``, ``mean``, ``max`` and ``min``.

Outputs are allocated in the dtype of the incoming messages, so a float32
pipeline aggregates in float32 (see :mod:`repro.nn.dtype`).  The
irregular-access arithmetic (gather and unbuffered scatter accumulation)
dispatches through the active compute backend (:mod:`repro.backends`);
each op captures the backend once so its backward runs on the same one.

Validation of the ``index`` array (1-D, in range) costs a full ``min``/
``max`` scan per call.  Edge indices produced by the repo's own graph
builders (:func:`repro.graph.knn.knn_graph` and friends) are already
validated at construction, and a supernet forward reuses one edge index
across all four aggregator candidates — callers that hold such a
pre-validated index pass ``validated=True`` to skip the redundant scans.
"""

from __future__ import annotations

import numpy as np

from repro.backends import active_backend
from repro.nn.tensor import Tensor, apply_op, as_tensor
from repro.obs.metrics import get_metrics

__all__ = [
    "scatter_sum",
    "scatter_mean",
    "scatter_max",
    "scatter_min",
    "scatter",
    "AGGREGATORS",
    "validate_index",
]


def validate_index(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Validate a scatter index once; the result is safe for ``validated=True``.

    Args:
        index: 1-D array of target segment ids.
        num_segments: Exclusive upper bound on the ids.

    Returns:
        The index as a contiguous int64 array.
    """
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1:
        raise ValueError(f"scatter index must be 1-D, got shape {index.shape}")
    if num_segments <= 0:
        raise ValueError(f"num_segments must be positive, got {num_segments}")
    if index.size and (index.min() < 0 or index.max() >= num_segments):
        raise ValueError("scatter index out of range")
    return index


def _check_inputs(
    src: Tensor, index: np.ndarray, dim_size: int, validated: bool
) -> tuple[Tensor, np.ndarray]:
    get_metrics().count("graph.scatter.dispatch")
    src = as_tensor(src)
    if src.ndim != 2:
        raise ValueError(f"scatter expects 2-D messages (E, F), got shape {src.shape}")
    if validated:
        # Fast path: the caller vouches for range and dtype (e.g. the edge
        # index came out of a repo graph builder); only the cheap shape
        # invariant that ties messages to indices is kept.
        index = np.asarray(index, dtype=np.int64)
    else:
        if dim_size <= 0:
            raise ValueError(f"dim_size must be positive, got {dim_size}")
        index = validate_index(index, dim_size)
    if index.ndim != 1 or index.shape[0] != src.shape[0]:
        raise ValueError(
            f"index must be 1-D with one entry per message; got index shape {index.shape} "
            f"for {src.shape[0]} messages"
        )
    return src, index


def scatter_sum(src: Tensor, index: np.ndarray, dim_size: int, validated: bool = False) -> Tensor:
    """Sum messages per target node."""
    backend = active_backend()
    src, index = _check_inputs(src, index, dim_size, validated)
    out = np.zeros((dim_size, src.shape[1]), dtype=src.data.dtype)
    backend.scatter_add(out, index, src.data)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        return [backend.gather(grad, index)]

    return apply_op(out, (src,), backward_fn)


def scatter_mean(src: Tensor, index: np.ndarray, dim_size: int, validated: bool = False) -> Tensor:
    """Average messages per target node (empty targets yield zero)."""
    backend = active_backend()
    src, index = _check_inputs(src, index, dim_size, validated)
    dtype = src.data.dtype
    counts = np.bincount(index, minlength=dim_size).astype(dtype)
    safe_counts = np.maximum(counts, 1.0)
    out = np.zeros((dim_size, src.shape[1]), dtype=dtype)
    backend.scatter_add(out, index, src.data)
    out /= safe_counts[:, None]

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        return [backend.gather(grad / safe_counts[:, None], index)]

    return apply_op(out, (src,), backward_fn)


def _scatter_extreme(
    src: Tensor, index: np.ndarray, dim_size: int, mode: str, validated: bool
) -> Tensor:
    backend = active_backend()
    src, index = _check_inputs(src, index, dim_size, validated)
    dtype = src.data.dtype
    fill = -np.inf if mode == "max" else np.inf
    out = np.full((dim_size, src.shape[1]), fill, dtype=dtype)
    backend.scatter_extreme(out, index, src.data, mode)
    empty = ~np.isfinite(out)
    out = np.where(empty, dtype.type(0.0), out)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        # The winners (possibly tied) receive the gradient, split equally.
        # Computed here rather than in the forward pass so inference-only
        # callers (e.g. batched population scoring) never pay for it.
        winner_mask = (src.data == backend.gather(out, index)) & ~backend.gather(empty, index)
        winner_counts = np.zeros((dim_size, src.shape[1]), dtype=dtype)
        backend.scatter_add(winner_counts, index, winner_mask.astype(dtype))
        winner_counts = np.maximum(winner_counts, 1.0)
        return [winner_mask * backend.gather(grad / winner_counts, index)]

    return apply_op(out, (src,), backward_fn)


def scatter_max(src: Tensor, index: np.ndarray, dim_size: int, validated: bool = False) -> Tensor:
    """Elementwise maximum of messages per target node (empty targets yield zero)."""
    return _scatter_extreme(src, index, dim_size, "max", validated)


def scatter_min(src: Tensor, index: np.ndarray, dim_size: int, validated: bool = False) -> Tensor:
    """Elementwise minimum of messages per target node (empty targets yield zero)."""
    return _scatter_extreme(src, index, dim_size, "min", validated)


AGGREGATORS = {
    "sum": scatter_sum,
    "mean": scatter_mean,
    "max": scatter_max,
    "min": scatter_min,
}


def scatter(
    src: Tensor, index: np.ndarray, dim_size: int, reduce: str = "sum", validated: bool = False
) -> Tensor:
    """Dispatch to one of the named aggregators (``sum``/``mean``/``max``/``min``)."""
    try:
        fn = AGGREGATORS[reduce]
    except KeyError as exc:
        raise ValueError(f"unknown reduce '{reduce}', expected one of {sorted(AGGREGATORS)}") from exc
    return fn(src, index, dim_size, validated=validated)
