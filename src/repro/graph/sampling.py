"""Graph sampling operations.

The HGNAS design space offers two *sample* functions (Table I): ``KNN`` and
``Random``.  Random sampling draws a fixed number of random neighbours per
point, which is dramatically cheaper than KNN on edge devices; farthest
point sampling is provided as a utility for point-cloud down-sampling.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edge_index import validate_edge_index
from repro.nn.dtype import as_float_array

__all__ = ["random_graph", "farthest_point_sampling", "subsample_points"]


def random_graph(
    num_nodes: int,
    k: int,
    rng: np.random.Generator,
    include_self: bool = False,
) -> np.ndarray:
    """Connect every node to ``k`` uniformly random other nodes.

    Args:
        num_nodes: Number of nodes in the cloud.
        k: Number of random neighbours per node.
        rng: Random generator.
        include_self: Whether a node may sample itself.

    Returns:
        Edge index of shape ``(2, num_nodes * k_eff)``.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    max_k = num_nodes if include_self else max(num_nodes - 1, 1)
    k_eff = min(k, max_k)
    sources = np.empty((num_nodes, k_eff), dtype=np.int64)
    for target in range(num_nodes):
        if include_self or num_nodes == 1:
            candidates = rng.integers(0, num_nodes, size=k_eff)
        else:
            candidates = rng.choice(num_nodes - 1, size=k_eff, replace=k_eff > num_nodes - 1)
            candidates = candidates + (candidates >= target)
        sources[target] = candidates
    targets = np.repeat(np.arange(num_nodes, dtype=np.int64), k_eff)
    edge_index = np.stack([sources.reshape(-1), targets], axis=0)
    return validate_edge_index(edge_index, num_nodes)


def farthest_point_sampling(points: np.ndarray, num_samples: int, rng: np.random.Generator) -> np.ndarray:
    """Iterative farthest point sampling.

    Args:
        points: Array of shape ``(N, D)``.
        num_samples: Number of points to keep (``1 <= num_samples <= N``).
        rng: Random generator (chooses the starting point).

    Returns:
        Integer indices of the selected points, shape ``(num_samples,)``.
    """
    points = as_float_array(points)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError(f"points must be a non-empty (N, D) array, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= num_samples <= n:
        raise ValueError(f"num_samples must be in [1, {n}], got {num_samples}")
    selected = np.empty(num_samples, dtype=np.int64)
    selected[0] = rng.integers(0, n)
    min_dist = ((points - points[selected[0]]) ** 2).sum(axis=1)
    for i in range(1, num_samples):
        selected[i] = int(np.argmax(min_dist))
        new_dist = ((points - points[selected[i]]) ** 2).sum(axis=1)
        min_dist = np.minimum(min_dist, new_dist)
    return selected


def subsample_points(points: np.ndarray, num_points: int, rng: np.random.Generator) -> np.ndarray:
    """Randomly subsample (or pad by repetition) a cloud to ``num_points`` points."""
    points = as_float_array(points)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError(f"points must be a non-empty (N, D) array, got shape {points.shape}")
    n = points.shape[0]
    if num_points <= 0:
        raise ValueError(f"num_points must be positive, got {num_points}")
    if num_points <= n:
        idx = rng.choice(n, size=num_points, replace=False)
    else:
        idx = np.concatenate([np.arange(n), rng.choice(n, size=num_points - n, replace=True)])
    return points[idx]
