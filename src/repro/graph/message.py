"""Edge message construction.

The *aggregate* operation in the HGNAS design space carries a **message
type** attribute (Table I) that selects how the per-edge message is built
from the centre node feature ``x_i`` (target), the neighbour feature ``x_j``
(source) and their difference:

=================  ==========================================
Message type       Message
=================  ==========================================
``source_pos``     ``x_j``
``target_pos``     ``x_i``
``rel_pos``        ``x_j - x_i``
``distance``       ``||x_j - x_i||``  (1 feature)
``source_rel``     ``[x_j, x_j - x_i]``
``target_rel``     ``[x_i, x_j - x_i]``  (DGCNN's EdgeConv message)
``full``           ``[x_i, x_j, x_j - x_i, ||x_j - x_i||]``
=================  ==========================================
"""

from __future__ import annotations

import numpy as np

from repro.backends import active_backend
from repro.graph.edge_index import validate_edge_index
from repro.nn.tensor import Tensor, apply_op, as_tensor, concatenate

__all__ = ["MESSAGE_TYPES", "message_dim", "build_messages"]

MESSAGE_TYPES = (
    "source_pos",
    "target_pos",
    "rel_pos",
    "distance",
    "source_rel",
    "target_rel",
    "full",
)


def message_dim(message_type: str, feature_dim: int) -> int:
    """Return the per-edge message width for ``message_type``.

    Args:
        message_type: One of :data:`MESSAGE_TYPES`.
        feature_dim: Width of the node features the message is built from.
    """
    if feature_dim <= 0:
        raise ValueError(f"feature_dim must be positive, got {feature_dim}")
    if message_type in ("source_pos", "target_pos", "rel_pos"):
        return feature_dim
    if message_type == "distance":
        return 1
    if message_type in ("source_rel", "target_rel"):
        return 2 * feature_dim
    if message_type == "full":
        return 3 * feature_dim + 1
    raise ValueError(f"unknown message type '{message_type}', expected one of {MESSAGE_TYPES}")


def _gather_nodes(features: Tensor, index: np.ndarray) -> Tensor:
    """Differentiable endpoint gather through the active compute backend.

    Forward is ``features[index]``; backward scatter-accumulates the output
    gradient back onto the gathered rows — both dispatched so a backend can
    substitute its own irregular-access kernels.
    """
    backend = active_backend()
    data = backend.gather(features.data, index)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        full = np.zeros_like(features.data)
        backend.scatter_add(full, index, grad)
        return [full]

    return apply_op(data, (features,), backward_fn)


def build_messages(
    features: Tensor, edge_index: np.ndarray, message_type: str, validated: bool = False
) -> Tensor:
    """Build per-edge messages from node features.

    Args:
        features: Node features of shape ``(N, F)``.
        edge_index: Edge index of shape ``(2, E)``; row 0 sources, row 1 targets.
        message_type: One of :data:`MESSAGE_TYPES`.
        validated: Skip the range scan for edge indices that already passed
            :func:`~repro.graph.edge_index.validate_edge_index` (every graph
            builder in :mod:`repro.graph` validates its output).

    Returns:
        Messages of shape ``(E, message_dim(message_type, F))``.
    """
    features = as_tensor(features)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D (N, F), got shape {features.shape}")
    if validated:
        edge_index = np.asarray(edge_index, dtype=np.int64)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
    else:
        # Full range validation: downstream scatter calls on the message
        # tensor may rely on the targets being in range.
        edge_index = validate_edge_index(edge_index, features.shape[0])
    sources, targets = edge_index[0], edge_index[1]

    x_j = _gather_nodes(features, sources)
    x_i = _gather_nodes(features, targets)

    if message_type == "source_pos":
        return x_j
    if message_type == "target_pos":
        return x_i
    if message_type == "rel_pos":
        return x_j - x_i
    if message_type == "distance":
        rel = x_j - x_i
        return ((rel**2).sum(axis=1, keepdims=True) + 1e-12) ** 0.5
    if message_type == "source_rel":
        return concatenate([x_j, x_j - x_i], axis=1)
    if message_type == "target_rel":
        return concatenate([x_i, x_j - x_i], axis=1)
    if message_type == "full":
        rel = x_j - x_i
        dist = ((rel**2).sum(axis=1, keepdims=True) + 1e-12) ** 0.5
        return concatenate([x_i, x_j, rel, dist], axis=1)
    raise ValueError(f"unknown message type '{message_type}', expected one of {MESSAGE_TYPES}")
