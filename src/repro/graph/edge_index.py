"""Edge-index utilities.

Graphs over point clouds are represented PyG-style as an integer array of
shape ``(2, E)`` where row 0 holds *source* (neighbour) indices and row 1
holds *target* (centre) indices; messages flow from source to target.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "validate_edge_index",
    "coalesce",
    "add_self_loops",
    "remove_self_loops",
    "to_undirected",
    "degree",
    "sort_by_target",
]


def validate_edge_index(edge_index: np.ndarray, num_nodes: int | None = None) -> np.ndarray:
    """Validate and canonicalise an edge-index array.

    Args:
        edge_index: Array of shape ``(2, E)`` with integer node indices.
        num_nodes: If given, indices must fall in ``[0, num_nodes)``.

    Returns:
        The edge index as a contiguous ``int64`` array of shape ``(2, E)``.

    Raises:
        ValueError: If the shape is wrong or indices are out of range.
    """
    edge_index = np.asarray(edge_index)
    if edge_index.ndim != 2 or edge_index.shape[0] != 2:
        raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
    if not np.issubdtype(edge_index.dtype, np.integer):
        if not np.allclose(edge_index, np.round(edge_index)):
            raise ValueError("edge_index must contain integers")
    edge_index = edge_index.astype(np.int64)
    if edge_index.size:
        if edge_index.min() < 0:
            raise ValueError("edge_index contains negative node indices")
        if num_nodes is not None and edge_index.max() >= num_nodes:
            raise ValueError(
                f"edge_index references node {int(edge_index.max())} but the graph has {num_nodes} nodes"
            )
    return np.ascontiguousarray(edge_index)


def coalesce(edge_index: np.ndarray, num_nodes: int | None = None) -> np.ndarray:
    """Remove duplicate edges (keeping one copy each), sorted by (target, source)."""
    edge_index = validate_edge_index(edge_index, num_nodes)
    if edge_index.shape[1] == 0:
        return edge_index
    keys = np.stack([edge_index[1], edge_index[0]], axis=1)
    unique = np.unique(keys, axis=0)
    return np.stack([unique[:, 1], unique[:, 0]], axis=0)


def add_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Append one self-loop per node (existing self-loops are kept)."""
    edge_index = validate_edge_index(edge_index, num_nodes)
    loops = np.arange(num_nodes, dtype=np.int64)
    loops = np.stack([loops, loops], axis=0)
    return np.concatenate([edge_index, loops], axis=1)


def remove_self_loops(edge_index: np.ndarray) -> np.ndarray:
    """Drop all edges whose source equals their target."""
    edge_index = validate_edge_index(edge_index)
    mask = edge_index[0] != edge_index[1]
    return edge_index[:, mask]


def to_undirected(edge_index: np.ndarray, num_nodes: int | None = None) -> np.ndarray:
    """Symmetrise the edge set (add reversed edges, deduplicated)."""
    edge_index = validate_edge_index(edge_index, num_nodes)
    reversed_edges = edge_index[::-1]
    both = np.concatenate([edge_index, reversed_edges], axis=1)
    return coalesce(both, num_nodes)


def degree(edge_index: np.ndarray, num_nodes: int, kind: str = "in") -> np.ndarray:
    """Node degrees.

    Args:
        edge_index: Edge index of shape ``(2, E)``.
        num_nodes: Number of nodes in the graph.
        kind: ``"in"`` counts incoming edges (per target), ``"out"``
            counts outgoing edges (per source).

    Returns:
        Integer array of shape ``(num_nodes,)``.
    """
    if kind not in ("in", "out"):
        raise ValueError(f"kind must be 'in' or 'out', got {kind!r}")
    edge_index = validate_edge_index(edge_index, num_nodes)
    row = edge_index[1] if kind == "in" else edge_index[0]
    return np.bincount(row, minlength=num_nodes).astype(np.int64)


def sort_by_target(edge_index: np.ndarray) -> np.ndarray:
    """Return the edges stably sorted by target index."""
    edge_index = validate_edge_index(edge_index)
    order = np.argsort(edge_index[1], kind="stable")
    return edge_index[:, order]
