"""K-nearest-neighbour and radius graph construction.

DGCNN rebuilds a KNN graph in the feature space of every layer ("dynamic"
graph CNN); HGNAS's design space keeps KNN as one of the candidate sample
functions (Table I).  The implementation uses a KD-tree
(:class:`scipy.spatial.cKDTree`) which matches the algorithmic complexity of
the PyG CPU kernels.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.graph.edge_index import validate_edge_index
from repro.nn.dtype import as_float_array

__all__ = ["knn_graph", "knn_indices", "radius_graph", "pairwise_sq_dists"]


def _as_points(points: np.ndarray) -> np.ndarray:
    points = as_float_array(points)
    if points.ndim != 2:
        raise ValueError(f"points must be a 2-D array (N, D), got shape {points.shape}")
    if points.shape[0] == 0:
        raise ValueError("cannot build a graph over an empty point set")
    return points


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense pairwise squared Euclidean distances between rows of ``a`` and ``b``."""
    a = as_float_array(a)
    b = as_float_array(b)
    a_sq = (a**2).sum(axis=1)[:, None]
    b_sq = (b**2).sum(axis=1)[None, :]
    return np.maximum(a_sq + b_sq - 2.0 * a @ b.T, 0.0)


def knn_indices(points: np.ndarray, k: int, include_self: bool = False) -> np.ndarray:
    """Return the indices of the ``k`` nearest neighbours of every point.

    Args:
        points: Array of shape ``(N, D)``.
        k: Number of neighbours per point.  Clamped to ``N - 1`` (or ``N``
            when ``include_self``) if the cloud is smaller than requested.
        include_self: Whether a point may be its own neighbour.

    Returns:
        Integer array of shape ``(N, k_eff)``; ``k_eff`` may be smaller than
        ``k`` for tiny clouds.  Without ``include_self`` the result never
        contains a point's own index.

    Raises:
        ValueError: If ``include_self`` is false and the cloud has a single
            point — it has no valid neighbour, and silently emitting a
            self-loop would break the no-self-loop contract.
    """
    points = _as_points(points)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = points.shape[0]
    if include_self:
        k_eff = min(k, n)
        _, idx = cKDTree(points).query(points, k=k_eff, workers=-1)
        # scipy returns a 1-D array for k=1; reshape covers both layouts.
        return np.asarray(idx, dtype=np.int64).reshape(n, k_eff)
    if n == 1:
        raise ValueError(
            "cannot build a self-loop-free neighbour list for a single-point cloud "
            "(pass include_self=True to allow the point as its own neighbour)"
        )
    k_eff = min(k, n - 1)
    # Query one extra neighbour so each row keeps k_eff candidates after the
    # point itself is dropped.  k_eff + 1 <= n always holds here, so scipy
    # never pads rows with the out-of-range sentinel index n.
    _, idx = cKDTree(points).query(points, k=k_eff + 1, workers=-1)
    idx = np.asarray(idx, dtype=np.int64).reshape(n, k_eff + 1)
    # Drop each point from its own neighbour list (it is almost always the
    # first hit, but duplicate coordinates can shuffle or even evict it): a
    # stable argsort on the self-mask moves the valid entries to the front
    # while preserving their nearest-first order.
    not_self = idx != np.arange(n, dtype=np.int64)[:, None]
    order = np.argsort(~not_self, axis=1, kind="stable")
    return np.take_along_axis(idx, order, axis=1)[:, :k_eff]


def knn_graph(points: np.ndarray, k: int, include_self: bool = False) -> np.ndarray:
    """Build a directed KNN graph.

    Each point receives edges from its ``k`` nearest neighbours, i.e. the
    neighbour is the *source* and the point is the *target*.

    Args:
        points: Array of shape ``(N, D)``.
        k: Number of neighbours.
        include_self: Whether to allow self-loops.

    Returns:
        Edge index of shape ``(2, N * k_eff)``.
    """
    idx = knn_indices(points, k, include_self=include_self)
    n, k_eff = idx.shape
    targets = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    sources = idx.reshape(-1)
    edge_index = np.stack([sources, targets], axis=0)
    return validate_edge_index(edge_index, n)


def radius_graph(points: np.ndarray, radius: float, max_neighbors: int | None = None) -> np.ndarray:
    """Build a directed graph connecting points within ``radius``.

    Args:
        points: Array of shape ``(N, D)``.
        radius: Neighbourhood radius (must be positive).
        max_neighbors: Optional cap on neighbours per target (nearest kept).

    Returns:
        Edge index of shape ``(2, E)`` without self-loops.
    """
    points = _as_points(points)
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    tree = cKDTree(points)
    neighbour_lists = tree.query_ball_point(points, r=radius)
    sources: list[int] = []
    targets: list[int] = []
    for target, neighbours in enumerate(neighbour_lists):
        neighbours = [n for n in neighbours if n != target]
        if max_neighbors is not None and len(neighbours) > max_neighbors:
            dists = ((points[neighbours] - points[target]) ** 2).sum(axis=1)
            order = np.argsort(dists)[:max_neighbors]
            neighbours = [neighbours[i] for i in order]
        sources.extend(neighbours)
        targets.extend([target] * len(neighbours))
    edge_index = np.array([sources, targets], dtype=np.int64).reshape(2, -1)
    return validate_edge_index(edge_index, points.shape[0])
