"""K-nearest-neighbour and radius graph construction.

DGCNN rebuilds a KNN graph in the feature space of every layer ("dynamic"
graph CNN); HGNAS's design space keeps KNN as one of the candidate sample
functions (Table I).  The implementation uses a KD-tree
(:class:`scipy.spatial.cKDTree`) which matches the algorithmic complexity of
the PyG CPU kernels.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.graph.edge_index import validate_edge_index

__all__ = ["knn_graph", "knn_indices", "radius_graph", "pairwise_sq_dists"]


def _as_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be a 2-D array (N, D), got shape {points.shape}")
    if points.shape[0] == 0:
        raise ValueError("cannot build a graph over an empty point set")
    return points


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense pairwise squared Euclidean distances between rows of ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_sq = (a**2).sum(axis=1)[:, None]
    b_sq = (b**2).sum(axis=1)[None, :]
    return np.maximum(a_sq + b_sq - 2.0 * a @ b.T, 0.0)


def knn_indices(points: np.ndarray, k: int, include_self: bool = False) -> np.ndarray:
    """Return the indices of the ``k`` nearest neighbours of every point.

    Args:
        points: Array of shape ``(N, D)``.
        k: Number of neighbours per point.  Clamped to ``N - 1`` (or ``N``
            when ``include_self``) if the cloud is smaller than requested.
        include_self: Whether a point may be its own neighbour.

    Returns:
        Integer array of shape ``(N, k_eff)``; ``k_eff`` may be smaller than
        ``k`` for tiny clouds.
    """
    points = _as_points(points)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = points.shape[0]
    max_k = n if include_self else n - 1
    k_eff = min(k, max(max_k, 1))
    tree = cKDTree(points)
    query_k = k_eff if include_self else k_eff + 1
    query_k = min(query_k, n)
    _, idx = tree.query(points, k=query_k)
    idx = np.atleast_2d(idx)
    if idx.ndim == 1:
        idx = idx[:, None]
    if not include_self:
        # Remove each point from its own neighbour list (it is almost always
        # the first hit, but duplicate coordinates can shuffle that).
        cleaned = np.empty((n, k_eff), dtype=np.int64)
        rows = np.arange(n)
        for col_target in range(k_eff):
            cleaned[:, col_target] = -1
        for i in range(n):
            neighbours = [j for j in idx[i] if j != i][:k_eff]
            while len(neighbours) < k_eff:
                neighbours.append(neighbours[-1] if neighbours else i)
            cleaned[i] = neighbours
        _ = rows
        return cleaned
    return idx[:, :k_eff].astype(np.int64)


def knn_graph(points: np.ndarray, k: int, include_self: bool = False) -> np.ndarray:
    """Build a directed KNN graph.

    Each point receives edges from its ``k`` nearest neighbours, i.e. the
    neighbour is the *source* and the point is the *target*.

    Args:
        points: Array of shape ``(N, D)``.
        k: Number of neighbours.
        include_self: Whether to allow self-loops.

    Returns:
        Edge index of shape ``(2, N * k_eff)``.
    """
    idx = knn_indices(points, k, include_self=include_self)
    n, k_eff = idx.shape
    targets = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    sources = idx.reshape(-1)
    edge_index = np.stack([sources, targets], axis=0)
    return validate_edge_index(edge_index, n)


def radius_graph(points: np.ndarray, radius: float, max_neighbors: int | None = None) -> np.ndarray:
    """Build a directed graph connecting points within ``radius``.

    Args:
        points: Array of shape ``(N, D)``.
        radius: Neighbourhood radius (must be positive).
        max_neighbors: Optional cap on neighbours per target (nearest kept).

    Returns:
        Edge index of shape ``(2, E)`` without self-loops.
    """
    points = _as_points(points)
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    tree = cKDTree(points)
    neighbour_lists = tree.query_ball_point(points, r=radius)
    sources: list[int] = []
    targets: list[int] = []
    for target, neighbours in enumerate(neighbour_lists):
        neighbours = [n for n in neighbours if n != target]
        if max_neighbors is not None and len(neighbours) > max_neighbors:
            dists = ((points[neighbours] - points[target]) ** 2).sum(axis=1)
            order = np.argsort(dists)[:max_neighbors]
            neighbours = [neighbours[i] for i in order]
        sources.extend(neighbours)
        targets.extend([target] * len(neighbours))
    edge_index = np.array([sources, targets], dtype=np.int64).reshape(2, -1)
    return validate_edge_index(edge_index, points.shape[0])
