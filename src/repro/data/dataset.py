"""Dataset containers, batching and loading.

Point clouds are batched PyG-style: the clouds of a mini-batch are stacked
into one big node set, and a ``batch`` vector maps every point to its cloud
index.  Graph construction and pooling operations respect cloud boundaries
through that vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.nn.dtype import get_default_dtype

__all__ = ["PointCloudSample", "Batch", "InMemoryDataset", "DataLoader", "collate"]


@dataclass
class PointCloudSample:
    """A single labelled point cloud."""

    points: np.ndarray
    label: int
    name: str = ""

    def __post_init__(self) -> None:
        # Datasets are a data *entry point*: raw clouds are coerced to the
        # default compute dtype (float32 unless the policy says otherwise).
        self.points = np.asarray(self.points, dtype=get_default_dtype())
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError(f"points must have shape (N, 3), got {self.points.shape}")
        self.label = int(self.label)

    @property
    def num_points(self) -> int:
        return self.points.shape[0]


@dataclass
class Batch:
    """A mini-batch of point clouds stacked into one node set."""

    points: np.ndarray
    batch: np.ndarray
    labels: np.ndarray
    num_graphs: int

    def __post_init__(self) -> None:
        if self.points.shape[0] != self.batch.shape[0]:
            raise ValueError("points and batch vector lengths differ")
        if self.labels.shape[0] != self.num_graphs:
            raise ValueError("labels length must equal num_graphs")

    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    def graph_slices(self) -> list[np.ndarray]:
        """Return the point indices belonging to each cloud."""
        return [np.flatnonzero(self.batch == g) for g in range(self.num_graphs)]


def collate(samples: Sequence[PointCloudSample]) -> Batch:
    """Stack samples into a :class:`Batch`."""
    if not samples:
        raise ValueError("cannot collate an empty list of samples")
    points = np.concatenate([s.points for s in samples], axis=0)
    batch = np.concatenate(
        [np.full(s.num_points, i, dtype=np.int64) for i, s in enumerate(samples)]
    )
    labels = np.array([s.label for s in samples], dtype=np.int64)
    return Batch(points=points, batch=batch, labels=labels, num_graphs=len(samples))


class InMemoryDataset:
    """A list-backed dataset of :class:`PointCloudSample` objects."""

    def __init__(self, samples: Sequence[PointCloudSample], num_classes: int):
        if num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {num_classes}")
        self.samples = list(samples)
        self.num_classes = num_classes
        for sample in self.samples:
            if not 0 <= sample.label < num_classes:
                raise ValueError(
                    f"sample label {sample.label} out of range for {num_classes} classes"
                )

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> PointCloudSample:
        return self.samples[index]

    def __iter__(self) -> Iterator[PointCloudSample]:
        return iter(self.samples)

    def labels(self) -> np.ndarray:
        """Return all labels as an integer array."""
        return np.array([s.label for s in self.samples], dtype=np.int64)

    def subset(self, indices: Sequence[int]) -> "InMemoryDataset":
        """Return a new dataset restricted to ``indices``."""
        return InMemoryDataset([self.samples[i] for i in indices], self.num_classes)


@dataclass
class DataLoader:
    """Mini-batch iterator over an :class:`InMemoryDataset`."""

    dataset: InMemoryDataset
    batch_size: int = 8
    shuffle: bool = False
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    drop_last: bool = False

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            chunk = indices[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield collate([self.dataset[int(i)] for i in chunk])
