"""Train/validation/test splitting utilities."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InMemoryDataset

__all__ = ["stratified_split", "train_val_test_split"]


def stratified_split(
    dataset: InMemoryDataset,
    fractions: tuple[float, ...],
    rng: np.random.Generator,
) -> list[InMemoryDataset]:
    """Split a dataset into parts with (approximately) equal class balance.

    Args:
        dataset: Dataset to split.
        fractions: Positive fractions summing to 1 (within 1e-6).
        rng: Random generator used to shuffle within classes.

    Returns:
        One :class:`InMemoryDataset` per fraction, in order.
    """
    fractions = tuple(float(f) for f in fractions)
    if any(f <= 0 for f in fractions):
        raise ValueError(f"all fractions must be positive, got {fractions}")
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")

    labels = dataset.labels()
    part_indices: list[list[int]] = [[] for _ in fractions]
    for cls in np.unique(labels):
        cls_indices = np.flatnonzero(labels == cls)
        rng.shuffle(cls_indices)
        counts = np.floor(np.array(fractions) * len(cls_indices)).astype(int)
        # Distribute the remainder to the largest fractions first.
        remainder = len(cls_indices) - counts.sum()
        order = np.argsort(fractions)[::-1]
        for i in range(remainder):
            counts[order[i % len(order)]] += 1
        start = 0
        for part, count in enumerate(counts):
            part_indices[part].extend(cls_indices[start : start + count].tolist())
            start += count
    return [dataset.subset(sorted(indices)) for indices in part_indices]


def train_val_test_split(
    dataset: InMemoryDataset,
    val_fraction: float = 0.15,
    test_fraction: float = 0.15,
    rng: np.random.Generator | None = None,
) -> tuple[InMemoryDataset, InMemoryDataset, InMemoryDataset]:
    """Convenience wrapper returning stratified train/val/test datasets."""
    if val_fraction <= 0 or test_fraction <= 0 or val_fraction + test_fraction >= 1:
        raise ValueError("val_fraction and test_fraction must be positive and sum below 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    train_frac = 1.0 - val_fraction - test_fraction
    train, val, test = stratified_split(dataset, (train_frac, val_fraction, test_fraction), rng)
    return train, val, test
