"""Datasets, transforms and loaders for point-cloud classification."""

from repro.data.dataset import Batch, DataLoader, InMemoryDataset, PointCloudSample, collate
from repro.data.shapes import SHAPE_GENERATORS, generate_shape, list_shape_names
from repro.data.splits import stratified_split, train_val_test_split
from repro.data.synthetic_modelnet import (
    SyntheticModelNet,
    SyntheticModelNetConfig,
    make_synthetic_modelnet,
)
from repro.data.transforms import (
    Compose,
    normalize_unit_sphere,
    random_jitter,
    random_point_dropout,
    random_rotate_z,
    random_scale,
)

__all__ = [
    "Batch",
    "DataLoader",
    "InMemoryDataset",
    "PointCloudSample",
    "collate",
    "SHAPE_GENERATORS",
    "generate_shape",
    "list_shape_names",
    "stratified_split",
    "train_val_test_split",
    "SyntheticModelNet",
    "SyntheticModelNetConfig",
    "make_synthetic_modelnet",
    "Compose",
    "normalize_unit_sphere",
    "random_jitter",
    "random_point_dropout",
    "random_rotate_z",
    "random_scale",
]
