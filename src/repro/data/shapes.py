"""Parametric 3-D shape generators.

ModelNet40 is not redistributable in this offline environment, so the
classification benchmark is built from 40 procedurally generated shape
families.  Each generator samples points on (or near) the surface of a
parametric solid; per-sample random scaling, anisotropy and noise make the
classes non-trivial to separate, which is what the relative accuracy
comparison between architectures needs.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.dtype import WIDE_DTYPE

__all__ = ["SHAPE_GENERATORS", "generate_shape", "list_shape_names"]

ShapeGenerator = Callable[[int, np.random.Generator], np.ndarray]


def _unit_sphere(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform points on the unit sphere."""
    vec = rng.normal(size=(n, 3))
    norms = np.linalg.norm(vec, axis=1, keepdims=True)
    return vec / np.maximum(norms, 1e-12)


def sphere(n: int, rng: np.random.Generator, radius: float = 1.0) -> np.ndarray:
    """Sphere surface of the given radius."""
    return radius * _unit_sphere(n, rng)


def ellipsoid(n: int, rng: np.random.Generator, axes: tuple[float, float, float] = (1.0, 0.6, 0.4)) -> np.ndarray:
    """Axis-aligned ellipsoid surface."""
    return sphere(n, rng) * np.asarray(axes)


def box(n: int, rng: np.random.Generator, extents: tuple[float, float, float] = (1.0, 1.0, 1.0)) -> np.ndarray:
    """Points on the surface of an axis-aligned box."""
    extents_arr = np.asarray(extents, dtype=WIDE_DTYPE)
    faces = rng.integers(0, 6, size=n)
    points = rng.uniform(-1.0, 1.0, size=(n, 3))
    axis = faces // 2
    sign = np.where(faces % 2 == 0, 1.0, -1.0)
    points[np.arange(n), axis] = sign
    return points * extents_arr


def cylinder(n: int, rng: np.random.Generator, radius: float = 0.5, height: float = 1.5) -> np.ndarray:
    """Cylinder side surface plus caps."""
    points = np.empty((n, 3))
    n_side = int(0.7 * n)
    theta = rng.uniform(0, 2 * np.pi, size=n_side)
    z = rng.uniform(-height / 2, height / 2, size=n_side)
    points[:n_side] = np.stack([radius * np.cos(theta), radius * np.sin(theta), z], axis=1)
    n_caps = n - n_side
    theta = rng.uniform(0, 2 * np.pi, size=n_caps)
    r = radius * np.sqrt(rng.uniform(0, 1, size=n_caps))
    z = np.where(rng.random(n_caps) < 0.5, height / 2, -height / 2)
    points[n_side:] = np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=1)
    return points


def cone(n: int, rng: np.random.Generator, radius: float = 0.7, height: float = 1.4) -> np.ndarray:
    """Cone surface (apex up) plus base disk."""
    points = np.empty((n, 3))
    n_side = int(0.75 * n)
    u = np.sqrt(rng.uniform(0, 1, size=n_side))
    theta = rng.uniform(0, 2 * np.pi, size=n_side)
    r = radius * u
    z = height * (1 - u) - height / 2
    points[:n_side] = np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=1)
    n_base = n - n_side
    theta = rng.uniform(0, 2 * np.pi, size=n_base)
    r = radius * np.sqrt(rng.uniform(0, 1, size=n_base))
    points[n_side:] = np.stack([r * np.cos(theta), r * np.sin(theta), np.full(n_base, -height / 2)], axis=1)
    return points


def torus(n: int, rng: np.random.Generator, major: float = 0.8, minor: float = 0.25) -> np.ndarray:
    """Torus surface."""
    u = rng.uniform(0, 2 * np.pi, size=n)
    v = rng.uniform(0, 2 * np.pi, size=n)
    x = (major + minor * np.cos(v)) * np.cos(u)
    y = (major + minor * np.cos(v)) * np.sin(u)
    z = minor * np.sin(v)
    return np.stack([x, y, z], axis=1)


def pyramid(n: int, rng: np.random.Generator, base: float = 1.0, height: float = 1.2) -> np.ndarray:
    """Square pyramid surface."""
    apex = np.array([0.0, 0.0, height / 2])
    corners = np.array(
        [
            [-base / 2, -base / 2, -height / 2],
            [base / 2, -base / 2, -height / 2],
            [base / 2, base / 2, -height / 2],
            [-base / 2, base / 2, -height / 2],
        ]
    )
    points = np.empty((n, 3))
    which = rng.integers(0, 5, size=n)
    for i in range(n):
        if which[i] == 4:
            u, v = rng.uniform(0, 1, size=2)
            points[i] = corners[0] + u * (corners[1] - corners[0]) + v * (corners[3] - corners[0])
        else:
            a = corners[which[i]]
            b = corners[(which[i] + 1) % 4]
            u, v = rng.uniform(0, 1, size=2)
            if u + v > 1:
                u, v = 1 - u, 1 - v
            points[i] = a + u * (b - a) + v * (apex - a)
    return points


def helix(n: int, rng: np.random.Generator, turns: float = 3.0, radius: float = 0.7, pitch: float = 0.5) -> np.ndarray:
    """Helical tube sampled with small radial noise."""
    t = rng.uniform(0, turns * 2 * np.pi, size=n)
    jitter = rng.normal(scale=0.05, size=(n, 3))
    x = radius * np.cos(t)
    y = radius * np.sin(t)
    z = pitch * t / (2 * np.pi) - (pitch * turns) / 2
    return np.stack([x, y, z], axis=1) + jitter


def plane(n: int, rng: np.random.Generator, width: float = 1.6, depth: float = 1.6) -> np.ndarray:
    """Thin flat plate."""
    x = rng.uniform(-width / 2, width / 2, size=n)
    y = rng.uniform(-depth / 2, depth / 2, size=n)
    z = rng.normal(scale=0.02, size=n)
    return np.stack([x, y, z], axis=1)


def disk(n: int, rng: np.random.Generator, radius: float = 1.0) -> np.ndarray:
    """Thin circular disk."""
    theta = rng.uniform(0, 2 * np.pi, size=n)
    r = radius * np.sqrt(rng.uniform(0, 1, size=n))
    z = rng.normal(scale=0.02, size=n)
    return np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=1)


def annulus(n: int, rng: np.random.Generator, inner: float = 0.5, outer: float = 1.0) -> np.ndarray:
    """Flat ring (washer)."""
    theta = rng.uniform(0, 2 * np.pi, size=n)
    r = np.sqrt(rng.uniform(inner**2, outer**2, size=n))
    z = rng.normal(scale=0.02, size=n)
    return np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=1)


def capsule(n: int, rng: np.random.Generator, radius: float = 0.4, height: float = 1.0) -> np.ndarray:
    """Cylinder with hemispherical caps."""
    points = cylinder(n, rng, radius=radius, height=height)
    caps = np.abs(points[:, 2]) >= height / 2 - 1e-9
    hemis = radius * _unit_sphere(int(caps.sum()), rng)
    hemis[:, 2] = np.abs(hemis[:, 2]) * np.sign(points[caps, 2])
    hemis[:, 2] += np.sign(points[caps, 2]) * height / 2
    points[caps] = hemis
    return points


def hemisphere(n: int, rng: np.random.Generator, radius: float = 1.0) -> np.ndarray:
    """Upper half-sphere plus base disk."""
    points = radius * _unit_sphere(n, rng)
    flip = points[:, 2] < 0
    points[flip, 2] *= -1
    base = rng.random(n) < 0.25
    theta = rng.uniform(0, 2 * np.pi, size=int(base.sum()))
    r = radius * np.sqrt(rng.uniform(0, 1, size=int(base.sum())))
    points[base] = np.stack([r * np.cos(theta), r * np.sin(theta), np.zeros_like(r)], axis=1)
    return points


def cross_prism(n: int, rng: np.random.Generator, arm: float = 1.0, width: float = 0.3) -> np.ndarray:
    """A plus-sign shaped prism."""
    points = np.empty((n, 3))
    horizontal = rng.random(n) < 0.5
    points[:, 0] = np.where(
        horizontal, rng.uniform(-arm, arm, size=n), rng.uniform(-width, width, size=n)
    )
    points[:, 1] = np.where(
        horizontal, rng.uniform(-width, width, size=n), rng.uniform(-arm, arm, size=n)
    )
    points[:, 2] = rng.uniform(-width, width, size=n)
    return points


def l_shape(n: int, rng: np.random.Generator, size: float = 1.0, thickness: float = 0.35) -> np.ndarray:
    """An L-shaped (angle bracket) solid."""
    points = np.empty((n, 3))
    vertical = rng.random(n) < 0.5
    points[:, 0] = np.where(
        vertical, rng.uniform(-size / 2, -size / 2 + thickness, size=n), rng.uniform(-size / 2, size / 2, size=n)
    )
    points[:, 2] = np.where(
        vertical, rng.uniform(-size / 2, size / 2, size=n), rng.uniform(-size / 2, -size / 2 + thickness, size=n)
    )
    points[:, 1] = rng.uniform(-thickness, thickness, size=n)
    return points


def saddle(n: int, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """Hyperbolic paraboloid patch (z = x^2 - y^2)."""
    x = rng.uniform(-1, 1, size=n)
    y = rng.uniform(-1, 1, size=n)
    z = scale * (x**2 - y**2) * 0.7
    return np.stack([x, y, z], axis=1)


def paraboloid(n: int, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
    """Bowl-shaped paraboloid patch (z = x^2 + y^2)."""
    theta = rng.uniform(0, 2 * np.pi, size=n)
    r = np.sqrt(rng.uniform(0, 1, size=n))
    x, y = r * np.cos(theta), r * np.sin(theta)
    z = scale * (x**2 + y**2) - 0.5
    return np.stack([x, y, z], axis=1)


def wave_plate(n: int, rng: np.random.Generator, frequency: float = 3.0, amplitude: float = 0.25) -> np.ndarray:
    """Sinusoidally corrugated plate."""
    x = rng.uniform(-1, 1, size=n)
    y = rng.uniform(-1, 1, size=n)
    z = amplitude * np.sin(frequency * np.pi * x)
    return np.stack([x, y, z], axis=1)


def spiral_disk(n: int, rng: np.random.Generator, turns: float = 2.5) -> np.ndarray:
    """Archimedean spiral ribbon in the plane."""
    t = rng.uniform(0.15, 1.0, size=n)
    theta = turns * 2 * np.pi * t
    r = t
    width = rng.normal(scale=0.04, size=n)
    x = (r + width) * np.cos(theta)
    y = (r + width) * np.sin(theta)
    z = rng.normal(scale=0.03, size=n)
    return np.stack([x, y, z], axis=1)


def double_sphere(n: int, rng: np.random.Generator, separation: float = 1.0, radius: float = 0.5) -> np.ndarray:
    """Two spheres separated along x (dumbbell without the bar)."""
    points = radius * _unit_sphere(n, rng)
    offset = np.where(rng.random(n) < 0.5, separation / 2, -separation / 2)
    points[:, 0] += offset
    return points


def dumbbell(n: int, rng: np.random.Generator) -> np.ndarray:
    """Two spheres connected by a thin cylinder."""
    points = double_sphere(int(0.7 * n), rng)
    n_bar = n - points.shape[0]
    bar = cylinder(n_bar, rng, radius=0.12, height=1.0)
    # Rotate the bar to lie along x.
    bar = bar[:, [2, 1, 0]]
    return np.concatenate([points, bar], axis=0)


def stairs(n: int, rng: np.random.Generator, steps: int = 4) -> np.ndarray:
    """Staircase profile extruded along y."""
    which = rng.integers(0, steps, size=n)
    x = (which + rng.uniform(0, 1, size=n)) / steps - 0.5
    z = (which + (rng.random(n) < 0.5)) / steps - 0.5
    y = rng.uniform(-0.5, 0.5, size=n)
    return np.stack([x, y, z], axis=1)


def tetrahedron(n: int, rng: np.random.Generator) -> np.ndarray:
    """Regular tetrahedron surface."""
    vertices = np.array(
        [[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]], dtype=WIDE_DTYPE
    ) / np.sqrt(3)
    faces = [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)]
    which = rng.integers(0, 4, size=n)
    u = rng.uniform(0, 1, size=n)
    v = rng.uniform(0, 1, size=n)
    swap = u + v > 1
    u[swap], v[swap] = 1 - u[swap], 1 - v[swap]
    points = np.empty((n, 3))
    for i, face in enumerate(faces):
        mask = which == i
        a, b, c = vertices[face[0]], vertices[face[1]], vertices[face[2]]
        points[mask] = a + u[mask, None] * (b - a) + v[mask, None] * (c - a)
    return points


def octahedron(n: int, rng: np.random.Generator) -> np.ndarray:
    """Regular octahedron surface (L1 ball boundary)."""
    points = rng.normal(size=(n, 3))
    norms = np.abs(points).sum(axis=1, keepdims=True)
    return points / np.maximum(norms, 1e-12)


def cross_cylinders(n: int, rng: np.random.Generator) -> np.ndarray:
    """Three orthogonal cylinders crossing at the origin."""
    which = rng.integers(0, 3, size=n)
    base = cylinder(n, rng, radius=0.25, height=1.6)
    points = np.empty_like(base)
    points[which == 0] = base[which == 0]
    points[which == 1] = base[which == 1][:, [2, 0, 1]]
    points[which == 2] = base[which == 2][:, [1, 2, 0]]
    return points


def _scaled(generator: ShapeGenerator, **kwargs) -> ShapeGenerator:
    """Bind keyword arguments onto a generator to create a shape variant."""

    def wrapped(n: int, rng: np.random.Generator) -> np.ndarray:
        return generator(n, rng, **kwargs)

    return wrapped


#: Registry of the 40 shape classes; the ordering defines the label indices.
SHAPE_GENERATORS: Dict[str, ShapeGenerator] = {
    "sphere": sphere,
    "ellipsoid_flat": _scaled(ellipsoid, axes=(1.0, 0.8, 0.3)),
    "ellipsoid_long": _scaled(ellipsoid, axes=(1.0, 0.4, 0.4)),
    "cube": _scaled(box, extents=(1.0, 1.0, 1.0)),
    "box_flat": _scaled(box, extents=(1.0, 1.0, 0.25)),
    "box_long": _scaled(box, extents=(1.2, 0.4, 0.4)),
    "cylinder": cylinder,
    "cylinder_thin": _scaled(cylinder, radius=0.2, height=1.8),
    "cylinder_squat": _scaled(cylinder, radius=0.9, height=0.5),
    "cone": cone,
    "cone_narrow": _scaled(cone, radius=0.35, height=1.7),
    "torus": torus,
    "torus_thick": _scaled(torus, major=0.7, minor=0.4),
    "torus_thin": _scaled(torus, major=0.9, minor=0.12),
    "pyramid": pyramid,
    "pyramid_tall": _scaled(pyramid, base=0.7, height=1.8),
    "helix": helix,
    "helix_tight": _scaled(helix, turns=5.0, radius=0.5, pitch=0.3),
    "plane": plane,
    "plane_narrow": _scaled(plane, width=2.0, depth=0.6),
    "disk": disk,
    "annulus": annulus,
    "annulus_narrow": _scaled(annulus, inner=0.8, outer=1.0),
    "capsule": capsule,
    "capsule_long": _scaled(capsule, radius=0.25, height=1.6),
    "hemisphere": hemisphere,
    "cross_prism": cross_prism,
    "cross_prism_wide": _scaled(cross_prism, arm=1.0, width=0.5),
    "l_shape": l_shape,
    "l_shape_thick": _scaled(l_shape, size=1.0, thickness=0.55),
    "saddle": saddle,
    "paraboloid": paraboloid,
    "wave_plate": wave_plate,
    "wave_plate_fine": _scaled(wave_plate, frequency=6.0, amplitude=0.15),
    "spiral_disk": spiral_disk,
    "double_sphere": double_sphere,
    "dumbbell": dumbbell,
    "stairs": stairs,
    "tetrahedron": tetrahedron,
    "octahedron": octahedron,
}

# A 41st generator exists for completeness but keeping exactly 40 classes
# mirrors ModelNet40; cross_cylinders is exposed for tests/extensions.
EXTRA_GENERATORS: Dict[str, ShapeGenerator] = {"cross_cylinders": cross_cylinders}


def list_shape_names() -> list[str]:
    """Return the 40 class names in label order."""
    return list(SHAPE_GENERATORS.keys())


def generate_shape(name: str, num_points: int, rng: np.random.Generator) -> np.ndarray:
    """Generate ``num_points`` points from the named shape family.

    Args:
        name: Shape name from :func:`list_shape_names` (or an extra shape).
        num_points: Number of points to sample (positive).
        rng: Random generator.

    Returns:
        Array of shape ``(num_points, 3)``.
    """
    if num_points <= 0:
        raise ValueError(f"num_points must be positive, got {num_points}")
    generator = SHAPE_GENERATORS.get(name) or EXTRA_GENERATORS.get(name)
    if generator is None:
        raise KeyError(f"unknown shape '{name}'")
    points = generator(num_points, rng)
    if points.shape != (num_points, 3):
        raise RuntimeError(f"shape generator '{name}' returned {points.shape}, expected {(num_points, 3)}")
    return points
