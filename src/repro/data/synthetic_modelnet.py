"""Synthetic ModelNet-style point-cloud classification dataset.

The paper evaluates on ModelNet40 (1024-point clouds, 40 classes).  That
dataset cannot be downloaded here, so :class:`SyntheticModelNet` generates an
equivalent-shaped benchmark from the 40 parametric families in
:mod:`repro.data.shapes`: every sample is a normalised ``(num_points, 3)``
cloud with per-sample rotation, anisotropic stretching and jitter.  Absolute
accuracies are not comparable to ModelNet40, but relative comparisons
between architectures (which is all the NAS needs) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InMemoryDataset, PointCloudSample
from repro.data.shapes import generate_shape, list_shape_names
from repro.data.transforms import normalize_unit_sphere, random_jitter, random_rotate_z

__all__ = ["SyntheticModelNetConfig", "SyntheticModelNet", "make_synthetic_modelnet"]


@dataclass
class SyntheticModelNetConfig:
    """Configuration of the synthetic dataset.

    Attributes:
        num_classes: Number of shape classes (1..40).
        samples_per_class: Samples generated per class and split.
        num_points: Points per cloud (the paper's default is 1024).
        jitter_sigma: Std-dev of per-point Gaussian jitter.
        anisotropy: Maximum per-axis stretch applied to each sample.
        seed: Base RNG seed.
    """

    num_classes: int = 40
    samples_per_class: int = 20
    num_points: int = 1024
    jitter_sigma: float = 0.015
    anisotropy: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        max_classes = len(list_shape_names())
        if not 1 <= self.num_classes <= max_classes:
            raise ValueError(f"num_classes must be in [1, {max_classes}], got {self.num_classes}")
        if self.samples_per_class <= 0:
            raise ValueError("samples_per_class must be positive")
        if self.num_points <= 0:
            raise ValueError("num_points must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if not 0 <= self.anisotropy < 1:
            raise ValueError("anisotropy must be in [0, 1)")


class SyntheticModelNet:
    """Generator for train/test splits of the synthetic benchmark."""

    def __init__(self, config: SyntheticModelNetConfig | None = None):
        self.config = config or SyntheticModelNetConfig()
        self.class_names = list_shape_names()[: self.config.num_classes]

    def _generate_sample(self, class_index: int, rng: np.random.Generator) -> PointCloudSample:
        name = self.class_names[class_index]
        points = generate_shape(name, self.config.num_points, rng)
        # Per-sample anisotropic stretch makes intra-class variation realistic.
        stretch = 1.0 + rng.uniform(-self.config.anisotropy, self.config.anisotropy, size=3)
        points = points * stretch
        points = random_rotate_z(points, rng)
        if self.config.jitter_sigma > 0:
            points = random_jitter(points, rng, sigma=self.config.jitter_sigma, clip=5 * self.config.jitter_sigma)
        points = normalize_unit_sphere(points)
        return PointCloudSample(points=points, label=class_index, name=name)

    def generate_split(self, split: str) -> InMemoryDataset:
        """Generate the ``"train"`` or ``"test"`` split.

        The split name is folded into the RNG seed so the two splits are
        disjoint but individually reproducible.
        """
        if split not in ("train", "test"):
            raise ValueError(f"split must be 'train' or 'test', got {split!r}")
        offset = 0 if split == "train" else 10_000
        samples = []
        for class_index in range(self.config.num_classes):
            for sample_index in range(self.config.samples_per_class):
                seed = self.config.seed * 1_000_003 + offset + class_index * 1_000 + sample_index
                rng = np.random.default_rng(seed)
                samples.append(self._generate_sample(class_index, rng))
        return InMemoryDataset(samples, num_classes=self.config.num_classes)

    def generate(self) -> tuple[InMemoryDataset, InMemoryDataset]:
        """Generate ``(train, test)`` splits."""
        return self.generate_split("train"), self.generate_split("test")


def make_synthetic_modelnet(
    num_classes: int = 10,
    samples_per_class: int = 12,
    num_points: int = 64,
    seed: int = 0,
) -> tuple[InMemoryDataset, InMemoryDataset]:
    """Convenience constructor with laptop-friendly defaults.

    The full-size configuration (40 classes, 1024 points) matches the paper
    but is slow on a pure-numpy substrate; the defaults here are the ones
    used by the example scripts and benchmarks.
    """
    config = SyntheticModelNetConfig(
        num_classes=num_classes,
        samples_per_class=samples_per_class,
        num_points=num_points,
        seed=seed,
    )
    return SyntheticModelNet(config).generate()
