"""Point-cloud transforms and augmentations."""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.nn.dtype import as_float_array

__all__ = [
    "normalize_unit_sphere",
    "random_rotate_z",
    "random_jitter",
    "random_scale",
    "random_point_dropout",
    "Compose",
]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def _check_points(points: np.ndarray) -> np.ndarray:
    points = as_float_array(points)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (N, 3), got {points.shape}")
    return points


def normalize_unit_sphere(points: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Centre the cloud at the origin and scale it into the unit sphere."""
    points = _check_points(points)
    centred = points - points.mean(axis=0, keepdims=True)
    scale = np.max(np.linalg.norm(centred, axis=1))
    return centred / max(scale, 1e-12)


def random_rotate_z(points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Rotate the cloud by a random angle around the z axis."""
    points = _check_points(points)
    angle = rng.uniform(0, 2 * np.pi)
    cos, sin = np.cos(angle), np.sin(angle)
    rotation = np.array([[cos, -sin, 0.0], [sin, cos, 0.0], [0.0, 0.0, 1.0]])
    return points @ rotation.T


def random_jitter(points: np.ndarray, rng: np.random.Generator, sigma: float = 0.01, clip: float = 0.05) -> np.ndarray:
    """Add clipped Gaussian noise to every coordinate."""
    points = _check_points(points)
    if sigma < 0 or clip <= 0:
        raise ValueError("sigma must be >= 0 and clip > 0")
    noise = np.clip(rng.normal(scale=sigma, size=points.shape), -clip, clip)
    return points + noise


def random_scale(points: np.ndarray, rng: np.random.Generator, low: float = 0.8, high: float = 1.25) -> np.ndarray:
    """Scale the cloud by a random isotropic factor in ``[low, high]``."""
    points = _check_points(points)
    if not 0 < low <= high:
        raise ValueError(f"invalid scale range [{low}, {high}]")
    return points * rng.uniform(low, high)


def random_point_dropout(
    points: np.ndarray, rng: np.random.Generator, max_dropout: float = 0.5
) -> np.ndarray:
    """Randomly replace a fraction of points with the first point (PointNet-style dropout)."""
    points = _check_points(points)
    if not 0 <= max_dropout < 1:
        raise ValueError(f"max_dropout must be in [0, 1), got {max_dropout}")
    ratio = rng.uniform(0, max_dropout)
    mask = rng.random(points.shape[0]) < ratio
    if mask.any():
        points = points.copy()
        points[mask] = points[0]
    return points


class Compose:
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: Iterable[Transform]):
        self.transforms = list(transforms)

    def __call__(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            points = transform(points, rng)
        return points

    def __len__(self) -> int:
        return len(self.transforms)
