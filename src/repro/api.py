"""High-level convenience API — one-shot shims over a throwaway Workspace.

These helpers keep the original function-per-stage surface for quick
scripts and backwards compatibility:

* :func:`profile_architecture` — latency/memory/breakdown of an
  architecture on a device.
* :func:`train_latency_predictor` — build the GNN latency predictor for a
  device (paper Sec. III-D).
* :func:`search_architecture` — run the full hardware-aware search for a
  device (paper Alg. 1) and return the best architecture with its metrics.
* :func:`build_model` — instantiate a searched architecture as a trainable
  stand-alone classifier.
* :func:`deploy_architecture` / :func:`serve` — register a searched
  architecture in a :class:`~repro.serving.registry.ModelRegistry` and
  serve classification requests through the batched, cached
  :class:`~repro.serving.engine.InferenceEngine`.

Each call builds a throwaway :class:`~repro.workspace.Workspace`, so
nothing persists between calls; for multi-stage work (or to cache
predictors/search results across runs) construct a ``Workspace`` with a
``root`` directory instead.  Scenario parameters left at ``None`` resolve
from the shared :class:`~repro.workspace.InferenceDefaults`
(1024 points, ``k=20``, 40 classes, ``embed_dim=64``) — previously the
profiling helpers assumed ``k=20`` while the deployment helpers assumed
``k=10``.

Every function accepts device names (``"rtx3080"``, ``"jetson-tx2"``,
``"raspberry-pi"``, ``"i7-8700k"`` or aliases such as ``"gpu"``/``"pi"``)
plus any device added through
:func:`~repro.hardware.device.register_device`.
"""

from __future__ import annotations

from repro.data.dataset import InMemoryDataset
from repro.hardware.device import DeviceSpec
from repro.hardware.profiler import ProfileResult
from repro.nas.architecture import Architecture
from repro.nas.derived import DerivedModel
from repro.nas.search import HGNASConfig, SearchResult
from repro.predictor.model import LatencyPredictor, PredictorConfig
from repro.serving.engine import EngineConfig
from repro.serving.registry import DeployedModel, ModelRegistry
from repro.workspace import DEFAULTS, PredictorBundle, ServeReport, Workspace

__all__ = [
    "profile_architecture",
    "measure_latency",
    "train_latency_predictor",
    "PredictorBundle",
    "search_architecture",
    "build_model",
    "deploy_architecture",
    "ServeReport",
    "serve",
]


def profile_architecture(
    architecture: Architecture,
    device: str | DeviceSpec,
    num_points: int | None = None,
    k: int | None = None,
    num_classes: int | None = None,
) -> ProfileResult:
    """Profile an architecture's latency breakdown and memory on a device."""
    return Workspace(device=device).profile(architecture, num_points=num_points, k=k, num_classes=num_classes)


def measure_latency(
    architecture: Architecture,
    device: str | DeviceSpec,
    num_points: int | None = None,
    k: int | None = None,
    num_classes: int | None = None,
    noisy: bool = False,
    seed: int | None = None,
) -> float:
    """Latency (ms) of an architecture on a device, optionally with measurement noise."""
    return Workspace(device=device).measure_latency(
        architecture, noisy=noisy, num_points=num_points, k=k, num_classes=num_classes, seed=seed
    )


def train_latency_predictor(
    device: str | DeviceSpec,
    num_samples: int = 400,
    num_positions: int = 12,
    epochs: int = 80,
    seed: int = 0,
    predictor_config: PredictorConfig | None = None,
) -> PredictorBundle:
    """Sample architectures, label them on the device and train a predictor."""
    return Workspace(device=device).train_predictor(
        num_samples=num_samples,
        num_positions=num_positions,
        epochs=epochs,
        seed=seed,
        predictor_config=predictor_config,
    )


def search_architecture(
    device: str | DeviceSpec,
    train_dataset: InMemoryDataset,
    val_dataset: InMemoryDataset,
    config: HGNASConfig | None = None,
    latency_oracle: str = "oracle",
    predictor: LatencyPredictor | None = None,
    seed: int = 0,
) -> SearchResult:
    """Run the hardware-aware search for a target device.

    Args:
        device: Target device name or spec.
        train_dataset: Supernet training data.
        val_dataset: Validation data used by the search objective.
        config: Search configuration (a laptop-scale default is used if omitted).
        latency_oracle: Any evaluator registered through
            :func:`~repro.nas.latency_eval.register_latency_evaluator` —
            built-ins are ``"oracle"`` (analytical model), ``"measurement"``
            (noisy, slow simulated measurement) and ``"predictor"`` (requires
            ``predictor`` or trains a small one on the fly).
        predictor: Optional pre-trained latency predictor.
        seed: RNG seed.
    """
    return Workspace(device=device).search(
        train_dataset,
        val_dataset,
        config=config,
        latency_oracle=latency_oracle,
        predictor=predictor,
        seed=seed,
    )


def build_model(
    architecture: Architecture,
    num_classes: int,
    k: int | None = None,
    embed_dim: int | None = None,
    seed: int | None = None,
) -> DerivedModel:
    """Instantiate a searched architecture as a trainable stand-alone model.

    Device-independent, so it resolves the shared defaults directly rather
    than going through a workspace (which would needlessly bind a device).
    """
    scenario = DEFAULTS.resolve(k=k, embed_dim=embed_dim, seed=seed)
    return DerivedModel(
        architecture,
        num_classes=num_classes,
        k=scenario.k,
        embed_dim=scenario.embed_dim,
        seed=scenario.seed,
    )


def deploy_architecture(
    architecture: Architecture,
    device: str | DeviceSpec,
    num_classes: int,
    name: str | None = None,
    registry: ModelRegistry | None = None,
    k: int | None = None,
    embed_dim: int | None = None,
    seed: int | None = None,
    slo_ms: float | None = None,
    train_dataset: InMemoryDataset | None = None,
    train_epochs: int = 5,
    train_batch_size: int = 8,
) -> DeployedModel:
    """Instantiate a searched architecture and register it for serving.

    Args:
        architecture: Searched genotype to deploy.
        device: Target device name or spec (drives SLO admission control).
        num_classes: Classifier output classes.
        name: Registry key; defaults to the architecture's name (or
            ``"deployed"`` when unnamed).
        registry: Registry to add the entry to; a fresh one is created when
            omitted.
        k: Neighbourhood size at inference time (default: the shared
            :class:`~repro.workspace.InferenceDefaults`).
        embed_dim: Classifier-head embedding width.
        seed: Weight-initialisation / training seed.
        slo_ms: Optional per-request latency budget on ``device``.
        train_dataset: When given, the deployed model is trained on it
            before registration (otherwise it serves with initial weights).
        train_epochs: Training epochs when ``train_dataset`` is given.
        train_batch_size: Training batch size when ``train_dataset`` is given.

    Returns:
        The registered :class:`~repro.serving.registry.DeployedModel`.
        Pass a ``registry`` to keep multiple deployments together;
        :func:`serve` accepts the returned entry directly either way.
    """
    workspace = Workspace(device=device, registry=registry)
    return workspace.deploy(
        architecture,
        num_classes,
        name=name,
        k=k,
        embed_dim=embed_dim,
        seed=seed,
        slo_ms=slo_ms,
        train_dataset=train_dataset,
        train_epochs=train_epochs,
        train_batch_size=train_batch_size,
    )


def serve(
    deployed: DeployedModel,
    clouds,
    config: EngineConfig | None = None,
    registry: ModelRegistry | None = None,
) -> ServeReport:
    """Serve a stream of point clouds through a deployed model.

    A convenience wrapper that adopts ``deployed`` into a single-entry
    registry (unless one is supplied) and serves every cloud with
    micro-batching through a workspace engine, returning results plus
    telemetry.  Keep the engine from the returned report to serve follow-up
    traffic with warm caches.
    """
    workspace = Workspace(device=deployed.device, registry=registry)
    if deployed.name not in workspace.registry:
        workspace.registry.add(deployed)
    return workspace.serve(clouds, name=deployed.name, config=config)
