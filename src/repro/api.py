"""High-level convenience API.

These helpers wire together the subsystems for the most common workflows:

* :func:`profile_architecture` — latency/memory/breakdown of an
  architecture on a device.
* :func:`train_latency_predictor` — build the GNN latency predictor for a
  device (paper Sec. III-D).
* :func:`search_architecture` — run the full hardware-aware search for a
  device (paper Alg. 1) and return the best architecture with its metrics.
* :func:`build_model` — instantiate a searched architecture as a trainable
  stand-alone classifier.
* :func:`deploy_architecture` / :func:`serve` — register a searched
  architecture in a :class:`~repro.serving.registry.ModelRegistry` and
  serve classification requests through the batched, cached
  :class:`~repro.serving.engine.InferenceEngine`.

Every function accepts device names (``"rtx3080"``, ``"jetson-tx2"``,
``"raspberry-pi"``, ``"i7-8700k"`` or aliases such as ``"gpu"``/``"pi"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InMemoryDataset
from repro.hardware.device import DeviceSpec, get_device
from repro.hardware.profiler import ProfileResult, profile_workload
from repro.nas.architecture import Architecture
from repro.nas.derived import DerivedModel
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.nas.latency_eval import MeasurementLatencyEvaluator, OracleLatencyEvaluator
from repro.nas.search import HGNAS, HGNASConfig, SearchResult
from repro.predictor.dataset import generate_predictor_dataset
from repro.predictor.evaluator import PredictorLatencyEvaluator
from repro.predictor.metrics import PredictorMetrics
from repro.predictor.model import LatencyPredictor, PredictorConfig
from repro.predictor.train import PredictorTrainingConfig, evaluate_predictor, train_predictor
from repro.serving.engine import EngineConfig, InferenceEngine, InferenceResult
from repro.serving.registry import DeployedModel, ModelRegistry

__all__ = [
    "profile_architecture",
    "measure_latency",
    "train_latency_predictor",
    "PredictorBundle",
    "search_architecture",
    "build_model",
    "deploy_architecture",
    "ServeReport",
    "serve",
]


def profile_architecture(
    architecture: Architecture,
    device: str | DeviceSpec,
    num_points: int = 1024,
    k: int = 20,
    num_classes: int = 40,
) -> ProfileResult:
    """Profile an architecture's latency breakdown and memory on a device."""
    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    workload = architecture.to_workload(num_points, k, num_classes)
    return profile_workload(workload, spec)


def measure_latency(
    architecture: Architecture,
    device: str | DeviceSpec,
    num_points: int = 1024,
    k: int = 20,
    num_classes: int = 40,
    noisy: bool = False,
    seed: int = 0,
) -> float:
    """Latency (ms) of an architecture on a device, optionally with measurement noise."""
    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    if noisy:
        evaluator = MeasurementLatencyEvaluator(
            spec, num_points=num_points, k=k, num_classes=num_classes, rng=np.random.default_rng(seed)
        )
    else:
        evaluator = OracleLatencyEvaluator(spec, num_points=num_points, k=k, num_classes=num_classes)
    return evaluator.evaluate(architecture)


@dataclass
class PredictorBundle:
    """A trained predictor with its validation metrics."""

    predictor: LatencyPredictor
    metrics: PredictorMetrics
    device: str


def train_latency_predictor(
    device: str | DeviceSpec,
    num_samples: int = 400,
    num_positions: int = 12,
    epochs: int = 80,
    seed: int = 0,
    predictor_config: PredictorConfig | None = None,
) -> PredictorBundle:
    """Sample architectures, label them on the device and train a predictor."""
    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    rng = np.random.default_rng(seed)
    space = DesignSpace(DesignSpaceConfig(num_positions=num_positions, k=20, num_points=1024))
    dataset = generate_predictor_dataset(space, spec, num_samples, rng)
    train_split, val_split = dataset.split(0.75, rng)
    predictor = LatencyPredictor(predictor_config or PredictorConfig(gcn_dims=(32, 48, 48), mlp_dims=(32, 16), seed=seed))
    train_predictor(
        predictor,
        train_split,
        val_split,
        PredictorTrainingConfig(epochs=epochs, batch_size=32, learning_rate=1e-2, seed=seed),
    )
    return PredictorBundle(predictor=predictor, metrics=evaluate_predictor(predictor, val_split), device=spec.name)


def search_architecture(
    device: str | DeviceSpec,
    train_dataset: InMemoryDataset,
    val_dataset: InMemoryDataset,
    config: HGNASConfig | None = None,
    latency_oracle: str = "oracle",
    predictor: LatencyPredictor | None = None,
    seed: int = 0,
) -> SearchResult:
    """Run the hardware-aware search for a target device.

    Args:
        device: Target device name or spec.
        train_dataset: Supernet training data.
        val_dataset: Validation data used by the search objective.
        config: Search configuration (a laptop-scale default is used if omitted).
        latency_oracle: ``"oracle"`` (analytical model), ``"measurement"``
            (noisy, slow simulated measurement) or ``"predictor"`` (requires
            ``predictor`` or trains a small one on the fly).
        predictor: Optional pre-trained latency predictor.
        seed: RNG seed.
    """
    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    config = config or HGNASConfig(num_classes=train_dataset.num_classes, seed=seed)
    if latency_oracle == "oracle":
        evaluator = OracleLatencyEvaluator(
            spec, num_points=config.deploy_num_points, k=config.deploy_k, num_classes=config.num_classes
        )
    elif latency_oracle == "measurement":
        evaluator = MeasurementLatencyEvaluator(
            spec,
            num_points=config.deploy_num_points,
            k=config.deploy_k,
            num_classes=config.num_classes,
            rng=np.random.default_rng(seed),
        )
    elif latency_oracle == "predictor":
        if predictor is None:
            predictor = train_latency_predictor(spec, num_samples=200, num_positions=config.num_positions, epochs=40, seed=seed).predictor
        evaluator = PredictorLatencyEvaluator(predictor)
    else:
        raise ValueError(f"unknown latency oracle '{latency_oracle}'")
    search = HGNAS(config, train_dataset, val_dataset, evaluator, rng=np.random.default_rng(seed))
    return search.run()


def build_model(
    architecture: Architecture,
    num_classes: int,
    k: int = 10,
    embed_dim: int = 64,
    seed: int = 0,
) -> DerivedModel:
    """Instantiate a searched architecture as a trainable stand-alone model."""
    return DerivedModel(architecture, num_classes=num_classes, k=k, embed_dim=embed_dim, seed=seed)


def deploy_architecture(
    architecture: Architecture,
    device: str | DeviceSpec,
    num_classes: int,
    name: str | None = None,
    registry: ModelRegistry | None = None,
    k: int = 10,
    embed_dim: int = 64,
    seed: int = 0,
    slo_ms: float | None = None,
    train_dataset: InMemoryDataset | None = None,
    train_epochs: int = 5,
    train_batch_size: int = 8,
) -> DeployedModel:
    """Instantiate a searched architecture and register it for serving.

    Args:
        architecture: Searched genotype to deploy.
        device: Target device name or spec (drives SLO admission control).
        num_classes: Classifier output classes.
        name: Registry key; defaults to the architecture's name (or
            ``"deployed"`` when unnamed).
        registry: Registry to add the entry to; a fresh one is created when
            omitted.
        k: Neighbourhood size at inference time.
        embed_dim: Classifier-head embedding width.
        seed: Weight-initialisation / training seed.
        slo_ms: Optional per-request latency budget on ``device``.
        train_dataset: When given, the deployed model is trained on it
            before registration (otherwise it serves with initial weights).
        train_epochs: Training epochs when ``train_dataset`` is given.
        train_batch_size: Training batch size when ``train_dataset`` is given.

    Returns:
        The registered :class:`~repro.serving.registry.DeployedModel`.
        Pass a ``registry`` to keep multiple deployments together;
        :func:`serve` accepts the returned entry directly either way.
    """
    from repro.nas.trainer import train_classifier

    spec = device if isinstance(device, DeviceSpec) else get_device(device)
    model = DerivedModel(architecture, num_classes=num_classes, k=k, embed_dim=embed_dim, seed=seed)
    if train_dataset is not None:
        train_classifier(
            model,
            train_dataset,
            epochs=train_epochs,
            batch_size=train_batch_size,
            rng=np.random.default_rng(seed),
        )
    registry = registry if registry is not None else ModelRegistry()
    return registry.register(
        name=name or architecture.name or "deployed",
        architecture=architecture,
        device=spec,
        num_classes=num_classes,
        k=k,
        embed_dim=embed_dim,
        seed=seed,
        slo_ms=slo_ms,
        model=model,
    )


@dataclass
class ServeReport:
    """Results of a served request stream plus the engine that produced them."""

    results: list[InferenceResult]
    telemetry: dict
    engine: InferenceEngine


def serve(
    deployed: DeployedModel,
    clouds,
    config: EngineConfig | None = None,
    registry: ModelRegistry | None = None,
) -> ServeReport:
    """Serve a stream of point clouds through a deployed model.

    A convenience wrapper that builds a single-entry registry (unless one is
    supplied) and an :class:`~repro.serving.engine.InferenceEngine`, submits
    every cloud with micro-batching, and returns results plus telemetry.
    Keep the engine from the returned report to serve follow-up traffic with
    warm caches.
    """
    if registry is None:
        registry = ModelRegistry()
    if deployed.name not in registry:
        registry.register(
            name=deployed.name,
            architecture=deployed.architecture,
            device=deployed.device,
            num_classes=deployed.num_classes,
            k=deployed.k,
            embed_dim=deployed.embed_dim,
            seed=deployed.seed,
            slo_ms=deployed.slo_ms,
            model=deployed.model,
        )
    engine = InferenceEngine(registry, config)
    results = engine.submit_many(deployed.name, clouds)
    return ServeReport(results=results, telemetry=engine.report(), engine=engine)
