"""Batched (vectorized) evaluation of architecture graphs.

The search evaluates whole populations of candidate architectures per
generation (paper Alg. 1: population 20 x 1000 iterations), so scoring them
one graph at a time wastes most of the wall clock on per-call Python and
autograd overhead.  This module pads a list of
:class:`~repro.predictor.arch_graph.ArchitectureGraph` objects into one
stacked batch and runs a *single* GCN + MLP forward for all of them.

Bit-exactness contract
----------------------
:func:`predict_latencies` produces the **same floats** as running the
predictor graph-by-graph, which keeps search results independent of the
evaluation path.  Three properties make this hold:

* Graphs are grouped by node count and each group is stacked *without
  padding*, so every batched matmul slice has exactly the shapes of the
  sequential per-graph call and BLAS picks the same kernel.  (Zero padding
  is mathematically exact, but changing the contraction length can switch
  BLAS kernels whose different sum associations drift in the last ulp —
  observed in practice when padding 9-node graphs to 16.)
* Pooling uses the scatter kernels (``np.add.at`` / ``np.maximum.at``) over
  the valid rows in graph order, accumulating in the same order as the
  sequential ``sum(axis=0)`` / ``max(axis=0)`` reductions.
* The MLP runs on a ``(B, 1, F)`` stack of row vectors rather than a
  ``(B, F)`` matrix, so BLAS applies the same single-row kernel as the
  sequential path (a ``(B, F) @ (F, out)`` GEMM may reassociate sums
  differently from the per-row GEMV and drift in the last ulp).

:func:`collate_graphs` / :func:`forward_graph_batch` still accept
mixed-size batches (padded, mask-pooled) for callers that prefer one fused
forward over exactness — e.g. batched training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.scatter import scatter_max, scatter_sum
from repro.nn.dtype import WIDE_DTYPE
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.obs.metrics import get_metrics
from repro.predictor.arch_graph import ArchitectureGraph

__all__ = ["GraphBatch", "collate_graphs", "forward_graph_batch", "predict_latencies"]


@dataclass(frozen=True)
class GraphBatch:
    """A population of architecture graphs padded into one dense batch."""

    features: np.ndarray  #: ``(B, M, FEATURE_DIM)`` zero-padded node features.
    aggregation: np.ndarray  #: ``(B, M, M)`` zero-padded ``A + I`` operators.
    node_counts: np.ndarray  #: ``(B,)`` true node count of every graph.
    flat_rows: np.ndarray  #: Indices of valid rows in the flattened ``(B * M)`` node set.
    segment_ids: np.ndarray  #: Graph id of every valid row (sorted ascending).

    @property
    def num_graphs(self) -> int:
        return self.features.shape[0]

    @property
    def max_nodes(self) -> int:
        return self.features.shape[1]


def collate_graphs(graphs: Sequence[ArchitectureGraph]) -> GraphBatch:
    """Pad-and-stack architecture graphs into one :class:`GraphBatch`.

    Args:
        graphs: Non-empty sequence of graphs (node counts may differ).

    Returns:
        The stacked batch; padded rows/columns are zero, so they are inert
        under the GCN's masked aggregation and excluded from pooling.
    """
    if not graphs:
        raise ValueError("cannot collate an empty list of graphs")
    counts = np.array([graph.num_nodes for graph in graphs], dtype=np.int64)
    num_graphs = len(graphs)
    max_nodes = int(counts.max())
    feature_dim = graphs[0].features.shape[1]
    dtype = graphs[0].features.dtype
    features = np.zeros((num_graphs, max_nodes, feature_dim), dtype=dtype)
    aggregation = np.zeros((num_graphs, max_nodes, max_nodes), dtype=dtype)
    for index, graph in enumerate(graphs):
        if graph.features.shape[1] != feature_dim:
            raise ValueError(
                f"graph {index} has feature dim {graph.features.shape[1]}, expected {feature_dim}"
            )
        n = graph.num_nodes
        features[index, :n] = graph.features
        aggregation[index, :n, :n] = graph.adjacency
    # Self-loops (the predictor's A + I sum aggregation) added in one bulk
    # write; the extra 1 on padded diagonals multiplies zero feature rows.
    diagonal = np.arange(max_nodes)
    aggregation[:, diagonal, diagonal] += 1.0
    segment_ids = np.repeat(np.arange(num_graphs, dtype=np.int64), counts)
    offsets = np.repeat(np.arange(num_graphs, dtype=np.int64) * max_nodes, counts)
    local = np.concatenate([np.arange(n, dtype=np.int64) for n in counts])
    return GraphBatch(
        features=features,
        aggregation=aggregation,
        node_counts=counts,
        flat_rows=offsets + local,
        segment_ids=segment_ids,
    )


def forward_graph_batch(predictor, batch: GraphBatch) -> Tensor:
    """Standardised log1p-latency predictions for a whole batch.

    Args:
        predictor: A :class:`~repro.predictor.model.LatencyPredictor` (typed
            loosely to avoid a circular import); its GCN must accept batched
            ``(B, M, M)`` aggregation operators.
        batch: Output of :func:`collate_graphs`.

    Returns:
        Tensor of shape ``(B,)`` with the same floats as per-graph
        :meth:`~repro.predictor.model.LatencyPredictor.forward_graph` calls.
    """
    node_embeddings = predictor.gcn(Tensor(batch.features), batch.aggregation)
    hidden = node_embeddings.shape[-1]
    if batch.flat_rows.size == batch.num_graphs * batch.max_nodes:
        # Uniform-size batch (the bit-exact fast path): no padding rows, so
        # pooling is a plain per-slice reduction — same accumulation order
        # as the sequential ``sum(axis=0)`` / ``max(axis=0)``.
        pooled = concatenate(
            [node_embeddings.sum(axis=1), node_embeddings.max(axis=1)],
            axis=1,
        )
    else:
        valid = node_embeddings.reshape(batch.num_graphs * batch.max_nodes, hidden)[batch.flat_rows]
        pooled = concatenate(
            [
                scatter_sum(valid, batch.segment_ids, batch.num_graphs),
                scatter_max(valid, batch.segment_ids, batch.num_graphs),
            ],
            axis=1,
        )
    # One row vector per graph: BLAS then uses the same single-row kernel as
    # the sequential path, keeping the outputs bit-identical.
    out = predictor.mlp(pooled.reshape(batch.num_graphs, 1, 2 * hidden))
    return out.reshape(batch.num_graphs)


def predict_latencies(predictor, graphs: Sequence[ArchitectureGraph]) -> np.ndarray:
    """Predicted latencies (ms) for several encoded graphs, batched.

    Bit-identical to mapping
    :meth:`~repro.predictor.model.LatencyPredictor.predict_from_graph` over
    ``graphs``: the graphs are grouped by node count and every group is
    scored with one fused unpadded forward (see the module docstring for
    why unpadded shapes are what makes the floats exact).
    """
    if not graphs:
        return np.zeros(0, dtype=WIDE_DTYPE)  # latency milliseconds: metric bookkeeping
    groups: dict[int, list[int]] = {}
    for index, graph in enumerate(graphs):
        groups.setdefault(graph.num_nodes, []).append(index)
    metrics = get_metrics()
    metrics.count("predictor.batch.calls")
    metrics.count("predictor.batch.graphs", len(graphs))
    metrics.count("predictor.batch.groups", len(groups))
    metrics.observe("predictor.batch.size", float(len(graphs)))
    latencies = np.empty(len(graphs), dtype=WIDE_DTYPE)
    with no_grad():
        for indices in groups.values():
            batch = collate_graphs([graphs[index] for index in indices])
            # The sequential path denormalizes a Python float (``.item()``
            # upcasts the network output to float64); match it exactly by
            # denormalizing in float64 regardless of the compute dtype.
            standardised = forward_graph_batch(predictor, batch).numpy().astype(WIDE_DTYPE)
            latencies[indices] = predictor.denormalize_to_ms(standardised)
    return latencies
