"""Abstraction of GNN architectures into graphs for the latency predictor.

Following the paper's Fig. 5, a candidate architecture becomes a directed
graph whose nodes are the input, the executed operations and the output,
with edges along the dataflow.  Because that chain is very sparse, a
*global node* connected (bidirectionally) to every other node is added to
improve connectivity, and the input point cloud's properties (size,
neighbourhood, density) are encoded into its features.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.graph.adjacency import sum_aggregation_matrix
from repro.hardware.cost_model import lower_op
from repro.nas.architecture import Architecture, effective_op_to_descriptor
from repro.predictor.encoding import (
    COST_FEATURE_DIM,
    FEATURE_DIM,
    encode_cost_features,
    encode_global_node,
    encode_operation_node,
    encode_terminal_node,
)

__all__ = ["ArchitectureGraph", "architecture_to_graph"]


@dataclass(frozen=True)
class ArchitectureGraph:
    """Dense graph representation consumed by the predictor."""

    adjacency: np.ndarray
    features: np.ndarray
    node_labels: tuple[str, ...]

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    def aggregation_matrix(self) -> np.ndarray:
        """Sum-aggregation operator ``A + I`` used by the predictor's GCN layers."""
        return sum_aggregation_matrix(self.adjacency, add_self_loops=True)

    def to_networkx(self) -> nx.DiGraph:
        """Convert to a networkx digraph (for inspection and tests)."""
        graph = nx.DiGraph()
        for index, label in enumerate(self.node_labels):
            graph.add_node(index, label=label)
        sources, targets = np.nonzero(self.adjacency.T)
        for source, target in zip(sources.tolist(), targets.tolist()):
            graph.add_edge(source, target)
        return graph


def architecture_to_graph(
    architecture: Architecture,
    num_points: int = 1024,
    k: int = 20,
    include_global_node: bool = True,
) -> ArchitectureGraph:
    """Abstract an architecture into the predictor's graph representation.

    Args:
        architecture: Candidate architecture.
        num_points: Deployment point-cloud size (encoded in the global node).
        k: Deployment neighbourhood size (encoded in the global node).
        include_global_node: Whether to add the globally connected node; the
            ablation benchmark switches this off to quantify its value.

    Returns:
        The dense adjacency (``A[t, s] = 1`` for dataflow s -> t), node
        feature matrix and node labels.
    """
    ops = architecture.effective_ops()
    labels: list[str] = ["input"]
    features: list[np.ndarray] = [encode_terminal_node("input")]
    cost_rows: list[np.ndarray] = [np.zeros(COST_FEATURE_DIM)]
    cost_totals = np.zeros(3, dtype=np.float64)
    for op in ops:
        labels.append(op.describe())
        features.append(encode_operation_node(op))
        quantities = lower_op(effective_op_to_descriptor(op, num_points, k))
        cost_rows.append(
            encode_cost_features(quantities.flops, quantities.irregular_bytes, quantities.knn_pair_dims)
        )
        cost_totals += (quantities.flops, quantities.irregular_bytes, quantities.knn_pair_dims)
    labels.append("output")
    features.append(encode_terminal_node("output"))
    cost_rows.append(np.zeros(COST_FEATURE_DIM))

    num_chain = len(labels)
    num_nodes = num_chain + (1 if include_global_node else 0)
    adjacency = np.zeros((num_nodes, num_nodes), dtype=np.float64)
    # Dataflow edges along the chain: A[target, source] = 1.
    for index in range(num_chain - 1):
        adjacency[index + 1, index] = 1.0

    if include_global_node:
        labels.append("global")
        features.append(encode_global_node(num_points, k, len(ops)))
        cost_rows.append(encode_cost_features(*cost_totals))
        global_index = num_nodes - 1
        for index in range(num_chain):
            adjacency[global_index, index] = 1.0
            adjacency[index, global_index] = 1.0

    feature_matrix = np.concatenate([np.stack(features, axis=0), np.stack(cost_rows, axis=0)], axis=1)
    if feature_matrix.shape[1] != FEATURE_DIM:
        raise RuntimeError("inconsistent node feature width")
    return ArchitectureGraph(
        adjacency=adjacency,
        features=feature_matrix,
        node_labels=tuple(labels),
    )
