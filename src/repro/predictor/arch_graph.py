"""Abstraction of GNN architectures into graphs for the latency predictor.

Following the paper's Fig. 5, a candidate architecture becomes a directed
graph whose nodes are the input, the executed operations and the output,
with edges along the dataflow.  Because that chain is very sparse, a
*global node* connected (bidirectionally) to every other node is added to
improve connectivity, and the input point cloud's properties (size,
neighbourhood, density) are encoded into its features.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.graph.adjacency import sum_aggregation_matrix
from repro.hardware.cost_model import lower_op
from repro.nas.architecture import Architecture, effective_op_to_descriptor
from repro.nn.dtype import WIDE_DTYPE, get_default_dtype
from repro.predictor.encoding import (
    COST_FEATURE_DIM,
    FEATURE_DIM,
    encode_cost_features,
    encode_global_node,
    encode_operation_node,
    encode_terminal_node,
)

__all__ = ["ArchitectureGraph", "architecture_to_graph"]


@functools.lru_cache(maxsize=8)
def _terminal_row(kind: str) -> np.ndarray:
    """Constant node-type rows for the input/output terminals."""
    return encode_terminal_node(kind)


@functools.lru_cache(maxsize=8192)
def _op_node_rows(op, num_points: int, k: int) -> tuple[np.ndarray, np.ndarray, tuple[float, float, float]]:
    """Memoised per-operation encoding.

    Population-scale evaluation encodes thousands of architectures drawn from
    a small discrete op space, so the per-op feature row, cost row and cost
    quantities repeat constantly; :class:`EffectiveOp` is frozen/hashable,
    and the encoding is a pure function of ``(op, num_points, k)``.  The
    cached arrays are copied into fresh matrices by ``np.stack`` below and
    must not be mutated by callers.
    """
    quantities = lower_op(effective_op_to_descriptor(op, num_points, k))
    return (
        encode_operation_node(op),
        encode_cost_features(quantities.flops, quantities.irregular_bytes, quantities.knn_pair_dims),
        (quantities.flops, quantities.irregular_bytes, quantities.knn_pair_dims),
    )


@dataclass(frozen=True)
class ArchitectureGraph:
    """Dense graph representation consumed by the predictor."""

    adjacency: np.ndarray
    features: np.ndarray
    node_labels: tuple[str, ...]

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    def aggregation_matrix(self) -> np.ndarray:
        """Sum-aggregation operator ``A + I`` used by the predictor's GCN layers."""
        return sum_aggregation_matrix(self.adjacency, add_self_loops=True)

    def to_networkx(self) -> nx.DiGraph:
        """Convert to a networkx digraph (for inspection and tests)."""
        graph = nx.DiGraph()
        for index, label in enumerate(self.node_labels):
            graph.add_node(index, label=label)
        sources, targets = np.nonzero(self.adjacency.T)
        for source, target in zip(sources.tolist(), targets.tolist()):
            graph.add_edge(source, target)
        return graph


def architecture_to_graph(
    architecture: Architecture,
    num_points: int = 1024,
    k: int = 20,
    include_global_node: bool = True,
) -> ArchitectureGraph:
    """Abstract an architecture into the predictor's graph representation.

    Args:
        architecture: Candidate architecture.
        num_points: Deployment point-cloud size (encoded in the global node).
        k: Deployment neighbourhood size (encoded in the global node).
        include_global_node: Whether to add the globally connected node; the
            ablation benchmark switches this off to quantify its value.

    Returns:
        The dense adjacency (``A[t, s] = 1`` for dataflow s -> t), node
        feature matrix and node labels.
    """
    ops = architecture.effective_ops()
    num_chain = len(ops) + 2
    num_nodes = num_chain + (1 if include_global_node else 0)
    base_dim = FEATURE_DIM - COST_FEATURE_DIM

    # Rows are written straight into the preallocated matrix (layout:
    # node-type + function columns, then the cost columns) — this is the
    # hottest allocation site of population-scale evaluation.
    feature_matrix = np.zeros((num_nodes, FEATURE_DIM), dtype=get_default_dtype())
    labels: list[str] = ["input"]
    feature_matrix[0, :base_dim] = _terminal_row("input")
    cost_totals = np.zeros(3, dtype=WIDE_DTYPE)
    for row, op in enumerate(ops, start=1):
        labels.append(op.describe())
        feature_row, cost_row, quantities = _op_node_rows(op, num_points, k)
        feature_matrix[row, :base_dim] = feature_row
        feature_matrix[row, base_dim:] = cost_row
        cost_totals += quantities
    labels.append("output")
    feature_matrix[num_chain - 1, :base_dim] = _terminal_row("output")

    adjacency = np.zeros((num_nodes, num_nodes), dtype=feature_matrix.dtype)
    # Dataflow edges along the chain: A[target, source] = 1.
    chain = np.arange(num_chain - 1)
    adjacency[chain + 1, chain] = 1.0

    if include_global_node:
        labels.append("global")
        global_index = num_nodes - 1
        feature_matrix[global_index, :base_dim] = encode_global_node(num_points, k, len(ops))
        feature_matrix[global_index, base_dim:] = encode_cost_features(*cost_totals)
        adjacency[global_index, :num_chain] = 1.0
        adjacency[:num_chain, global_index] = 1.0

    return ArchitectureGraph(
        adjacency=adjacency,
        features=feature_matrix,
        node_labels=tuple(labels),
    )
