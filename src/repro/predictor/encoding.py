"""Node-feature encodings for architecture graphs (paper Sec. III-D).

Every node of the abstracted architecture graph receives a feature vector
made of two parts:

* a one-hot **node-type** encoding over the seven node kinds
  (input, output, global, sample, aggregate, combine, connect), matching
  the paper's 7-dimensional operation-type encoding;
* a **function** encoding describing the op's attributes.  The paper uses a
  9-dimensional one-hot; because our function space spells out all Table I
  attributes (message type, aggregator, combine width, sampler, connect
  mode) we use a slightly wider fixed-length block so every attribute is
  represented exactly — the structure (one-hot per attribute plus a scaled
  width) is the same.

The **global node** (added to improve connectivity and inject input-data
information) carries graph properties — point count, neighbourhood size,
edge count, density — in the same feature width, zero-padded.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.message import MESSAGE_TYPES
from repro.nas.architecture import EffectiveOp
from repro.nas.ops import AGGREGATOR_TYPES, COMBINE_DIMS, SAMPLE_METHODS
from repro.nn.dtype import WIDE_DTYPE

__all__ = [
    "NODE_TYPES",
    "NODE_TYPE_DIM",
    "FUNCTION_DIM",
    "COST_FEATURE_DIM",
    "FEATURE_DIM",
    "encode_node_type",
    "encode_function",
    "encode_operation_node",
    "encode_global_node",
    "encode_terminal_node",
    "encode_cost_features",
]

#: Node kinds of the architecture graph, in one-hot order.
NODE_TYPES = ("input", "output", "global", "sample", "aggregate", "combine", "connect")
NODE_TYPE_DIM = len(NODE_TYPES)

# Function block layout: message type (7) + aggregator (4) + sampler (2)
# + connect-skip flag (1) + log-scaled combine width (1)
# + log-scaled input/output feature widths (2).
FUNCTION_DIM = len(MESSAGE_TYPES) + len(AGGREGATOR_TYPES) + len(SAMPLE_METHODS) + 1 + 1 + 2
# Device-independent resource quantities of the op (log-scaled dense FLOPs,
# irregular bytes and KNN pair-dims).  These are analytically computable
# properties of the operation -- akin to the FLOPs features common in
# hardware-aware NAS predictors -- and let a shallow GCN reach useful
# accuracy from a few hundred labelled architectures instead of the paper's
# 30K measured samples.  They carry no device information: the mapping from
# quantities to latency on a *specific* device is still learned.
COST_FEATURE_DIM = 3
#: Total per-node feature width.
FEATURE_DIM = NODE_TYPE_DIM + FUNCTION_DIM + COST_FEATURE_DIM

_MAX_LOG_COMBINE = math.log2(max(COMBINE_DIMS))
# Feature widths inside an architecture can exceed the largest combine
# candidate (e.g. 'full' messages on wide features); normalise with headroom.
_MAX_LOG_WIDTH = _MAX_LOG_COMBINE + 2.0


def encode_cost_features(flops: float, irregular_bytes: float, knn_pair_dims: float) -> np.ndarray:
    """Log-scaled resource quantities of one operation (see COST_FEATURE_DIM)."""
    if min(flops, irregular_bytes, knn_pair_dims) < 0:
        raise ValueError("resource quantities must be non-negative")
    return np.array(
        [
            math.log10(1.0 + flops) / 12.0,
            math.log10(1.0 + irregular_bytes) / 12.0,
            math.log10(1.0 + knn_pair_dims) / 12.0,
        ],
        dtype=WIDE_DTYPE,
    )


def encode_node_type(node_type: str) -> np.ndarray:
    """One-hot encoding of a node kind."""
    if node_type not in NODE_TYPES:
        raise ValueError(f"unknown node type '{node_type}', expected one of {NODE_TYPES}")
    vector = np.zeros(NODE_TYPE_DIM, dtype=WIDE_DTYPE)
    vector[NODE_TYPES.index(node_type)] = 1.0
    return vector


def encode_function(op: EffectiveOp) -> np.ndarray:
    """Encode the function attributes of one effective operation."""
    vector = np.zeros(FUNCTION_DIM, dtype=WIDE_DTYPE)
    offset = 0
    if op.kind == "aggregate":
        vector[offset + MESSAGE_TYPES.index(op.message_type)] = 1.0
    offset += len(MESSAGE_TYPES)
    if op.kind == "aggregate":
        vector[offset + AGGREGATOR_TYPES.index(op.aggregator)] = 1.0
    offset += len(AGGREGATOR_TYPES)
    if op.kind == "sample":
        vector[offset + SAMPLE_METHODS.index(op.sample_method)] = 1.0
    offset += len(SAMPLE_METHODS)
    if op.kind == "connect_skip":
        vector[offset] = 1.0
    offset += 1
    if op.kind == "combine":
        vector[offset] = math.log2(max(op.out_dim, 1)) / _MAX_LOG_COMBINE
    offset += 1
    # Feature widths entering and leaving the op: the per-op hardware cost
    # depends directly on them, so exposing them (log-scaled) lets the
    # predictor reason about cost without propagating widths across the
    # whole chain through only three GCN layers.
    vector[offset] = math.log2(max(op.in_dim, 1)) / _MAX_LOG_WIDTH
    vector[offset + 1] = math.log2(max(op.out_dim, 1)) / _MAX_LOG_WIDTH
    return vector


def encode_operation_node(op: EffectiveOp) -> np.ndarray:
    """Full feature vector of an operation node."""
    node_type = "connect" if op.kind == "connect_skip" else op.kind
    return np.concatenate([encode_node_type(node_type), encode_function(op)])


def encode_terminal_node(kind: str) -> np.ndarray:
    """Feature vector of the input or output node (zero function block)."""
    if kind not in ("input", "output"):
        raise ValueError("terminal nodes are 'input' or 'output'")
    return np.concatenate([encode_node_type(kind), np.zeros(FUNCTION_DIM)])


def encode_global_node(num_points: int, k: int, num_ops: int) -> np.ndarray:
    """Feature vector of the global node, carrying input-data properties."""
    if num_points <= 0 or k <= 0:
        raise ValueError("num_points and k must be positive")
    properties = np.zeros(FUNCTION_DIM, dtype=WIDE_DTYPE)
    properties[0] = math.log10(num_points) / 4.0  # ~[0.5, 1] for 1e2..1e4 points
    properties[1] = k / 64.0
    properties[2] = math.log10(num_points * k) / 6.0  # edge count
    properties[3] = min(k / num_points, 1.0)  # graph density
    properties[4] = num_ops / 16.0
    return np.concatenate([encode_node_type("global"), properties])
