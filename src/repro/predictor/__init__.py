"""GNN-based hardware performance predictor (paper Sec. III-D)."""

from repro.predictor.arch_graph import ArchitectureGraph, architecture_to_graph
from repro.predictor.batch import GraphBatch, collate_graphs, forward_graph_batch, predict_latencies
from repro.predictor.dataset import PredictorDataset, PredictorSample, generate_predictor_dataset
from repro.predictor.encoding import (
    FEATURE_DIM,
    FUNCTION_DIM,
    NODE_TYPE_DIM,
    NODE_TYPES,
    encode_function,
    encode_global_node,
    encode_node_type,
    encode_operation_node,
    encode_terminal_node,
)
from repro.predictor.evaluator import PredictorLatencyEvaluator
from repro.predictor.metrics import PredictorMetrics, compute_metrics, error_bound_accuracy, mape
from repro.predictor.model import LatencyPredictor, PredictorConfig
from repro.predictor.train import (
    PredictorTrainingConfig,
    PredictorTrainingHistory,
    evaluate_predictor,
    train_predictor,
)

__all__ = [
    "ArchitectureGraph",
    "architecture_to_graph",
    "GraphBatch",
    "collate_graphs",
    "forward_graph_batch",
    "predict_latencies",
    "PredictorDataset",
    "PredictorSample",
    "generate_predictor_dataset",
    "FEATURE_DIM",
    "FUNCTION_DIM",
    "NODE_TYPE_DIM",
    "NODE_TYPES",
    "encode_function",
    "encode_global_node",
    "encode_node_type",
    "encode_operation_node",
    "encode_terminal_node",
    "PredictorLatencyEvaluator",
    "PredictorMetrics",
    "compute_metrics",
    "error_bound_accuracy",
    "mape",
    "LatencyPredictor",
    "PredictorConfig",
    "PredictorTrainingConfig",
    "PredictorTrainingHistory",
    "evaluate_predictor",
    "train_predictor",
]
