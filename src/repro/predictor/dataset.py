"""Training data generation for the latency predictor.

The paper samples 30K random architectures from the design space and labels
them with measurements collected on each edge device (21K train / 9K
validation).  Here the labels come from the simulated on-device measurement
(the analytical model plus device-specific noise), which preserves the
property the paper reports: noisier devices (Raspberry Pi) yield noisier
labels and therefore higher predictor MAPE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.nas.architecture import Architecture
from repro.nas.design_space import DesignSpace
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.predictor.arch_graph import ArchitectureGraph, architecture_to_graph

__all__ = ["PredictorSample", "PredictorDataset", "generate_predictor_dataset"]


@dataclass(frozen=True)
class PredictorSample:
    """One labelled architecture."""

    architecture: Architecture
    graph: ArchitectureGraph
    latency_ms: float


@dataclass
class PredictorDataset:
    """A labelled set of architectures for one device."""

    device: str
    samples: list[PredictorSample]
    num_points: int
    k: int

    def __len__(self) -> int:
        return len(self.samples)

    def latencies(self) -> np.ndarray:
        """All labels as an array (milliseconds)."""
        return np.array([sample.latency_ms for sample in self.samples])

    def split(self, train_fraction: float, rng: np.random.Generator) -> tuple["PredictorDataset", "PredictorDataset"]:
        """Random train/validation split."""
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        indices = np.arange(len(self.samples))
        rng.shuffle(indices)
        cut = int(round(train_fraction * len(indices)))
        cut = min(max(cut, 1), len(indices) - 1)
        train = [self.samples[i] for i in indices[:cut]]
        val = [self.samples[i] for i in indices[cut:]]
        return (
            PredictorDataset(self.device, train, self.num_points, self.k),
            PredictorDataset(self.device, val, self.num_points, self.k),
        )


def generate_predictor_dataset(
    design_space: DesignSpace,
    device: DeviceSpec,
    num_samples: int,
    rng: np.random.Generator,
    num_points: int | None = None,
    k: int | None = None,
    num_classes: int | None = None,
    measurement_noise: bool = True,
    include_global_node: bool = True,
) -> PredictorDataset:
    """Sample random architectures and label them with (noisy) device latency.

    Args:
        design_space: Source of random architectures.
        device: Target device providing the latency labels.
        num_samples: Number of architectures to sample.
        rng: Random generator (architectures and measurement noise).
        num_points: Deployment cloud size (defaults to the design space's).
        k: Deployment neighbourhood size (defaults to the design space's).
        num_classes: Classifier classes (defaults to the design space's).
        measurement_noise: Whether to perturb labels with the device's
            measurement noise (as real measurements would be).
        include_global_node: Propagated to the graph abstraction.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    config = design_space.config
    num_points = num_points or config.num_points
    k = k or config.k
    num_classes = num_classes or config.num_classes
    samples: list[PredictorSample] = []
    seen: set[tuple] = set()
    with get_tracer().span("predictor.dataset.generate", device=device.name, num_samples=num_samples):
        while len(samples) < num_samples:
            architecture = design_space.random_architecture(rng)
            key = architecture.key()
            if key in seen:
                continue
            seen.add(key)
            workload = architecture.to_workload(num_points, k, num_classes)
            latency = estimate_latency(workload, device).total_ms
            get_metrics().count("hardware.profile.calls")
            if measurement_noise:
                noise = 1.0 + rng.normal(0.0, device.measurement_noise)
                latency = max(latency * noise, 1e-3)
            graph = architecture_to_graph(
                architecture, num_points=num_points, k=k, include_global_node=include_global_node
            )
            samples.append(PredictorSample(architecture=architecture, graph=graph, latency_ms=float(latency)))
    return PredictorDataset(device=device.name, samples=samples, num_points=num_points, k=k)
