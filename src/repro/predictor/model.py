"""The GNN-based hardware performance predictor (paper Sec. III-D).

Three GCN layers with sum aggregation followed by an MLP regress the
inference latency of a candidate architecture on one target device.  The
paper's dimensions (256/512/512 GCN, 256/128/1 MLP) are available through
:meth:`PredictorConfig.paper_scale`; the default configuration is smaller
because the architecture graphs only have a couple of dozen nodes and the
pure-numpy substrate favours compact models.

The predictor regresses ``log1p(latency_ms)`` internally — latencies span
four orders of magnitude across devices — and converts back to
milliseconds at the output, which stabilises MAPE training without changing
the reported metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.gcn import DenseGCN
from repro.nas.architecture import Architecture
from repro.nn.layers import MLP, Module
from repro.nn.tensor import Tensor, concatenate
from repro.predictor.arch_graph import ArchitectureGraph, architecture_to_graph
from repro.predictor.batch import predict_latencies
from repro.predictor.encoding import FEATURE_DIM

__all__ = ["PredictorConfig", "LatencyPredictor"]


@dataclass(frozen=True)
class PredictorConfig:
    """Hyper-parameters of the latency predictor."""

    gcn_dims: tuple[int, ...] = (64, 96, 96)
    mlp_dims: tuple[int, ...] = (64, 32)
    include_global_node: bool = True
    num_points: int = 1024
    k: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.gcn_dims) != 3:
            raise ValueError("the predictor uses exactly three GCN layers (paper Sec. III-D)")
        if not self.mlp_dims:
            raise ValueError("mlp_dims must not be empty")
        if self.num_points <= 0 or self.k <= 0:
            raise ValueError("num_points and k must be positive")

    @classmethod
    def paper_scale(cls, **overrides: object) -> "PredictorConfig":
        """The paper's full-size predictor (256/512/512 GCN, 256/128 MLP)."""
        defaults = dict(gcn_dims=(256, 512, 512), mlp_dims=(256, 128))
        defaults.update(overrides)
        return cls(**defaults)


class LatencyPredictor(Module):
    """GCN + MLP latency regressor for one target device."""

    def __init__(self, config: PredictorConfig | None = None):
        super().__init__()
        self.config = config or PredictorConfig()
        rng = np.random.default_rng(self.config.seed)
        self.gcn = DenseGCN((FEATURE_DIM, *self.config.gcn_dims), activation="relu", rng=rng)
        pooled_dim = 2 * self.config.gcn_dims[-1]
        self.mlp = MLP(
            [pooled_dim, *self.config.mlp_dims, 1],
            activation="leaky_relu",
            rng=rng,
        )
        # Normalisation of the regression target (log1p latency); set from the
        # training set by the trainer so the network fits a standardised value.
        self.target_mean = 0.0
        self.target_std = 1.0

    # ------------------------------------------------------------------ #
    def set_target_normalization(self, mean: float, std: float) -> None:
        """Set the (log-space) target normalisation constants."""
        if std <= 0:
            raise ValueError("target std must be positive")
        self.target_mean = float(mean)
        self.target_std = float(std)

    def forward_graph(self, graph: ArchitectureGraph) -> Tensor:
        """Predict the standardised log1p-latency for one architecture graph."""
        features = Tensor(graph.features)
        aggregation = graph.aggregation_matrix()
        node_embeddings = self.gcn(features, aggregation)
        # Sum pooling mirrors the additive structure of latency (total time is
        # the sum of per-op times); max pooling captures dominating ops.
        pooled = concatenate(
            [
                node_embeddings.sum(axis=0, keepdims=True),
                node_embeddings.max(axis=0, keepdims=True),
            ],
            axis=1,
        )
        return self.mlp(pooled).reshape(1)

    def forward(self, graph: ArchitectureGraph) -> Tensor:
        return self.forward_graph(graph)

    # ------------------------------------------------------------------ #
    def encode(self, architecture: Architecture) -> ArchitectureGraph:
        """Abstract an architecture with this predictor's deployment settings."""
        return architecture_to_graph(
            architecture,
            num_points=self.config.num_points,
            k=self.config.k,
            include_global_node=self.config.include_global_node,
        )

    def denormalize_to_ms(self, standardised: "float | np.ndarray") -> "np.floating | np.ndarray":
        """Map standardised log1p-latency network outputs to milliseconds.

        The single post-processing definition shared by the sequential and
        batched prediction paths — their bit-exact equivalence depends on
        applying the identical denormalisation and clamp.  Latency is
        strictly positive; the log prediction is clamped away from 0 so
        downstream ratios and objective terms stay well defined.
        """
        log_latency = standardised * self.target_std + self.target_mean
        return np.expm1(np.clip(log_latency, 1e-3, 30.0))

    def predict_from_graph(self, graph: ArchitectureGraph) -> float:
        """Predict the latency (in milliseconds) for an encoded graph."""
        return float(self.denormalize_to_ms(self.forward_graph(graph).item()))

    def predict_latency_ms(self, architecture: Architecture) -> float:
        """Predict the latency (in milliseconds) of an architecture."""
        return self.predict_from_graph(self.encode(architecture))

    def predict_many_graphs(self, graphs: list[ArchitectureGraph]) -> np.ndarray:
        """Latency predictions (ms) for several encoded graphs in one forward.

        The graphs are padded into one batch (see
        :mod:`repro.predictor.batch`) and scored with a single GCN + MLP
        forward; the result is bit-identical to mapping
        :meth:`predict_from_graph` over ``graphs``.
        """
        return predict_latencies(self, graphs)

    def predict_many(self, architectures: list[Architecture]) -> np.ndarray:
        """Vector of latency predictions for several architectures.

        Encoding stays per-architecture (memoised per operation), but the
        forward passes are fused into one batched evaluation.
        """
        return self.predict_many_graphs([self.encode(arch) for arch in architectures])
