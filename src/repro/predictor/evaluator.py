"""Latency evaluator backed by the trained GNN predictor.

This is the evaluator plugged into the search to make it hardware aware
without on-device measurement: queries cost milliseconds (the paper reports
millisecond-scale prediction on an RTX3080), so hundreds of candidates can
be scored per search without dominating the search time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nas.architecture import Architecture
from repro.nn.dtype import WIDE_DTYPE
from repro.predictor.model import LatencyPredictor

__all__ = ["PredictorLatencyEvaluator"]


@dataclass
class PredictorLatencyEvaluator:
    """Adapts a :class:`LatencyPredictor` to the search's evaluator interface."""

    predictor: LatencyPredictor
    query_cost_s: float = 0.01

    def evaluate(self, architecture: Architecture) -> float:
        """Predicted latency of ``architecture`` in milliseconds."""
        return float(self.predictor.predict_latency_ms(architecture))

    def evaluate_many(self, architectures: list[Architecture]) -> np.ndarray:
        """Batched predictions: one fused GCN+MLP forward for the whole list."""
        return np.asarray(self.predictor.predict_many(architectures), dtype=WIDE_DTYPE)
