"""Training loop of the latency predictor.

The paper trains the predictor for 250 epochs with MAPE loss on 30K
architectures labelled by on-device measurement.  The loop below follows
the same procedure at a configurable scale; internally the network
regresses a standardised log-latency (latencies span four orders of
magnitude across the devices), which keeps optimisation well conditioned,
and the reported metrics (MAPE, error-bound accuracy) are always computed
on the raw millisecond scale exactly as in the paper's Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.loss import huber_loss
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.predictor.dataset import PredictorDataset
from repro.predictor.metrics import PredictorMetrics, compute_metrics
from repro.predictor.model import LatencyPredictor

__all__ = [
    "PredictorTrainingConfig",
    "PredictorTrainingHistory",
    "train_predictor",
    "evaluate_predictor",
]


@dataclass(frozen=True)
class PredictorTrainingConfig:
    """Hyper-parameters of predictor training."""

    epochs: int = 60
    batch_size: int = 32
    learning_rate: float = 1e-2
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class PredictorTrainingHistory:
    """Loss/validation curves of one training run."""

    train_losses: list[float] = field(default_factory=list)
    val_mape: list[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        return len(self.train_losses)


def _log_targets(dataset: PredictorDataset) -> np.ndarray:
    return np.log1p(dataset.latencies())


def train_predictor(
    predictor: LatencyPredictor,
    train_dataset: PredictorDataset,
    val_dataset: PredictorDataset | None = None,
    config: PredictorTrainingConfig | None = None,
) -> PredictorTrainingHistory:
    """Train a latency predictor.

    Args:
        predictor: Model to train (modified in place; its target
            normalisation constants are set from the training labels).
        train_dataset: Labelled architectures for training.
        val_dataset: Optional validation set evaluated each epoch (raw MAPE).
        config: Training hyper-parameters.

    Returns:
        The training history (per-epoch loss and validation MAPE).
    """
    config = config or PredictorTrainingConfig()
    if len(train_dataset) == 0:
        raise ValueError("training dataset is empty")
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(predictor.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay)
    history = PredictorTrainingHistory()

    log_targets = _log_targets(train_dataset)
    mean = float(log_targets.mean())
    std = float(log_targets.std())
    predictor.set_target_normalization(mean, std if std > 1e-9 else 1.0)
    standardised = (log_targets - predictor.target_mean) / predictor.target_std
    samples = train_dataset.samples

    for _ in range(config.epochs):
        predictor.train()
        order = rng.permutation(len(samples))
        epoch_losses: list[float] = []
        for start in range(0, len(order), config.batch_size):
            batch_indices = order[start : start + config.batch_size]
            predictions = [predictor.forward_graph(samples[int(i)].graph) for i in batch_indices]
            targets = standardised[batch_indices]
            stacked = concatenate(predictions, axis=0)
            loss = huber_loss(stacked, Tensor(targets), delta=1.0)
            predictor.zero_grad()
            loss.backward()
            clip_grad_norm(predictor.parameters(), config.grad_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        history.train_losses.append(float(np.mean(epoch_losses)))
        if val_dataset is not None and len(val_dataset) > 0:
            history.val_mape.append(evaluate_predictor(predictor, val_dataset).mape)
    return history


def evaluate_predictor(predictor: LatencyPredictor, dataset: PredictorDataset) -> PredictorMetrics:
    """Evaluate a predictor on raw latencies: MAPE, bounded accuracy, ranking."""
    predictor.eval()
    predictions = []
    measured = []
    with no_grad():
        for sample in dataset.samples:
            predictions.append(predictor.predict_from_graph(sample.graph))
            measured.append(sample.latency_ms)
    predictor.train()
    return compute_metrics(np.array(predictions), np.array(measured))
