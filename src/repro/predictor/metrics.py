"""Evaluation metrics for the latency predictor (paper Fig. 8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.dtype import WIDE_DTYPE

__all__ = ["mape", "error_bound_accuracy", "PredictorMetrics", "compute_metrics"]


def mape(predicted: np.ndarray, measured: np.ndarray, eps: float = 1e-9) -> float:
    """Mean absolute percentage error (fraction, not percent)."""
    predicted = np.asarray(predicted, dtype=WIDE_DTYPE)
    measured = np.asarray(measured, dtype=WIDE_DTYPE)
    if predicted.shape != measured.shape:
        raise ValueError("predicted and measured must have the same shape")
    if predicted.size == 0:
        return 0.0
    return float(np.mean(np.abs(predicted - measured) / np.maximum(np.abs(measured), eps)))


def error_bound_accuracy(predicted: np.ndarray, measured: np.ndarray, bound: float = 0.10) -> float:
    """Fraction of predictions within ``bound`` relative error of the measurement.

    The paper reports >80% of predictions within a 10% error bound.
    """
    if bound <= 0:
        raise ValueError("bound must be positive")
    predicted = np.asarray(predicted, dtype=WIDE_DTYPE)
    measured = np.asarray(measured, dtype=WIDE_DTYPE)
    if predicted.size == 0:
        return 0.0
    relative = np.abs(predicted - measured) / np.maximum(np.abs(measured), 1e-9)
    return float(np.mean(relative <= bound))


@dataclass(frozen=True)
class PredictorMetrics:
    """Summary metrics of a trained predictor on one dataset."""

    mape: float
    bound_accuracy_10: float
    bound_accuracy_20: float
    spearman: float
    num_samples: int


def _spearman(predicted: np.ndarray, measured: np.ndarray) -> float:
    """Spearman rank correlation (the search mostly needs correct ordering)."""
    if predicted.size < 2:
        return 0.0
    rank_p = np.argsort(np.argsort(predicted)).astype(WIDE_DTYPE)
    rank_m = np.argsort(np.argsort(measured)).astype(WIDE_DTYPE)
    rank_p -= rank_p.mean()
    rank_m -= rank_m.mean()
    denom = np.sqrt((rank_p**2).sum() * (rank_m**2).sum())
    return float((rank_p * rank_m).sum() / denom) if denom > 0 else 0.0


def compute_metrics(predicted: np.ndarray, measured: np.ndarray) -> PredictorMetrics:
    """Compute the full metric set used by the Fig. 8 experiment."""
    predicted = np.asarray(predicted, dtype=WIDE_DTYPE)
    measured = np.asarray(measured, dtype=WIDE_DTYPE)
    return PredictorMetrics(
        mape=mape(predicted, measured),
        bound_accuracy_10=error_bound_accuracy(predicted, measured, 0.10),
        bound_accuracy_20=error_bound_accuracy(predicted, measured, 0.20),
        spearman=_spearman(predicted, measured),
        num_samples=int(predicted.size),
    )
