"""The unified ``repro`` command-line interface (see :mod:`repro.cli.main`)."""

from repro.cli.main import add_serve_arguments, build_parser, main

__all__ = ["add_serve_arguments", "build_parser", "main"]
