"""``repro``: the unified command-line entry point, built on the Workspace.

Subcommands mirror the pipeline stages::

    repro devices                 # list the registered device models
    repro backends                # list the registered compute backends
    repro profile  --device pi    # latency/memory breakdown of a preset
    repro predict  --device gpu   # train (or load) the latency predictor
    repro search   --device tx2   # run a laptop-scale hardware-aware search
    repro serve    --requests 64  # serve a synthetic stream, print telemetry
    repro report   --root runs/   # render a persisted observability run
    repro check    fast           # statically validate a genotype (repro.analysis)
    repro lint                    # enforce the repo invariants (AST linter)

Pass ``--root DIR`` to any stage command to persist artifacts in a
content-addressed store, so a repeated ``repro predict``/``repro search``
with the same flags loads the previous result instead of recomputing.  The
legacy ``repro-serve`` script forwards to ``repro serve``.

Global flags work before or after the subcommand: ``-v``/``--log-level``
control logging verbosity, and ``--trace`` records the run's span tree and
metrics (printed after the command; persisted into the artifact store when
``--root`` is set, and/or written as plain files via ``--trace-out DIR``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from repro.backends import backend_status, list_backends
from repro.experiments.common import ExperimentScale, format_table, load_benchmark_dataset
from repro.hardware.device import all_devices, list_devices
from repro.nas.latency_eval import list_latency_evaluators
from repro.nas.presets import device_acc_architecture, device_fast_architecture, dgcnn_architecture
from repro.nas.search import HGNASConfig
from repro.nas.visualize import render_architecture
from repro.nn.dtype import default_dtype
from repro.obs import (
    format_metrics,
    format_run,
    format_span_tree,
    get_metrics,
    get_tracer,
    list_runs,
    load_run,
    reset_observability,
    save_run,
    trace_span,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.serving.engine import AdmissionError, EngineConfig
from repro.utils.logging import set_verbosity
from repro.workspace import Workspace
from repro.workspace.store import ArtifactStore

__all__ = ["build_parser", "add_serve_arguments", "main"]

_PRESETS = {
    "dgcnn": lambda device: dgcnn_architecture(),
    "fast": lambda device: device_fast_architecture(device),
    "acc": lambda device: device_acc_architecture(device),
}


def _global_options() -> argparse.ArgumentParser:
    """Parent parser carrying the global flags.

    Attached to the root parser *and* every subparser so the flags work
    before or after the subcommand.  ``SUPPRESS`` defaults keep a
    subparser's (unset) copy from clobbering a value parsed by the root;
    read them with ``getattr(args, name, fallback)``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("global options")
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=argparse.SUPPRESS,
        help="increase log verbosity (-v: INFO, -vv: DEBUG)",
    )
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=argparse.SUPPRESS,
        help="explicit log level (overrides -v)",
    )
    group.add_argument(
        "--trace",
        action="store_true",
        default=argparse.SUPPRESS,
        help="record spans/metrics and print the trace after the command",
    )
    group.add_argument(
        "--trace-out",
        metavar="DIR",
        default=argparse.SUPPRESS,
        help="also write spans.jsonl/metrics.json to DIR (implies --trace)",
    )
    return parent


def _add_common_arguments(parser: argparse.ArgumentParser, default_device: str = "jetson-tx2") -> None:
    parser.add_argument(
        "--device",
        default=default_device,
        help=f"target device ({', '.join(list_devices())} or aliases)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="artifact-store directory; repeated runs with the same flags reuse persisted results",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            f"compute backend for kernel primitives ({', '.join(list_backends())}; "
            "default: the process-wide active backend)"
        ),
    )


def _print_store_stats(workspace: Workspace) -> None:
    stats = workspace.cache_stats()
    location = stats["root"] or "memory-only"
    print(f"artifact store: {stats['hits']} hits, {stats['misses']} misses ({location})")


# ---------------------------------------------------------------------- #
# repro devices
# ---------------------------------------------------------------------- #
def _cmd_devices(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": device.name,
            "display": device.display_name,
            "power_w": device.power_watts,
            "memory_mb": device.available_memory_mb,
            "noise": device.measurement_noise,
            "round_trip_s": device.measurement_round_trip_s,
        }
        for device in all_devices()
    ]
    print(format_table(rows))
    print(f"\nlatency oracles: {', '.join(list_latency_evaluators())}")
    return 0


# ---------------------------------------------------------------------- #
# repro backends
# ---------------------------------------------------------------------- #
def _cmd_backends(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": row["name"],
            "available": "yes" if row["available"] else "no",
            "active": "*" if row["active"] else "",
            "fused": "yes" if row["fused_dispatch"] else "no",
            "description": row["description"],
        }
        for row in backend_status()
    ]
    print(format_table(rows))
    print("\nselect per run with --backend on serve/search/profile")
    return 0


# ---------------------------------------------------------------------- #
# repro profile
# ---------------------------------------------------------------------- #
def _cmd_profile(args: argparse.Namespace) -> int:
    workspace = Workspace(device=args.device, backend=args.backend)
    architecture = _PRESETS[args.arch](workspace.device.name)
    profile = workspace.profile(
        architecture, num_points=args.num_points, k=args.k, num_classes=args.num_classes
    )
    print(f"== {profile.workload or args.arch} on {workspace.device.display_name} ==")
    print(f"total latency : {profile.total_latency_ms:.2f} ms")
    print(f"peak memory   : {profile.peak_memory_mb:.1f} MB (OOM: {'yes' if profile.out_of_memory else 'no'})")
    rows = [
        {"category": category, "latency_ms": ms, "fraction": profile.category_fractions[category]}
        for category, ms in profile.category_ms.items()
    ]
    print(format_table(rows))
    return 0


# ---------------------------------------------------------------------- #
# repro predict
# ---------------------------------------------------------------------- #
def _cmd_predict(args: argparse.Namespace) -> int:
    workspace = Workspace(device=args.device, root=args.root)
    bundle = workspace.train_predictor(
        num_samples=args.num_samples, epochs=args.epochs, seed=args.seed, fresh=args.fresh
    )
    print(f"latency predictor for {bundle.device}:")
    print(
        format_table(
            [
                {
                    "mape": bundle.metrics.mape,
                    "within_10pct": bundle.metrics.bound_accuracy_10,
                    "within_20pct": bundle.metrics.bound_accuracy_20,
                    "rank_corr": bundle.metrics.spearman,
                    "val_samples": bundle.metrics.num_samples,
                }
            ]
        )
    )
    example = dgcnn_architecture()
    print(f"DGCNN predicted latency: {bundle.predictor.predict_latency_ms(example):.2f} ms")
    _print_store_stats(workspace)
    return 0


# ---------------------------------------------------------------------- #
# repro search
# ---------------------------------------------------------------------- #
def _cmd_search(args: argparse.Namespace) -> int:
    workspace = Workspace(device=args.device, root=args.root, backend=args.backend)
    scale = ExperimentScale(
        num_classes=args.classes,
        samples_per_class=args.samples_per_class,
        num_points=args.points,
        seed=args.seed,
    )
    train_set, val_set = load_benchmark_dataset(scale)
    config = HGNASConfig(
        num_positions=args.num_positions,
        num_classes=train_set.num_classes,
        population_size=args.population,
        function_iterations=args.function_iterations,
        operation_iterations=args.operation_iterations,
        function_epochs=args.function_epochs,
        operation_epochs=args.operation_epochs,
        seed=args.seed,
    )
    result = workspace.search(
        train_set,
        val_set,
        config=config,
        latency_oracle=args.oracle,
        seed=args.seed,
        fresh=args.fresh,
        resume=args.resume,
    )
    print(render_architecture(result.best_architecture, title=f"{workspace.device.display_name} design"))
    print(f"objective score      : {result.best_score:.3f}")
    print(f"ws accuracy          : {result.best_accuracy:.3f}")
    print(f"predicted latency    : {result.best_latency_ms:.2f} ms")
    print(f"search time (virtual): {result.search_time_s / 3600:.2f} GPU-hours equivalent")
    _print_store_stats(workspace)
    return 0


# ---------------------------------------------------------------------- #
# repro serve
# ---------------------------------------------------------------------- #
def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serve-stream flags (shared with the legacy ``repro-serve``)."""
    _add_common_arguments(parser)
    _add_backend_argument(parser)
    parser.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default="float32",
        help="compute dtype for the deployed model and request stream (default: float32)",
    )
    parser.add_argument("--requests", type=int, default=64, help="number of synthetic requests")
    parser.add_argument("--num-points", type=int, default=64, help="points per request cloud")
    parser.add_argument("--num-classes", type=int, default=10, help="classifier output classes")
    parser.add_argument("--batch-size", type=int, default=8, help="micro-batch size")
    parser.add_argument(
        "--repeat-every", type=int, default=4, help="reuse a previous cloud every Nth request (0 disables)"
    )
    parser.add_argument("--slo-ms", type=float, default=None, help="per-request latency SLO on the target device")
    parser.add_argument("--no-cache", action="store_true", help="disable result and edge caches")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 serves through the multi-process pool (default: 1, in-process)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="with --workers, also serve the request stream over the JSON-lines TCP frontend "
        "on this port (0 binds an ephemeral port)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request deadline in seconds for the worker pool (default: 30)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        help="with --workers, automatic restarts per crashed worker slot before the "
        "pool degrades to the survivors (default: 2)",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    with default_dtype(args.dtype):
        return _serve_stream(args)


def _serve_stream(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    workspace = Workspace(device=args.device, root=args.root, backend=args.backend)
    architecture = device_fast_architecture(workspace.device.name)
    deployed = workspace.deploy(
        architecture,
        num_classes=args.num_classes,
        name=f"{architecture.name}-demo",
        k=8,
        slo_ms=args.slo_ms,
    )
    cache_capacity = 0 if args.no_cache else 512
    engine_config = EngineConfig(
        max_batch_size=args.batch_size,
        result_cache_capacity=cache_capacity,
        edge_cache_capacity=cache_capacity,
    )

    rng = np.random.default_rng(args.seed)
    clouds: list[np.ndarray] = []
    for index in range(args.requests):
        if args.repeat_every and clouds and index % args.repeat_every == 0:
            clouds.append(clouds[int(rng.integers(0, len(clouds)))])
        else:
            clouds.append(rng.standard_normal((args.num_points, 3)))

    if args.workers > 1:
        return _serve_pool_stream(args, workspace, deployed.name, engine_config, clouds)

    report = workspace.serve(clouds, name=deployed.name, config=engine_config)
    print(
        f"served {len(report.results)} requests ({args.dtype}) on "
        f"{workspace.device.display_name} via '{deployed.name}'"
    )
    print(report.engine.format_report())
    return 0


def _serve_pool_stream(
    args: argparse.Namespace,
    workspace: Workspace,
    name: str,
    engine_config: EngineConfig,
    clouds: list[np.ndarray],
) -> int:
    """Serve the synthetic stream through the multi-process worker pool."""
    from repro.serving.pool import PoolConfig

    pool_config = PoolConfig(
        workers=args.workers,
        request_timeout_s=args.request_timeout,
        max_restarts=args.max_restarts,
        shared_cache=not args.no_cache,
        dtype=args.dtype,
    )
    if args.port is None:
        report = workspace.serve_pool(clouds, name=name, config=engine_config, pool_config=pool_config)
        print(
            f"served {len(report.results)} requests ({args.dtype}) on "
            f"{workspace.device.display_name} via '{name}' across {args.workers} workers"
        )
        print(report.formatted)
        return 0
    return _serve_pool_tcp(args, workspace, name, engine_config, pool_config, clouds)


def _serve_pool_tcp(
    args: argparse.Namespace,
    workspace: Workspace,
    name: str,
    engine_config: EngineConfig,
    pool_config,
    clouds: list[np.ndarray],
) -> int:
    """Drive the request stream over the pool's JSON-lines TCP frontend."""
    import asyncio
    import dataclasses

    from repro.serving.frontend import AsyncServingFrontend, request_over_tcp
    from repro.serving.pool import WorkerPoolEngine

    if workspace.backend is not None and engine_config.backend is None:
        engine_config = dataclasses.replace(engine_config, backend=workspace.backend)

    async def drive(pool) -> list[dict]:
        frontend = AsyncServingFrontend(pool)
        host, port = await frontend.start(port=args.port)
        print(f"serving frontend listening on {host}:{port}")
        requests = [{"model": name, "points": cloud.tolist()} for cloud in clouds]
        try:
            return await request_over_tcp(host, port, requests)
        finally:
            await frontend.stop()

    with WorkerPoolEngine(workspace.registry, engine_config, pool_config, root=workspace.store.root) as pool:
        responses = asyncio.run(drive(pool))
        pool.shutdown()
        served = sum(1 for response in responses if response.get("ok"))
        print(
            f"TCP frontend served {served}/{len(responses)} requests ({args.dtype}) "
            f"via '{name}' across {args.workers} workers"
        )
        print(pool.format_report())
    return 0 if served == len(responses) else 1


# ---------------------------------------------------------------------- #
# repro report
# ---------------------------------------------------------------------- #
def _cmd_report(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.root)
    if args.list:
        runs = list_runs(store)
        if not runs:
            print("no observability runs in this store; run a stage with --trace first")
            return 0
        for key, meta in runs:
            print(f"{key}  label={meta.get('label')}  spans={meta.get('num_spans', 0)}")
        return 0
    key, meta = load_run(store, args.key)
    print(f"key: {key}")
    print(format_run(meta))
    return 0


# ---------------------------------------------------------------------- #
# repro check
# ---------------------------------------------------------------------- #
def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.validate import validate_genotype
    from repro.utils.serialization import load_json

    if args.genotype in _PRESETS:
        device = args.device or "jetson-tx2"
        genotype = _PRESETS[args.genotype](device).to_dict()
    else:
        path = pathlib.Path(args.genotype)
        if not path.is_file():
            raise ValueError(
                f"'{args.genotype}' is neither a preset ({', '.join(sorted(_PRESETS))}) "
                "nor a genotype JSON file"
            )
        genotype = load_json(path)
    report = validate_genotype(
        genotype,
        num_points=args.num_points,
        k=args.k,
        num_classes=args.num_classes,
        embed_dim=args.embed_dim,
    )
    if report.diagnostics:
        print(report.format())
    if report.signature is not None:
        print(report.signature.describe())
    if report.ok:
        print("genotype OK" + (f" ({len(report.warnings)} warning(s))" if report.warnings else ""))
        return 0
    print(f"genotype INVALID ({len(report.errors)} error(s))")
    return 1


# ---------------------------------------------------------------------- #
# repro lint
# ---------------------------------------------------------------------- #
def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import ALL_RULES, default_lint_root, format_violations, lint_paths

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:20s} {rule.description}")
        return 0
    rules = None
    if args.rule:
        known = {rule.name: rule for rule in ALL_RULES}
        unknown = [name for name in args.rule if name not in known]
        if unknown:
            raise ValueError(f"unknown rule(s) {unknown}; available: {sorted(known)}")
        rules = [known[name]() for name in args.rule]
    paths = [pathlib.Path(p) for p in args.paths] or None
    violations = lint_paths(paths, rules=rules)
    print(format_violations(violations))
    if not violations:
        scope = ", ".join(str(p) for p in paths) if paths else str(default_lint_root())
        print(f"checked: {scope}")
    return 1 if violations else 0


# ---------------------------------------------------------------------- #
# Parser / dispatch
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    global_options = _global_options()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HGNAS reproduction pipeline: profile, predict, search and serve point-cloud GNNs.",
        parents=[global_options],
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str) -> argparse.ArgumentParser:
        return subparsers.add_parser(name, help=help_text, parents=[global_options])

    devices = add_command("devices", "list registered devices and latency oracles")
    devices.set_defaults(func=_cmd_devices)

    backends = add_command("backends", "list registered compute backends")
    backends.set_defaults(func=_cmd_backends)

    # Profiling is deterministic and cheap: no --root/--seed, unlike the
    # stage commands that persist artifacts.
    profile = add_command("profile", "latency/memory breakdown of a preset architecture")
    profile.add_argument(
        "--device",
        default="jetson-tx2",
        help=f"target device ({', '.join(list_devices())} or aliases)",
    )
    profile.add_argument("--arch", choices=sorted(_PRESETS), default="fast", help="preset architecture")
    profile.add_argument("--num-points", type=int, default=None, help="points per cloud (default: 1024)")
    profile.add_argument("--k", type=int, default=None, help="KNN neighbourhood size (default: 20)")
    profile.add_argument("--num-classes", type=int, default=None, help="classifier classes (default: 40)")
    _add_backend_argument(profile)
    profile.set_defaults(func=_cmd_profile)

    predict = add_command("predict", "train or load the GNN latency predictor")
    _add_common_arguments(predict)
    predict.add_argument("--num-samples", type=int, default=150, help="sampled architectures to label")
    predict.add_argument("--epochs", type=int, default=30, help="predictor training epochs")
    predict.add_argument("--fresh", action="store_true", help="retrain even when a cached artifact exists")
    predict.set_defaults(func=_cmd_predict)

    search = add_command("search", "run a laptop-scale hardware-aware search")
    _add_common_arguments(search)
    _add_backend_argument(search)
    search.add_argument(
        "--oracle",
        default="oracle",
        help=f"latency oracle ({', '.join(list_latency_evaluators())})",
    )
    search.add_argument("--num-positions", type=int, default=8, help="design-space positions")
    search.add_argument("--population", type=int, default=6, help="evolutionary population size")
    search.add_argument("--function-iterations", type=int, default=2, help="stage-1 EA iterations")
    search.add_argument("--operation-iterations", type=int, default=4, help="stage-2 EA iterations")
    search.add_argument("--function-epochs", type=int, default=1, help="stage-1 supernet epochs")
    search.add_argument("--operation-epochs", type=int, default=1, help="stage-2 supernet epochs")
    search.add_argument("--classes", type=int, default=6, help="synthetic benchmark classes")
    search.add_argument("--samples-per-class", type=int, default=6, help="samples per class")
    search.add_argument("--points", type=int, default=32, help="points per training cloud")
    search.add_argument("--fresh", action="store_true", help="re-search even when a cached artifact exists")
    search.add_argument(
        "--resume",
        action="store_true",
        help="resume from the committed search checkpoint left by an interrupted run "
        "(bit-identical to an uninterrupted search)",
    )
    search.set_defaults(func=_cmd_search)

    serve = add_command("serve", "serve a synthetic request stream, print telemetry")
    add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    report = add_command("report", "render a persisted observability run from an artifact store")
    report.add_argument("--root", required=True, help="artifact-store directory holding obs runs")
    report.add_argument("--key", default=None, help="run key to render (default: the most recent run)")
    report.add_argument("--list", action="store_true", help="list persisted runs instead of rendering one")
    report.set_defaults(func=_cmd_report)

    check = add_command("check", "statically validate an architecture genotype (shape/dtype checker)")
    check.add_argument(
        "genotype",
        help=f"preset name ({', '.join(sorted(_PRESETS))}) or path to a genotype JSON file",
    )
    check.add_argument("--device", default=None, help="device used to resolve device-tuned presets")
    check.add_argument("--num-points", type=int, default=None, help="cloud size to check against (default: symbolic)")
    check.add_argument("--k", type=int, default=None, help="neighbourhood size (default: 20)")
    check.add_argument("--num-classes", type=int, default=None, help="classifier classes (default: 40)")
    check.add_argument("--embed-dim", type=int, default=None, help="classifier embedding width (default: 64)")
    check.set_defaults(func=_cmd_check)

    lint = add_command("lint", "run the repo-invariant AST linter over source files")
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable; see --list-rules)",
    )
    lint.add_argument("--list-rules", action="store_true", help="list available rules and exit")
    lint.set_defaults(func=_cmd_lint)

    return parser


def _apply_verbosity(args: argparse.Namespace) -> None:
    log_level = getattr(args, "log_level", None)
    verbose = getattr(args, "verbose", 0) or 0
    if log_level:
        set_verbosity(log_level.upper())
    elif verbose >= 2:
        set_verbosity("DEBUG")
    elif verbose == 1:
        set_verbosity("INFO")


def _emit_trace(args: argparse.Namespace) -> None:
    """Print this run's trace; persist it when --root / --trace-out are set."""
    tracer = get_tracer()
    metrics = get_metrics()
    print("\n== trace ==")
    print(format_span_tree(tracer))
    if len(metrics):
        print("-- metrics --")
        print(format_metrics(metrics))
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        out_dir = pathlib.Path(trace_out)
        write_spans_jsonl(out_dir / "spans.jsonl", tracer)
        write_metrics_json(out_dir / "metrics.json", metrics)
        print(f"trace files written to {out_dir}")
    root = getattr(args, "root", None)
    if root is not None and args.command != "report":
        key = save_run(ArtifactStore(root), label=args.command)
        print(f"obs run saved under key {key} (render with: repro report --root {root})")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_verbosity(args)
    tracing = bool(getattr(args, "trace", False)) or getattr(args, "trace_out", None) is not None
    try:
        if not tracing:
            return args.func(args)
        # One trace per CLI invocation: stale spans/metrics from in-process
        # callers (tests, notebooks) would otherwise pollute the report.
        reset_observability()
        try:
            with trace_span(f"cli.{args.command}"):
                return args.func(args)
        finally:
            # Emitted even when the command fails: spans are exception-safe,
            # so a partial trace of the failed run still prints/persists.
            _emit_trace(args)
    except (KeyError, ValueError, AdmissionError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
