"""Allow ``python -m repro.cli ...`` to run the unified CLI."""

from repro.cli.main import main

raise SystemExit(main())
