"""Loss functions.

The predictor in HGNAS is trained with mean absolute percentage error
(MAPE), while the classification models use cross-entropy; both are provided
here along with common regression losses.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "mae_loss",
    "mape_loss",
    "huber_loss",
    "accuracy",
    "balanced_accuracy",
]


def _check_labels(logits: Tensor, targets: np.ndarray) -> np.ndarray:
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1:
        raise ValueError(f"targets must be a 1-D class-index array, got shape {targets.shape}")
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("logits and targets batch sizes differ")
    if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
        raise ValueError("targets contain out-of-range class indices")
    return targets


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits and integer class labels."""
    logits = as_tensor(logits)
    targets = _check_labels(logits, targets)
    log_probs = F.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return -picked.mean()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood from log-probabilities and class labels."""
    log_probs = as_tensor(log_probs)
    targets = _check_labels(log_probs, targets)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return ((prediction - target) ** 2).mean()


def mae_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean absolute error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def mape_loss(prediction: Tensor, target: Tensor | np.ndarray, eps: float = 1e-8) -> Tensor:
    """Mean absolute percentage error, the predictor's training loss.

    ``MAPE = mean(|pred - target| / max(|target|, eps))``
    """
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    denom = Tensor(np.maximum(np.abs(target.data), eps))
    return ((prediction - target).abs() / denom).mean()


def huber_loss(prediction: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = 0.5 * diff**2
    linear = delta * abs_diff - 0.5 * delta**2
    mask = (abs_diff.data <= delta).astype(abs_diff.data.dtype)
    return (quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)).mean()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Overall accuracy (fraction of correct argmax predictions)."""
    logits = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.shape[0] == 0:
        return 0.0
    predictions = logits.argmax(axis=-1)
    return float((predictions == targets).mean())


def balanced_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Class-balanced (mean per-class) accuracy — the paper's ``mAcc``."""
    logits = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.shape[0] == 0:
        return 0.0
    predictions = logits.argmax(axis=-1)
    per_class = []
    for cls in np.unique(targets):
        mask = targets == cls
        per_class.append(float((predictions[mask] == cls).mean()))
    return float(np.mean(per_class))
