"""Functional neural-network operations built on :class:`repro.nn.Tensor`."""

from __future__ import annotations

import numpy as np

from repro.backends import active_backend
from repro.nn.dtype import get_default_dtype
from repro.nn.tensor import Tensor, apply_op, as_tensor

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "matmul",
    "linear",
    "one_hot",
    "embedding_lookup",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    return as_tensor(x).leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.

    Args:
        x: Input tensor.
        p: Probability of dropping an element (``0 <= p < 1``).
        rng: Random generator used to draw the mask.
        training: If ``False`` the input is returned unchanged.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def matmul(x: Tensor, weight: Tensor) -> Tensor:
    """Dense product ``x @ weight`` through the active compute backend.

    The ``Linear`` hot path: the 2-D x 2-D case (and the batched 3-D x 2-D
    case) dispatches forward and backward products to
    :func:`repro.backends.active_backend`, so e.g. the ``numpy-blocked``
    backend runs every dense layer cache-blocked.  Other shapes fall back to
    :meth:`Tensor.__matmul__`, whose semantics this op mirrors exactly.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    if x.ndim < 2 or weight.ndim != 2:
        return x @ weight
    backend = active_backend()
    out = backend.matmul(x.data, weight.data)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray | None]:
        dx = backend.matmul(grad, weight.data.T) if x.requires_grad else None
        if not weight.requires_grad:
            return [dx, None]
        if x.ndim == 2:
            dw = backend.matmul(x.data.T, grad)
        else:
            # Batched input: contract per batch; apply_op unbroadcasts the
            # leading dimensions onto the 2-D weight (summing over them).
            dw = np.swapaxes(x.data, -1, -2) @ grad
        return [dx, dw]

    return apply_op(out, (x, weight), backward_fn)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight + bias``."""
    out = matmul(x, weight)
    if bias is not None:
        out = out + bias
    return out


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a ``(len(indices), num_classes)`` one-hot float array."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError(f"one_hot expects a 1-D index array, got shape {indices.shape}")
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError("one_hot indices out of range")
    out = np.zeros((indices.shape[0], num_classes), dtype=get_default_dtype())
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Differentiable row lookup ``table[indices]``."""
    backend = active_backend()
    table = as_tensor(table)
    indices = np.asarray(indices, dtype=np.int64)
    data = backend.gather(table.data, indices)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        full = np.zeros_like(table.data)
        backend.scatter_add(full, indices, grad)
        return [full]

    return apply_op(data, (table,), backward_fn)
