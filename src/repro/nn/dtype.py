"""Compute dtype policy.

HGNAS's value proposition is latency on edge hardware, so the whole stack
computes in **float32 by default**: half the memory bandwidth of float64,
and the precision every modelled edge device (and the paper's PyTorch
baselines) actually uses.  The policy is a single module-level default that
every dtype decision in the code base consults instead of hardcoding a
float width:

* :class:`~repro.nn.tensor.Tensor` casts fresh (non-float) data to the
  default dtype but *preserves* the dtype of floating-point arrays it is
  handed, so a pipeline stays in whatever precision its inputs carry.
* Parameter initialisation (:mod:`repro.nn.init`) draws in the default
  dtype, so models built under ``default_dtype("float64")`` are float64
  end to end.
* Data entry points (datasets, the serving engine) coerce raw inputs to
  the default dtype; interior ops (graph construction, scatter, autograd)
  follow their input's dtype.

Bit-exact float64 runs — e.g. reproducing the PR-3 bit-identity
benchmarks at the old precision — opt in with::

    with default_dtype("float64"):
        ...  # build data + models + run here

Only floating dtypes are accepted; integer index arrays are unaffected by
the policy.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

import numpy as np

__all__ = [
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "resolve_dtype",
    "as_float_array",
    "WIDE_DTYPE",
]

_DEFAULT_DTYPE = np.dtype(np.float32)

#: The wide accumulator dtype for *scalar bookkeeping*, not tensor compute:
#: metric/telemetry accumulation, fitness and ranking statistics, content
#: hashing and cache keys — places that must match Python ``float``
#: arithmetic bit-for-bit regardless of the compute policy above.  This is
#: the only sanctioned float64 spelling outside this module (the
#: ``dtype-literal`` lint rule flags raw ``np.float64`` literals).
WIDE_DTYPE = np.dtype(np.float64)


def _coerce_dtype(dtype: str | type | np.dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(f"default dtype must be a floating dtype, got {resolved}")
    return resolved


def get_default_dtype() -> np.dtype:
    """Return the current default floating dtype (float32 unless changed)."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype: str | type | np.dtype) -> None:
    """Set the process-wide default floating dtype (e.g. ``"float64"``)."""
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _coerce_dtype(dtype)


@contextlib.contextmanager
def default_dtype(dtype: str | type | np.dtype) -> Iterator[np.dtype]:
    """Temporarily change the default floating dtype.

    Tensors, parameters and datasets *created* inside the context use the
    given dtype; compute on them keeps following their stored dtype after
    the context exits.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _coerce_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        _DEFAULT_DTYPE = previous


def resolve_dtype(data: Any = None, dtype: str | type | np.dtype | None = None) -> np.dtype:
    """Resolve the dtype an operation should compute in.

    An explicit ``dtype`` wins; otherwise a floating-point numpy array (or
    scalar) keeps its own dtype; anything else (int/bool arrays, Python
    scalars, lists, ``None``) gets the module default.
    """
    if dtype is not None:
        return _coerce_dtype(dtype)
    if isinstance(data, (np.ndarray, np.generic)) and data.dtype.kind == "f":
        return data.dtype
    return _DEFAULT_DTYPE


def as_float_array(data: Any, dtype: str | type | np.dtype | None = None) -> np.ndarray:
    """Coerce ``data`` to a floating numpy array under the dtype policy.

    Float arrays pass through without copying; integer/bool arrays and
    fresh Python data are cast to the default dtype (or the explicit
    ``dtype``).
    """
    return np.asarray(data, dtype=resolve_dtype(data, dtype))
