"""Neural-network modules (layers) built on the autograd engine.

The API intentionally mirrors a small subset of ``torch.nn``: modules hold
named parameters and sub-modules, expose ``parameters()`` /
``state_dict()`` / ``load_state_dict()``, and switch behaviour with
``train()`` / ``eval()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "MLP",
    "BatchNorm1d",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "Identity",
]


class Module:
    """Base class for all layers and models.

    Sub-classes register parameters by assigning :class:`Tensor` objects
    with ``requires_grad=True`` to attributes, and register sub-modules by
    assigning :class:`Module` objects.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -------------------------------------------------------------- #
    # Attribute-based registration
    # -------------------------------------------------------------- #
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        """Explicitly register ``tensor`` as a learnable parameter."""
        tensor.requires_grad = True
        self._parameters[name] = tensor
        object.__setattr__(self, name, tensor)
        return tensor

    def add_module(self, name: str, module: "Module") -> "Module":
        """Explicitly register a sub-module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)
        return module

    # -------------------------------------------------------------- #
    # Traversal
    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(name, parameter)`` pairs for this module and children."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Tensor]:
        """Return all learnable parameters of this module and children."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of learnable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # -------------------------------------------------------------- #
    # Mode / gradient management
    # -------------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -------------------------------------------------------------- #
    # (De)serialization
    # -------------------------------------------------------------- #
    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters(prefix)}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values by dotted name.

        Args:
            state: Mapping from parameter name to array.
            strict: If ``True`` raise when names are missing or unexpected.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if name in state:
                value = np.asarray(state[name], dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                    )
                param.data = value.copy()

    # -------------------------------------------------------------- #
    # Forward
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        """Compute the module output.  Must be overridden."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.kaiming_uniform((in_features, out_features), rng), requires_grad=True)
        if bias:
            self.bias = Tensor(init.zeros((out_features,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    """LeakyReLU activation module."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Dropout(Module):
    """Inverted dropout with its own random stream."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class BatchNorm1d(Module):
    """Batch normalisation over the leading (batch/node) dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(init.ones((num_features,)), requires_grad=True)
        self.bias = Tensor(init.zeros((num_features,)), requires_grad=True)
        self.running_mean = init.zeros((num_features,))
        self.running_var = init.ones((num_features,))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects input of shape (N, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = ((x - mean) ** 2).mean(axis=0, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            )
            normalised = (x - mean) / (var + self.eps) ** 0.5
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
            normalised = (x - mean) / (var + self.eps) ** 0.5
        return normalised * self.weight + self.bias


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Tensor(init.ones((num_features,)), requires_grad=True)
        self.bias = Tensor(init.zeros((num_features,)), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = ((x - mean) ** 2).mean(axis=-1, keepdims=True)
        normalised = (x - mean) / (var + self.eps) ** 0.5
        return normalised * self.weight + self.bias


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        """Append a module to the chain."""
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x


class MLP(Module):
    """Multi-layer perceptron with configurable hidden dimensions.

    Args:
        dims: Sequence of layer widths, e.g. ``[in, hidden1, hidden2, out]``.
        activation: ``"relu"`` or ``"leaky_relu"`` applied between layers.
        final_activation: Whether to apply the activation after the last
            linear layer as well.
        dropout: Dropout probability between layers (0 disables).
        batch_norm: Whether to insert ``BatchNorm1d`` after hidden layers.
        rng: Generator used for weight initialisation and dropout masks.
    """

    def __init__(
        self,
        dims: Iterable[int],
        activation: str = "relu",
        final_activation: bool = False,
        dropout: float = 0.0,
        batch_norm: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        dims = list(dims)
        if len(dims) < 2:
            raise ValueError("MLP requires at least an input and an output dimension")
        rng = rng if rng is not None else np.random.default_rng(0)
        if activation not in ("relu", "leaky_relu"):
            raise ValueError(f"unsupported activation '{activation}'")
        self.dims = dims
        layers = Sequential()
        for i in range(len(dims) - 1):
            layers.append(Linear(dims[i], dims[i + 1], rng=rng))
            is_last = i == len(dims) - 2
            if not is_last or final_activation:
                if batch_norm:
                    layers.append(BatchNorm1d(dims[i + 1]))
                if activation == "relu":
                    layers.append(ReLU())
                else:
                    layers.append(LeakyReLU(0.2))
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
        self.layers = layers

    def forward(self, x: Tensor) -> Tensor:
        return self.layers(x)
