"""A compact numpy autograd engine with layers, losses and optimisers.

This package stands in for PyTorch in the HGNAS reproduction.  It provides
exactly the machinery the paper's models need: reverse-mode autodiff
(:mod:`repro.nn.tensor`), layers (:mod:`repro.nn.layers`), optimisers
(:mod:`repro.nn.optim`), losses (:mod:`repro.nn.loss`) and learning-rate
schedules (:mod:`repro.nn.scheduler`).
"""

from repro.nn import functional, init
from repro.nn.dtype import (
    as_float_array,
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.nn.layers import (
    MLP,
    BatchNorm1d,
    Dropout,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.loss import (
    accuracy,
    balanced_accuracy,
    cross_entropy,
    huber_loss,
    mae_loss,
    mape_loss,
    mse_loss,
    nll_loss,
)
from repro.nn.optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from repro.nn.scheduler import (
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    StepLR,
    WarmupCosineLR,
)
from repro.nn.tensor import Tensor, apply_op, as_tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "functional",
    "init",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "resolve_dtype",
    "as_float_array",
    "Tensor",
    "as_tensor",
    "apply_op",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "Module",
    "Linear",
    "MLP",
    "BatchNorm1d",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "WarmupCosineLR",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "mae_loss",
    "mape_loss",
    "huber_loss",
    "accuracy",
    "balanced_accuracy",
]
