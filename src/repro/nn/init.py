"""Parameter initialisation schemes."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.dtype import get_default_dtype

__all__ = [
    "zeros",
    "ones",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (in the default dtype)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (in the default dtype)."""
    return np.ones(shape, dtype=get_default_dtype())


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(get_default_dtype(), copy=False)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in/fan-out for a weight of the given shape."""
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0) -> np.ndarray:
    """He/Kaiming uniform initialisation for (leaky-)ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0) -> np.ndarray:
    """He/Kaiming normal initialisation for (leaky-)ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope**2))
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)
