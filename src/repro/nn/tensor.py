"""A small reverse-mode automatic differentiation engine on numpy arrays.

The engine follows the familiar define-by-run pattern: every operation on
:class:`Tensor` objects records its inputs and a closure that propagates the
output gradient back to them.  Calling :meth:`Tensor.backward` on a scalar
(or with an explicit output gradient) topologically sorts the recorded graph
and runs the closures in reverse order.

Design notes
------------
* Arrays follow the **dtype policy** of :mod:`repro.nn.dtype`: fresh
  (non-float) data is cast to the module default (float32, half the memory
  bandwidth of float64 on the edge-latency hot paths), while floating
  arrays keep their own dtype — so a float64 pipeline built under
  ``default_dtype("float64")`` stays float64 end to end, which is what the
  finite-difference gradient checks in the test-suite use.  Gradients are
  stored and accumulated in the dtype of the tensor they belong to.
* Broadcasting is fully supported; gradients are "unbroadcast" (summed over
  broadcast dimensions) before accumulation.
* Custom differentiable operations (e.g. the scatter aggregations in
  :mod:`repro.graph.scatter`) are built with :func:`apply_op`, which creates
  an output tensor wired to an arbitrary backward closure.
* :func:`no_grad` provides an inference-mode context that skips graph
  recording entirely.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.dtype import as_float_array

__all__ = ["Tensor", "as_tensor", "apply_op", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient graph recording."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Summation is performed over dimensions that were added or expanded by
    numpy broadcasting rules when producing ``grad``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were prepended by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were expanded from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        name: str | None = None,
        dtype: np.dtype | str | None = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = as_float_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = parents if self.requires_grad else ()
        self._backward: Callable[[], None] | None = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the single element of a size-1 tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------ #
    # Gradient plumbing
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` to the stored gradient, allocating it on first use."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Args:
            grad: Gradient of the final objective w.r.t. this tensor.  May be
                omitted only for scalar tensors, in which case it defaults to
                one.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(np.asarray(grad, dtype=self.data.dtype), self.data.shape).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = _make(self.data + other.data, (self, other))
        if out.requires_grad:

            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.data.shape))

            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = _make(-self.data, (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(-out.grad)

            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = _make(self.data * other.data, (self, other))
        if out.requires_grad:

            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.data.shape))

            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = _make(self.data / other.data, (self, other))
        if out.requires_grad:

            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.data.shape))
                if other.requires_grad:
                    other._accumulate(
                        _unbroadcast(-out.grad * self.data / (other.data**2), other.data.shape)
                    )

            out._backward = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out = _make(self.data**exponent, (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = _make(self.data @ other.data, (self, other))
        if out.requires_grad:

            def _backward() -> None:
                grad = out.grad
                if self.requires_grad:
                    if other.data.ndim == 1:
                        self._accumulate(
                            _unbroadcast(np.outer(grad, other.data).reshape(self.data.shape), self.data.shape)
                            if self.data.ndim > 1
                            else grad * other.data
                        )
                    else:
                        self._accumulate(
                            _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.data.shape)
                        )
                if other.requires_grad:
                    if self.data.ndim == 1:
                        other._accumulate(_unbroadcast(np.outer(self.data, grad), other.data.shape))
                    else:
                        other._accumulate(
                            _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.data.shape)
                        )

            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = _make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:

            def _backward() -> None:
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.data.shape).copy())

            out._backward = _backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def _minmax(self, axis, keepdims, mode: str) -> "Tensor":
        reducer = np.max if mode == "max" else np.min
        reduced = reducer(self.data, axis=axis, keepdims=keepdims)
        out = _make(reduced, (self,))
        if out.requires_grad:

            def _backward() -> None:
                grad = out.grad
                reduced_keep = reduced if keepdims or axis is None else np.expand_dims(reduced, axis=axis)
                grad_keep = grad if keepdims or axis is None else np.expand_dims(grad, axis=axis)
                mask = (self.data == reduced_keep).astype(self.data.dtype)
                # Split gradient equally between ties for a well-defined subgradient.
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask * grad_keep / counts)

            out._backward = _backward
        return out

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return self._minmax(axis, keepdims, "max")

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return self._minmax(axis, keepdims, "min")

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = _make(self.data.reshape(shape), (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad.reshape(self.data.shape))

            out._backward = _backward
        return out

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out = _make(np.transpose(self.data, axes), (self,))
        if out.requires_grad:

            def _backward() -> None:
                if axes is None:
                    self._accumulate(np.transpose(out.grad))
                else:
                    inverse = np.argsort(axes)
                    self._accumulate(np.transpose(out.grad, inverse))

            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = _make(self.data[index], (self,))
        if out.requires_grad:

            def _backward() -> None:
                grad = np.zeros_like(self.data)
                # repro-lint: allow[backend-primitive] generic fancy-index accumulation, not a graph kernel
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = _make(value, (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad * value)

            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = _make(np.log(self.data), (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad / self.data)

            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out = _make(np.abs(self.data), (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad * np.sign(self.data))

            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = _make(np.maximum(self.data, 0.0), (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad * (self.data > 0.0))

            out._backward = _backward
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out = _make(np.where(self.data > 0.0, self.data, negative_slope * self.data), (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad * np.where(self.data > 0.0, 1.0, negative_slope))

            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = _make(value, (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad * value * (1.0 - value))

            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = _make(value, (self,))
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad * (1.0 - value**2))

            out._backward = _backward
        return out

    def clip(self, minimum: float | None = None, maximum: float | None = None) -> "Tensor":
        lo = -np.inf if minimum is None else minimum
        hi = np.inf if maximum is None else maximum
        out = _make(np.clip(self.data, lo, hi), (self,))
        if out.requires_grad:

            def _backward() -> None:
                inside = (self.data >= lo) & (self.data <= hi)
                self._accumulate(out.grad * inside)

            out._backward = _backward
        return out


def _make(data: np.ndarray, parents: tuple[Tensor, ...]) -> Tensor:
    """Create an op output tensor that requires grad iff any parent does."""
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    return Tensor(data, requires_grad=requires, parents=tuple(p for p in parents if p.requires_grad))


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def apply_op(
    data: np.ndarray,
    parents: Iterable[Tensor],
    backward_fn: Callable[[np.ndarray], Sequence[np.ndarray | None]],
) -> Tensor:
    """Create a custom differentiable operation.

    Args:
        data: Forward result as a numpy array.
        parents: Input tensors, in the order expected by ``backward_fn``.
        backward_fn: Maps the output gradient to a sequence of gradients, one
            per parent (``None`` entries are skipped).

    Returns:
        The output :class:`Tensor` wired into the autograd graph.
    """
    parents = tuple(parents)
    out = _make(as_float_array(data), parents)
    if out.requires_grad:

        def _backward() -> None:
            grads = backward_fn(out.grad)
            if len(grads) != len(parents):
                raise RuntimeError(
                    f"backward_fn returned {len(grads)} gradients for {len(parents)} parents"
                )
            for parent, grad in zip(parents, grads):
                if parent.requires_grad and grad is not None:
                    grad = np.asarray(grad, dtype=parent.data.dtype)
                    parent._accumulate(_unbroadcast(grad, parent.data.shape))

        out._backward = _backward
    return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        slices = []
        for i in range(len(tensors)):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            slices.append(grad[tuple(index)])
        return slices

    return apply_op(data, tensors, backward_fn)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        return [np.take(grad, i, axis=axis) for i in range(len(tensors))]

    return apply_op(data, tensors, backward_fn)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise selection ``condition ? a : b``."""
    a = as_tensor(a)
    b = as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray | None]:
        return [np.where(condition, grad, 0.0), np.where(condition, 0.0, grad)]

    return apply_op(data, (a, b), backward_fn)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (gradient split on ties)."""
    a = as_tensor(a)
    b = as_tensor(b)
    data = np.maximum(a.data, b.data)

    def backward_fn(grad: np.ndarray) -> list[np.ndarray]:
        a_wins = a.data > b.data
        ties = a.data == b.data
        grad_a = grad * (a_wins + 0.5 * ties)
        grad_b = grad * (~a_wins & ~ties) + grad * 0.5 * ties
        return [grad_a, grad_b]

    return apply_op(data, (a, b), backward_fn)
