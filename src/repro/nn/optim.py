"""Gradient-descent optimisers."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip the global L2 norm of gradients in-place.

    Args:
        parameters: Parameters whose ``grad`` fields are clipped.
        max_norm: Maximum allowed global norm (must be positive).

    Returns:
        The global norm before clipping.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params))) if params else 0.0
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser storing parameter references and common options."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; implemented by sub-classes."""
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat array mapping of the optimiser's slot state (checkpointing)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict` (same parameter list)."""
        if state:
            raise ValueError(f"unexpected optimizer state keys: {sorted(state)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and Nesterov."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity_{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, velocity in enumerate(self._velocity):
            velocity[...] = state[f"velocity_{i}"]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with L2-coupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {"step": np.asarray(self._step, dtype=np.int64)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m_{i}"] = m.copy()
            state[f"v_{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._step = int(state["step"])
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            m[...] = state[f"m_{i}"]
            v[...] = state[f"v_{i}"]

    def _decayed_grad(self, param: Tensor) -> np.ndarray:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1**self._step
        bias_correction2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = self._decayed_grad(param)
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _decayed_grad(self, param: Tensor) -> np.ndarray:
        # Decoupled: the decay is applied directly to the weights in step().
        return param.grad

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        super().step()
