"""Learning-rate schedulers."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR", "WarmupCosineLR"]


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` once per :meth:`step` call."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        """Return the learning rate for the current epoch."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimiser's learning rate."""
        self.last_epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.last_epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))


class WarmupCosineLR(LRScheduler):
    """Linear warm-up followed by cosine annealing."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, t_max: int, eta_min: float = 0.0):
        if warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be >= 0, got {warmup_epochs}")
        if t_max <= warmup_epochs:
            raise ValueError("t_max must exceed warmup_epochs")
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        if self.warmup_epochs and self.last_epoch <= self.warmup_epochs:
            return self.base_lr * self.last_epoch / self.warmup_epochs
        progress = min(self.last_epoch - self.warmup_epochs, self.t_max - self.warmup_epochs)
        progress /= self.t_max - self.warmup_epochs
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
