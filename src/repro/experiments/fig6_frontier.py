"""Fig. 6 — accuracy vs latency frontier of HGNAS against existing models.

Each device gets a scatter of (latency, accuracy) points for DGCNN, the
manual baselines [6]/[7], and the HGNAS ``Acc``/``Fast`` models; HGNAS
should dominate the frontier (higher accuracy at lower latency) on every
device.  The underlying data is exactly the Table II reproduction, reshaped
into frontier points, so both experiments stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.common import ExperimentScale
from repro.experiments.table2_comparison import AccuracyRecord, Table2Row, run_table2
from repro.nas.architecture import Architecture

__all__ = ["FrontierPoint", "run_fig6", "frontier_from_table"]


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the accuracy-latency plane for one device."""

    device: str
    network: str
    latency_ms: float
    accuracy: float
    is_hgnas: bool

    def dominates(self, other: "FrontierPoint") -> bool:
        """Pareto dominance: at least as good on both axes, better on one."""
        not_worse = self.latency_ms <= other.latency_ms and self.accuracy >= other.accuracy
        strictly_better = self.latency_ms < other.latency_ms or self.accuracy > other.accuracy
        return not_worse and strictly_better


def frontier_from_table(rows: Sequence[Table2Row]) -> dict[str, list[FrontierPoint]]:
    """Reshape Table II rows into per-device frontier points."""
    frontier: dict[str, list[FrontierPoint]] = {}
    for row in rows:
        frontier.setdefault(row.device, []).append(
            FrontierPoint(
                device=row.device,
                network=row.network,
                latency_ms=row.latency_ms,
                accuracy=row.overall_accuracy,
                is_hgnas=row.network.startswith("HGNAS"),
            )
        )
    return frontier


def run_fig6(
    scale: ExperimentScale | None = None,
    devices: Sequence[str] | None = None,
    hgnas_architectures: Mapping[str, Mapping[str, Architecture]] | None = None,
    accuracy_records: Mapping[str, AccuracyRecord] | None = None,
) -> dict[str, list[FrontierPoint]]:
    """Reproduce the Fig. 6 frontiers (one list of points per device)."""
    rows = run_table2(
        scale=scale,
        devices=devices,
        hgnas_architectures=hgnas_architectures,
        accuracy_records=accuracy_records,
    )
    return frontier_from_table(rows)
