"""Fig. 8 — accuracy of the GNN latency predictor on every device.

For each device a predictor is trained on randomly sampled architectures
labelled with (noisy) device latency and evaluated on held-out
architectures: the paper reports ~6% MAPE on RTX3080 / i7-8700K / Jetson
TX2, ~19% on the Raspberry Pi (noisier measurements), and >80% of
predictions within a 10% error bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.common import resolve_devices
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.predictor.dataset import generate_predictor_dataset
from repro.predictor.model import LatencyPredictor, PredictorConfig
from repro.predictor.train import PredictorTrainingConfig, evaluate_predictor, train_predictor

__all__ = ["PredictorExperimentResult", "run_fig8"]


@dataclass
class PredictorExperimentResult:
    """Trained predictor plus its evaluation for one device."""

    device: str
    mape: float
    bound_accuracy_10: float
    bound_accuracy_20: float
    spearman: float
    predicted_ms: np.ndarray
    measured_ms: np.ndarray
    predictor: LatencyPredictor


def run_fig8(
    devices: Sequence[str] | None = None,
    num_samples: int = 400,
    num_positions: int = 12,
    training: PredictorTrainingConfig | None = None,
    predictor_config: PredictorConfig | None = None,
    seed: int = 0,
) -> list[PredictorExperimentResult]:
    """Train and evaluate one latency predictor per device.

    The paper-scale run uses 30K samples and 250 epochs; the defaults here
    (400 samples) finish in roughly a minute per device on a laptop CPU and
    already show the qualitative picture (good rank correlation everywhere,
    highest error on the Raspberry Pi).
    """
    if num_samples < 20:
        raise ValueError("num_samples must be at least 20")
    space = DesignSpace(DesignSpaceConfig(num_positions=num_positions, k=20, num_points=1024))
    training = training or PredictorTrainingConfig(epochs=80, batch_size=32, learning_rate=1e-2, seed=seed)
    results: list[PredictorExperimentResult] = []
    for device in resolve_devices(devices):
        rng = np.random.default_rng(seed)
        dataset = generate_predictor_dataset(space, device, num_samples, rng)
        train_split, val_split = dataset.split(0.75, rng)
        predictor = LatencyPredictor(
            predictor_config
            or PredictorConfig(gcn_dims=(32, 48, 48), mlp_dims=(32, 16), num_points=1024, k=20, seed=seed)
        )
        train_predictor(predictor, train_split, val_split, training)
        metrics = evaluate_predictor(predictor, val_split)
        predicted = np.array([predictor.predict_from_graph(s.graph) for s in val_split.samples])
        measured = val_split.latencies()
        results.append(
            PredictorExperimentResult(
                device=device.name,
                mape=metrics.mape,
                bound_accuracy_10=metrics.bound_accuracy_10,
                bound_accuracy_20=metrics.bound_accuracy_20,
                spearman=metrics.spearman,
                predicted_ms=predicted,
                measured_ms=measured,
                predictor=predictor,
            )
        )
    return results
