"""Fig. 3 — execution-time breakdown of DGCNN across the four platforms."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import resolve_devices
from repro.hardware.profiler import profile_workload
from repro.hardware.reference_workloads import dgcnn_workload

__all__ = ["run_fig3", "PAPER_BREAKDOWN_REFERENCE"]

#: The paper's reported breakdown fractions (Fig. 3), for comparison.
PAPER_BREAKDOWN_REFERENCE = {
    "rtx3080": {"sample": 0.8744, "aggregate": 0.0176, "combine": 0.0085, "others": 0.0995},
    "i7-8700k": {"sample": 0.3313, "aggregate": 0.5326, "combine": 0.0542, "others": 0.0819},
    "jetson-tx2": {"sample": 0.5088, "aggregate": 0.1170, "combine": 0.0817, "others": 0.2925},
    "raspberry-pi": {"sample": 0.2246, "aggregate": 0.3355, "combine": 0.2732, "others": 0.1666},
}


def run_fig3(
    devices: Sequence[str] | None = None,
    num_points: int = 1024,
) -> list[dict[str, object]]:
    """Profile DGCNN on every device and report the per-category breakdown."""
    workload = dgcnn_workload(num_points)
    rows: list[dict[str, object]] = []
    for device in resolve_devices(devices):
        profile = profile_workload(workload, device)
        row: dict[str, object] = {
            "device": device.name,
            "display_name": device.display_name,
            "total_latency_ms": profile.total_latency_ms,
            "dominant_category": profile.dominant_category(),
        }
        for category, fraction in profile.category_fractions.items():
            row[f"{category}_fraction"] = fraction
        reference = PAPER_BREAKDOWN_REFERENCE.get(device.name)
        if reference is not None:
            row["max_abs_error_vs_paper"] = max(
                abs(row[f"{category}_fraction"] - value) for category, value in reference.items()
            )
        rows.append(row)
    return rows
