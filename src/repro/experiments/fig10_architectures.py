"""Fig. 10 — visualisation and characterisation of the per-device designs.

The paper's insight: hardware-efficient architectures mirror the bottleneck
of their target device — fewer valid KNN constructions on RTX3080/TX2
(sample-bound), fewer aggregations on the Intel CPU (aggregate-bound), and
simplified everything on the Raspberry Pi.  This experiment renders the
per-device architectures (the Fig. 10 presets by default, or searched ones
when provided) and reports their operation counts and modelled latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.common import resolve_devices
from repro.hardware.latency import estimate_latency
from repro.hardware.reference_workloads import PAPER_DGCNN_K, PAPER_NUM_CLASSES, dgcnn_workload
from repro.nas.architecture import Architecture
from repro.nas.presets import device_fast_architecture
from repro.nas.visualize import architecture_summary, render_architecture

__all__ = ["ArchitectureReport", "run_fig10"]


@dataclass(frozen=True)
class ArchitectureReport:
    """Rendered architecture plus headline statistics for one device."""

    device: str
    name: str
    rendering: str
    num_samples: int
    num_aggregates: int
    num_combines: int
    latency_ms: float
    speedup_vs_dgcnn: float


def run_fig10(
    devices: Sequence[str] | None = None,
    architectures: Mapping[str, Architecture] | None = None,
    num_points: int = 1024,
) -> list[ArchitectureReport]:
    """Render the per-device architecture and report its op counts."""
    reports: list[ArchitectureReport] = []
    for device in resolve_devices(devices):
        architecture = (
            architectures[device.name]
            if architectures is not None and device.name in architectures
            else device_fast_architecture(device.name)
        )
        summary = architecture_summary(architecture)
        workload = architecture.to_workload(num_points, PAPER_DGCNN_K, PAPER_NUM_CLASSES)
        latency = estimate_latency(workload, device).total_ms
        dgcnn_latency = estimate_latency(dgcnn_workload(num_points), device).total_ms
        reports.append(
            ArchitectureReport(
                device=device.name,
                name=str(summary["name"]),
                rendering=render_architecture(architecture, title=f"{device.display_name} design"),
                num_samples=int(summary["num_samples"]),
                num_aggregates=int(summary["num_aggregates"]),
                num_combines=int(summary["num_combines"]),
                latency_ms=latency,
                speedup_vs_dgcnn=dgcnn_latency / latency,
            )
        )
    return reports
