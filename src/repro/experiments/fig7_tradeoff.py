"""Fig. 7 — accuracy / speedup trade-off controlled by the alpha:beta ratio.

The paper sweeps the scaling factors of the search objective (Eq. 1/3):
small alpha:beta favours latency (high speedup, lower accuracy), large
alpha:beta favours accuracy.  Each ratio triggers a (scaled-down) HGNAS run
and the best architecture's weight-sharing accuracy and speedup over DGCNN
on the target device are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentScale, load_benchmark_dataset
from repro.hardware.device import get_device
from repro.hardware.latency import estimate_latency
from repro.hardware.reference_workloads import dgcnn_workload
from repro.nas.latency_eval import OracleLatencyEvaluator
from repro.nas.objective import ObjectiveConfig
from repro.nas.search import HGNAS, HGNASConfig

__all__ = ["TradeoffPoint", "PAPER_RATIOS", "run_fig7"]

#: alpha:beta ratios swept in the paper's Fig. 7.
PAPER_RATIOS = (0.1, 0.2, 1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class TradeoffPoint:
    """Search outcome for one alpha:beta ratio."""

    ratio: float
    accuracy: float
    latency_ms: float
    speedup_vs_dgcnn: float
    num_samples: int
    num_aggregates: int


def run_fig7(
    ratios: Sequence[float] = PAPER_RATIOS,
    device_name: str = "rtx3080",
    scale: ExperimentScale | None = None,
    search_config: HGNASConfig | None = None,
) -> list[TradeoffPoint]:
    """Run one (scaled-down) search per ratio and report the trade-off curve."""
    scale = scale or ExperimentScale()
    train_set, val_set = load_benchmark_dataset(scale)
    device = get_device(device_name)
    dgcnn_latency = estimate_latency(dgcnn_workload(1024), device).total_ms
    base_config = search_config or HGNASConfig(
        num_positions=6,
        hidden_dim=16,
        supernet_k=min(6, scale.num_points - 1),
        num_classes=scale.num_classes,
        population_size=6,
        function_iterations=2,
        operation_iterations=4,
        function_epochs=1,
        operation_epochs=2,
        batch_size=scale.batch_size,
        eval_max_batches=2,
        seed=scale.seed,
    )

    points: list[TradeoffPoint] = []
    for ratio in ratios:
        if ratio <= 0:
            raise ValueError("alpha:beta ratios must be positive")
        objective = ObjectiveConfig(
            alpha=float(ratio),
            beta=1.0,
            latency_constraint_ms=float("inf"),
            latency_scale_ms=dgcnn_latency,
        )
        evaluator = OracleLatencyEvaluator(
            device, num_points=1024, k=20, num_classes=scale.num_classes
        )
        search = HGNAS(
            base_config,
            train_set,
            val_set,
            evaluator,
            objective=objective,
            rng=np.random.default_rng(base_config.seed),
        )
        result = search.run()
        best = result.best_architecture
        points.append(
            TradeoffPoint(
                ratio=float(ratio),
                accuracy=result.best_accuracy,
                latency_ms=result.best_latency_ms,
                speedup_vs_dgcnn=dgcnn_latency / max(result.best_latency_ms, 1e-9),
                num_samples=best.num_valid_samples(),
                num_aggregates=sum(1 for op in best.effective_ops() if op.kind == "aggregate"),
            )
        )
    return points
