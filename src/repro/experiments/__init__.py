"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.common import ExperimentScale, format_table, load_benchmark_dataset, resolve_devices
from repro.experiments.fig1_latency_memory import (
    PAPER_POINT_SWEEP,
    Fig1Row,
    run_device_comparison,
    run_fig1,
    run_point_sweep,
)
from repro.experiments.fig2_reuse import REUSE_CONFIGURATIONS, ReuseResult, run_fig2
from repro.experiments.fig3_breakdown import PAPER_BREAKDOWN_REFERENCE, run_fig3
from repro.experiments.fig6_frontier import FrontierPoint, frontier_from_table, run_fig6
from repro.experiments.fig7_tradeoff import PAPER_RATIOS, TradeoffPoint, run_fig7
from repro.experiments.fig8_predictor import PredictorExperimentResult, run_fig8
from repro.experiments.fig9_ablation import AblationRun, default_ablation_config, run_fig9a, run_fig9b
from repro.experiments.fig10_architectures import ArchitectureReport, run_fig10
from repro.experiments.table2_comparison import (
    AccuracyRecord,
    Table2Row,
    run_table2,
    train_accuracy_models,
)

__all__ = [
    "ExperimentScale",
    "format_table",
    "load_benchmark_dataset",
    "resolve_devices",
    "PAPER_POINT_SWEEP",
    "Fig1Row",
    "run_device_comparison",
    "run_fig1",
    "run_point_sweep",
    "REUSE_CONFIGURATIONS",
    "ReuseResult",
    "run_fig2",
    "PAPER_BREAKDOWN_REFERENCE",
    "run_fig3",
    "FrontierPoint",
    "frontier_from_table",
    "run_fig6",
    "PAPER_RATIOS",
    "TradeoffPoint",
    "run_fig7",
    "PredictorExperimentResult",
    "run_fig8",
    "AblationRun",
    "default_ablation_config",
    "run_fig9a",
    "run_fig9b",
    "ArchitectureReport",
    "run_fig10",
    "AccuracyRecord",
    "Table2Row",
    "run_table2",
    "train_accuracy_models",
]
