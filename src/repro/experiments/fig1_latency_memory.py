"""Fig. 1 — DGCNN vs HGNAS latency/peak-memory scaling with cloud size.

The left half of the paper's Fig. 1 sweeps the number of points on the
Raspberry Pi (latency and peak memory, with DGCNN going out of memory above
1536 points); the right half reports the speedup and memory-efficiency
improvement of the HGNAS-designed model on all four devices at 1024 points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.hardware.memory import estimate_peak_memory
from repro.hardware.reference_workloads import PAPER_DGCNN_K, PAPER_NUM_CLASSES, dgcnn_workload
from repro.nas.architecture import Architecture
from repro.nas.presets import device_fast_architecture
from repro.experiments.common import resolve_devices

__all__ = ["Fig1Row", "run_point_sweep", "run_device_comparison", "run_fig1"]

#: Point counts swept in the paper's Fig. 1.
PAPER_POINT_SWEEP = (128, 256, 512, 1024, 1536, 2048)


@dataclass(frozen=True)
class Fig1Row:
    """One (device, model, num_points) measurement."""

    device: str
    model: str
    num_points: int
    latency_ms: float
    peak_memory_mb: float
    out_of_memory: bool


def _hgnas_architecture(device: DeviceSpec, architecture: Architecture | None) -> Architecture:
    return architecture if architecture is not None else device_fast_architecture(device.name)


def run_point_sweep(
    device_name: str = "raspberry-pi",
    num_points: Sequence[int] = PAPER_POINT_SWEEP,
    hgnas_architecture: Architecture | None = None,
) -> list[Fig1Row]:
    """Latency/memory of DGCNN and the HGNAS model across cloud sizes."""
    device = resolve_devices([device_name])[0]
    architecture = _hgnas_architecture(device, hgnas_architecture)
    rows: list[Fig1Row] = []
    for points in num_points:
        if points <= 0:
            raise ValueError("num_points entries must be positive")
        dgcnn = dgcnn_workload(points)
        hgnas = architecture.to_workload(points, PAPER_DGCNN_K, PAPER_NUM_CLASSES)
        for model, workload in (("DGCNN", dgcnn), ("HGNAS", hgnas)):
            latency = estimate_latency(workload, device)
            memory = estimate_peak_memory(workload, device)
            rows.append(
                Fig1Row(
                    device=device.name,
                    model=model,
                    num_points=points,
                    latency_ms=latency.total_ms,
                    peak_memory_mb=memory.peak_mb,
                    out_of_memory=memory.out_of_memory,
                )
            )
    return rows


def run_device_comparison(
    devices: Sequence[str] | None = None,
    num_points: int = 1024,
    hgnas_architecture: Architecture | None = None,
) -> list[dict[str, object]]:
    """Speedup and memory reduction of the HGNAS model on every device."""
    results: list[dict[str, object]] = []
    for device in resolve_devices(devices):
        architecture = _hgnas_architecture(device, hgnas_architecture)
        dgcnn = dgcnn_workload(num_points)
        hgnas = architecture.to_workload(num_points, PAPER_DGCNN_K, PAPER_NUM_CLASSES)
        dgcnn_latency = estimate_latency(dgcnn, device).total_ms
        hgnas_latency = estimate_latency(hgnas, device).total_ms
        dgcnn_memory = estimate_peak_memory(dgcnn, device).peak_mb
        hgnas_memory = estimate_peak_memory(hgnas, device).peak_mb
        results.append(
            {
                "device": device.display_name,
                "dgcnn_latency_ms": dgcnn_latency,
                "hgnas_latency_ms": hgnas_latency,
                "speedup": dgcnn_latency / hgnas_latency,
                "dgcnn_fps": 1000.0 / dgcnn_latency,
                "hgnas_fps": 1000.0 / hgnas_latency,
                "dgcnn_memory_mb": dgcnn_memory,
                "hgnas_memory_mb": hgnas_memory,
                "memory_reduction": 1.0 - hgnas_memory / dgcnn_memory,
            }
        )
    return results


def run_fig1(
    sweep_device: str = "raspberry-pi",
    devices: Sequence[str] | None = None,
    num_points: Sequence[int] = PAPER_POINT_SWEEP,
) -> dict[str, object]:
    """Full Fig. 1 reproduction: the Pi sweep plus the 4-device comparison."""
    return {
        "point_sweep": run_point_sweep(sweep_device, num_points),
        "device_comparison": run_device_comparison(devices),
    }
