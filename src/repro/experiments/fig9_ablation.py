"""Fig. 9 — search ablations.

(a) *Predictor vs real-time measurement*: the same hardware-aware operation
search driven either by the GNN latency predictor (millisecond queries) or
by simulated on-device measurement (seconds-to-minutes per query, noisy).
Both should converge to similar objective scores, but the measurement-based
search spends far more (virtual) wall-clock time.

(b) *Multi-stage vs one-stage*: the hierarchical strategy (Alg. 1) against
a single evolutionary search over the joint operation+function space with
the same budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentScale, load_benchmark_dataset
from repro.hardware.device import get_device
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.nas.evolution import HistoryPoint
from repro.nas.latency_eval import MeasurementLatencyEvaluator, OracleLatencyEvaluator
from repro.nas.search import HGNAS, HGNASConfig
from repro.predictor.dataset import generate_predictor_dataset
from repro.predictor.evaluator import PredictorLatencyEvaluator
from repro.predictor.model import LatencyPredictor, PredictorConfig
from repro.predictor.train import PredictorTrainingConfig, train_predictor

__all__ = ["AblationRun", "run_fig9a", "run_fig9b", "default_ablation_config"]


@dataclass(frozen=True)
class AblationRun:
    """Result of one ablation search run."""

    label: str
    device: str
    best_score: float
    best_latency_ms: float
    search_time_s: float
    history: tuple[HistoryPoint, ...]


def default_ablation_config(scale: ExperimentScale) -> HGNASConfig:
    """A small but complete search configuration for the ablations."""
    return HGNASConfig(
        num_positions=6,
        hidden_dim=16,
        supernet_k=min(6, scale.num_points - 1),
        num_classes=scale.num_classes,
        population_size=6,
        function_iterations=2,
        operation_iterations=5,
        function_epochs=1,
        operation_epochs=2,
        batch_size=scale.batch_size,
        eval_max_batches=2,
        seed=scale.seed,
    )


def _train_quick_predictor(
    device_name: str, num_positions: int, num_samples: int, seed: int
) -> LatencyPredictor:
    """Train a small predictor used by the predictor-based ablation arm."""
    rng = np.random.default_rng(seed)
    space = DesignSpace(DesignSpaceConfig(num_positions=num_positions, k=20, num_points=1024))
    device = get_device(device_name)
    dataset = generate_predictor_dataset(space, device, num_samples, rng)
    train_split, val_split = dataset.split(0.8, rng)
    predictor = LatencyPredictor(PredictorConfig(gcn_dims=(24, 32, 32), mlp_dims=(24, 12), seed=seed))
    train_predictor(
        predictor,
        train_split,
        val_split,
        PredictorTrainingConfig(epochs=40, batch_size=32, learning_rate=1e-2, seed=seed),
    )
    return predictor


def run_fig9a(
    devices: Sequence[str] = ("rtx3080", "i7-8700k"),
    scale: ExperimentScale | None = None,
    config: HGNASConfig | None = None,
    predictor_samples: int = 200,
) -> list[AblationRun]:
    """Predictor-based vs measurement-based hardware awareness (Fig. 9a)."""
    scale = scale or ExperimentScale()
    config = config or default_ablation_config(scale)
    train_set, val_set = load_benchmark_dataset(scale)
    runs: list[AblationRun] = []
    for device_name in devices:
        device = get_device(device_name)
        predictor = _train_quick_predictor(device_name, config.num_positions, predictor_samples, scale.seed)
        evaluators = {
            "prediction": PredictorLatencyEvaluator(predictor),
            "real-time": MeasurementLatencyEvaluator(
                device, num_points=1024, k=20, num_classes=scale.num_classes,
                rng=np.random.default_rng(scale.seed),
            ),
        }
        for label, evaluator in evaluators.items():
            search = HGNAS(
                config, train_set, val_set, evaluator, rng=np.random.default_rng(config.seed)
            )
            result = search.run()
            runs.append(
                AblationRun(
                    label=label,
                    device=device_name,
                    best_score=result.best_score,
                    best_latency_ms=result.best_latency_ms,
                    search_time_s=result.search_time_s,
                    history=tuple(result.history),
                )
            )
    return runs


def run_fig9b(
    device_name: str = "rtx3080",
    scale: ExperimentScale | None = None,
    config: HGNASConfig | None = None,
) -> list[AblationRun]:
    """Multi-stage vs one-stage search strategy (Fig. 9b)."""
    scale = scale or ExperimentScale()
    config = config or default_ablation_config(scale)
    train_set, val_set = load_benchmark_dataset(scale)
    device = get_device(device_name)
    runs: list[AblationRun] = []
    for label in ("multi-stage", "one-stage"):
        evaluator = OracleLatencyEvaluator(device, num_points=1024, k=20, num_classes=scale.num_classes)
        search = HGNAS(config, train_set, val_set, evaluator, rng=np.random.default_rng(config.seed))
        result = search.run() if label == "multi-stage" else search.run_one_stage()
        runs.append(
            AblationRun(
                label=label,
                device=device_name,
                best_score=result.best_score,
                best_latency_ms=result.best_latency_ms,
                search_time_s=result.search_time_s,
                history=tuple(result.history),
            )
        )
    return runs
