"""Fig. 2(b) — accuracy vs latency when reusing sampled results across layers.

The paper's Observation 1: reusing the KNN graph computed by an earlier
DGCNN layer in later layers costs little accuracy but removes a large part
of the execution time, motivating the fine-grained design space.  Accuracy
comes from training scaled-down DGCNN variants on the synthetic benchmark;
latency comes from the calibrated hardware model at paper scale (1024
points on the RTX3080, as in the figure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentScale, load_benchmark_dataset
from repro.hardware.device import get_device
from repro.hardware.latency import estimate_latency
from repro.hardware.reference_workloads import graph_reuse_dgcnn_workload, dgcnn_workload
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.nas.trainer import evaluate_classifier, train_classifier

__all__ = ["ReuseResult", "REUSE_CONFIGURATIONS", "run_fig2"]

#: Named reuse configurations over a 4-layer DGCNN: which layers rebuild the
#: graph (all others reuse the most recent one).
REUSE_CONFIGURATIONS = {
    "rebuild-all (DGCNN)": (0, 1, 2, 3),
    "rebuild-1-3": (0, 2),
    "rebuild-1-2": (0, 1),
    "rebuild-1": (0,),
}


@dataclass(frozen=True)
class ReuseResult:
    """Accuracy/latency of one reuse configuration."""

    name: str
    rebuild_layers: tuple[int, ...]
    accuracy: float
    latency_ms: float
    knn_constructions: int


def _reuse_map(rebuild_layers: tuple[int, ...], num_layers: int) -> dict[int, int]:
    reuse: dict[int, int] = {}
    last_rebuilt = 0
    for layer in range(num_layers):
        if layer in rebuild_layers:
            last_rebuilt = layer
        elif layer > 0:
            reuse[layer] = last_rebuilt
    return reuse


def run_fig2(
    scale: ExperimentScale | None = None,
    device_name: str = "rtx3080",
    configurations: dict[str, tuple[int, ...]] | None = None,
) -> list[ReuseResult]:
    """Train DGCNN reuse variants and report accuracy vs modelled latency."""
    scale = scale or ExperimentScale()
    configurations = configurations or REUSE_CONFIGURATIONS
    train_set, test_set = load_benchmark_dataset(scale)
    device = get_device(device_name)
    rng = np.random.default_rng(scale.seed)

    results: list[ReuseResult] = []
    num_layers = 3  # scaled-down DGCNN depth used for accuracy training
    for name, rebuild_layers in configurations.items():
        rebuild = tuple(layer for layer in rebuild_layers if layer < num_layers)
        if not rebuild:
            rebuild = (0,)
        config = DGCNNConfig(
            num_classes=scale.num_classes,
            k=min(10, scale.num_points - 1),
            layer_dims=(24, 24, 48)[:num_layers],
            embed_dim=48,
            classifier_hidden=(48,),
            graph_reuse=_reuse_map(rebuild, num_layers),
            seed=scale.seed,
        )
        model = DGCNN(config)
        train_classifier(
            model,
            train_set,
            epochs=scale.train_epochs,
            batch_size=scale.batch_size,
            rng=rng,
        )
        metrics = evaluate_classifier(model, test_set, batch_size=scale.batch_size)
        # Latency is modelled at paper scale: a 4-layer DGCNN at 1024 points
        # with the same rebuild pattern.
        paper_rebuild = tuple(layer for layer in rebuild_layers if layer < 4)
        if paper_rebuild == (0, 1, 2, 3):
            workload = dgcnn_workload(1024)
        else:
            workload = graph_reuse_dgcnn_workload(1024, rebuild_layers=paper_rebuild or (0,))
        latency = estimate_latency(workload, device).total_ms
        results.append(
            ReuseResult(
                name=name,
                rebuild_layers=rebuild_layers,
                accuracy=metrics.overall_accuracy,
                latency_ms=latency,
                knn_constructions=model.count_knn_constructions(),
            )
        )
    return results
