"""Shared plumbing for the experiment drivers.

Every experiment driver returns plain dictionaries / dataclasses (no
plotting) so the same code serves unit tests, pytest benchmarks and the
runnable examples.  ``format_table`` renders rows for console output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.dataset import InMemoryDataset
from repro.data.synthetic_modelnet import make_synthetic_modelnet
from repro.hardware.device import DeviceSpec, all_devices, get_device

__all__ = ["ExperimentScale", "resolve_devices", "load_benchmark_dataset", "format_table"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how heavy an experiment run is.

    The defaults keep every experiment runnable in seconds on a laptop CPU;
    the paper-scale values are documented next to each driver.
    """

    num_classes: int = 10
    samples_per_class: int = 8
    num_points: int = 48
    train_epochs: int = 4
    batch_size: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes <= 1 or self.samples_per_class <= 0 or self.num_points <= 0:
            raise ValueError("dataset scale parameters must be positive")
        if self.train_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("training scale parameters must be positive")


def resolve_devices(devices: Sequence[str | DeviceSpec] | None = None) -> list[DeviceSpec]:
    """Map device names/specs (or ``None`` for every registered device) to specs.

    Names resolve through the device registry, so devices added with
    :func:`repro.hardware.device.register_device` participate in experiment
    sweeps; built :class:`DeviceSpec` instances pass through unchanged.
    """
    if devices is None:
        return all_devices()
    return [device if isinstance(device, DeviceSpec) else get_device(device) for device in devices]


def load_benchmark_dataset(scale: ExperimentScale) -> tuple[InMemoryDataset, InMemoryDataset]:
    """Generate the synthetic classification dataset at the requested scale."""
    return make_synthetic_modelnet(
        num_classes=scale.num_classes,
        samples_per_class=scale.samples_per_class,
        num_points=scale.num_points,
        seed=scale.seed,
    )


def format_table(rows: Iterable[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, (float, np.floating)):
            return f"{float(value):.3f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered)
    return "\n".join([header, separator, body])
