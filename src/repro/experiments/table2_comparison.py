"""Table II — HGNAS vs DGCNN and the manual baselines on every device.

For each device the table reports model size, overall accuracy (OA),
balanced accuracy (mAcc), inference latency and peak memory for DGCNN, the
two manually optimised baselines [6]/[7], and the HGNAS ``Acc``/``Fast``
models.

Accuracy and model size come from training the scaled-down runnable models
on the synthetic benchmark (they are device independent, so they are
trained once and reused for every device).  Latency and peak memory come
from the calibrated hardware model at paper deployment scale (1024 points,
k=20, 40 classes).  The HGNAS architectures default to the Fig. 10 presets;
pass ``hgnas_architectures`` (e.g. produced by a real search run) to
evaluate searched models instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.experiments.common import ExperimentScale, load_benchmark_dataset
from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.hardware.memory import estimate_peak_memory
from repro.hardware.reference_workloads import (
    PAPER_DGCNN_K,
    PAPER_NUM_CLASSES,
    dgcnn_workload,
    graph_reuse_dgcnn_workload,
    simplified_dgcnn_workload,
)
from repro.hardware.workload import Workload
from repro.models.baselines import GraphReuseDGCNN, SimplifiedDGCNN, SimplifiedDGCNNConfig
from repro.models.classifier import model_size_mb
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.nas.architecture import Architecture
from repro.nas.derived import DerivedModel
from repro.nas.presets import device_acc_architecture, device_fast_architecture
from repro.nas.trainer import evaluate_classifier, train_classifier
from repro.experiments.common import resolve_devices

__all__ = ["Table2Row", "AccuracyRecord", "train_accuracy_models", "run_table2"]


@dataclass(frozen=True)
class AccuracyRecord:
    """Accuracy and size of one trained (scaled-down) model."""

    model: str
    size_mb: float
    overall_accuracy: float
    balanced_accuracy: float


@dataclass(frozen=True)
class Table2Row:
    """One (device, network) row of Table II."""

    device: str
    network: str
    size_mb: float
    overall_accuracy: float
    balanced_accuracy: float
    latency_ms: float
    peak_memory_mb: float
    speedup_vs_dgcnn: float
    memory_reduction_vs_dgcnn: float


def _small_dgcnn_config(scale: ExperimentScale) -> DGCNNConfig:
    return DGCNNConfig(
        num_classes=scale.num_classes,
        k=min(10, scale.num_points - 1),
        layer_dims=(24, 24, 48),
        embed_dim=48,
        classifier_hidden=(48,),
        seed=scale.seed,
    )


def train_accuracy_models(
    scale: ExperimentScale,
    hgnas_architectures: Mapping[str, Architecture] | None = None,
) -> dict[str, AccuracyRecord]:
    """Train the runnable models once and collect accuracy/size records.

    Args:
        scale: Dataset / training scale.
        hgnas_architectures: Extra named architectures to train as derived
            models (e.g. the per-device Acc/Fast architectures).

    Returns:
        Mapping from model name to its accuracy record.
    """
    train_set, test_set = load_benchmark_dataset(scale)
    rng = np.random.default_rng(scale.seed)
    k = min(10, scale.num_points - 1)

    models: dict[str, object] = {
        "DGCNN": DGCNN(_small_dgcnn_config(scale)),
        "[6] graph-reuse": GraphReuseDGCNN(_small_dgcnn_config(scale)),
        "[7] simplified": SimplifiedDGCNN(
            SimplifiedDGCNNConfig(
                num_classes=scale.num_classes,
                k=k,
                full_layer_dims=(24, 24),
                simple_layer_dims=(48,),
                embed_dim=48,
                classifier_hidden=(48,),
                seed=scale.seed,
            )
        ),
    }
    for name, architecture in (hgnas_architectures or {}).items():
        models[name] = DerivedModel(
            architecture, num_classes=scale.num_classes, k=k, embed_dim=48, seed=scale.seed
        )

    records: dict[str, AccuracyRecord] = {}
    for name, model in models.items():
        train_classifier(
            model,
            train_set,
            epochs=scale.train_epochs,
            batch_size=scale.batch_size,
            rng=rng,
        )
        metrics = evaluate_classifier(model, test_set, batch_size=scale.batch_size)
        records[name] = AccuracyRecord(
            model=name,
            size_mb=model_size_mb(model),
            overall_accuracy=metrics.overall_accuracy,
            balanced_accuracy=metrics.balanced_accuracy,
        )
    return records


def _deployment_workloads(device: DeviceSpec, architectures: Mapping[str, Architecture]) -> dict[str, Workload]:
    workloads: dict[str, Workload] = {
        "DGCNN": dgcnn_workload(1024),
        "[6] graph-reuse": graph_reuse_dgcnn_workload(1024),
        "[7] simplified": simplified_dgcnn_workload(1024),
    }
    for name, architecture in architectures.items():
        workloads[name] = architecture.to_workload(1024, PAPER_DGCNN_K, PAPER_NUM_CLASSES)
    return workloads


def run_table2(
    scale: ExperimentScale | None = None,
    devices: Sequence[str] | None = None,
    hgnas_architectures: Mapping[str, Mapping[str, Architecture]] | None = None,
    accuracy_records: Mapping[str, AccuracyRecord] | None = None,
) -> list[Table2Row]:
    """Reproduce Table II.

    Args:
        scale: Accuracy-training scale (ignored if ``accuracy_records`` given).
        devices: Devices to include (default: all four).
        hgnas_architectures: Per-device mapping ``{device: {"HGNAS-Acc": arch,
            "HGNAS-Fast": arch}}``; defaults to the Fig. 10 presets.
        accuracy_records: Pre-computed accuracy records (to avoid re-training
            when composing multiple experiments).
    """
    scale = scale or ExperimentScale()
    device_specs = resolve_devices(devices)

    per_device_archs: dict[str, dict[str, Architecture]] = {}
    for device in device_specs:
        if hgnas_architectures is not None and device.name in hgnas_architectures:
            per_device_archs[device.name] = dict(hgnas_architectures[device.name])
        else:
            per_device_archs[device.name] = {
                "HGNAS-Acc": device_acc_architecture(device.name),
                "HGNAS-Fast": device_fast_architecture(device.name),
            }

    if accuracy_records is None:
        # Accuracy is device independent; train each distinct architecture once.
        named_archs: dict[str, Architecture] = {}
        for archs in per_device_archs.values():
            for name, arch in archs.items():
                named_archs[f"{name}:{arch.name or name}"] = arch
        accuracy_records = train_accuracy_models(scale, named_archs)

    rows: list[Table2Row] = []
    for device in device_specs:
        workloads = _deployment_workloads(device, per_device_archs[device.name])
        dgcnn_latency = estimate_latency(workloads["DGCNN"], device).total_ms
        dgcnn_memory = estimate_peak_memory(workloads["DGCNN"], device).peak_mb
        for name, workload in workloads.items():
            if name in accuracy_records:
                record = accuracy_records[name]
            else:
                arch = per_device_archs[device.name].get(name)
                arch_key = f"{name}:{arch.name or name}" if arch is not None else name
                record = accuracy_records.get(arch_key, AccuracyRecord(name, 0.0, 0.0, 0.0))
            latency = estimate_latency(workload, device).total_ms
            memory = estimate_peak_memory(workload, device).peak_mb
            rows.append(
                Table2Row(
                    device=device.display_name,
                    network=name,
                    size_mb=record.size_mb,
                    overall_accuracy=record.overall_accuracy,
                    balanced_accuracy=record.balanced_accuracy,
                    latency_ms=latency,
                    peak_memory_mb=memory,
                    speedup_vs_dgcnn=dgcnn_latency / latency,
                    memory_reduction_vs_dgcnn=1.0 - memory / dgcnn_memory,
                )
            )
    return rows
