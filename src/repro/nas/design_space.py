"""The fine-grained, operation-based design space (paper Sec. III-B)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nas.architecture import Architecture
from repro.nas.ops import (
    FunctionSet,
    OperationType,
    function_space_size,
    mutate_function_set,
    random_function_set,
)

__all__ = ["DesignSpaceConfig", "DesignSpace"]


@dataclass(frozen=True)
class DesignSpaceConfig:
    """Static description of the search problem.

    Attributes:
        num_positions: Number of supernet positions (12 covers DGCNN).
        k: Neighbourhood size used by sample operations.
        num_points: Point-cloud size of the deployment scenario (drives the
            hardware cost of candidates).
        num_classes: Classification classes of the task.
        input_dim: Width of the raw input features (3 for xyz point clouds).
    """

    num_positions: int = 12
    k: int = 20
    num_points: int = 1024
    num_classes: int = 40
    input_dim: int = 3

    def __post_init__(self) -> None:
        if self.num_positions < 2 or self.num_positions % 2 != 0:
            raise ValueError("num_positions must be an even number >= 2 (upper/lower halves)")
        if self.k <= 0 or self.num_points <= 0 or self.input_dim <= 0:
            raise ValueError("k, num_points and input_dim must be positive")
        if self.num_classes <= 1:
            raise ValueError("num_classes must be > 1")


class DesignSpace:
    """Sampling, mutation and crossover utilities over the design space."""

    def __init__(self, config: DesignSpaceConfig | None = None):
        self.config = config or DesignSpaceConfig()

    # ------------------------------------------------------------------ #
    # Size accounting (paper Observation 2)
    # ------------------------------------------------------------------ #
    def operation_space_size(self) -> int:
        """Number of operation assignments (4^num_positions)."""
        return len(OperationType.list()) ** self.config.num_positions

    def function_space_size(self, shared: bool = True) -> int:
        """Number of function assignments.

        Args:
            shared: If ``True`` (HGNAS), one function set per half; otherwise
                every position carries its own set (the un-shared space the
                paper's reduction argument starts from).
        """
        per_position = function_space_size()
        exponent = 2 if shared else self.config.num_positions
        return per_position**exponent

    def total_size(self, shared_functions: bool = True) -> int:
        """Total number of architectures in the (possibly shared) space."""
        return self.operation_space_size() * self.function_space_size(shared_functions)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def random_function_set(self, rng: np.random.Generator) -> FunctionSet:
        """Uniformly random function set."""
        return random_function_set(rng)

    def random_operations(self, rng: np.random.Generator) -> tuple[OperationType, ...]:
        """Uniformly random operation assignment."""
        choices = OperationType.list()
        return tuple(choices[int(i)] for i in rng.integers(0, len(choices), size=self.config.num_positions))

    def random_architecture(
        self,
        rng: np.random.Generator,
        upper_functions: FunctionSet | None = None,
        lower_functions: FunctionSet | None = None,
    ) -> Architecture:
        """Uniformly random architecture (optionally with fixed function sets)."""
        return Architecture(
            operations=self.random_operations(rng),
            upper_functions=upper_functions or random_function_set(rng),
            lower_functions=lower_functions or random_function_set(rng),
            input_dim=self.config.input_dim,
        )

    # ------------------------------------------------------------------ #
    # Mutation / crossover
    # ------------------------------------------------------------------ #
    def mutate_operations(
        self, architecture: Architecture, rng: np.random.Generator, num_mutations: int = 1
    ) -> Architecture:
        """Resample the operation at ``num_mutations`` random positions."""
        if num_mutations <= 0:
            raise ValueError("num_mutations must be positive")
        operations = list(architecture.operations)
        choices = OperationType.list()
        positions = rng.choice(len(operations), size=min(num_mutations, len(operations)), replace=False)
        for position in np.atleast_1d(positions):
            current = operations[int(position)]
            alternatives = [op for op in choices if op is not current]
            operations[int(position)] = alternatives[int(rng.integers(0, len(alternatives)))]
        return Architecture(
            operations=tuple(operations),
            upper_functions=architecture.upper_functions,
            lower_functions=architecture.lower_functions,
            input_dim=architecture.input_dim,
        )

    def mutate_functions(
        self, architecture: Architecture, rng: np.random.Generator, num_mutations: int = 1
    ) -> Architecture:
        """Mutate the function set of a random half."""
        if rng.random() < 0.5:
            upper = mutate_function_set(architecture.upper_functions, rng, num_mutations)
            lower = architecture.lower_functions
        else:
            upper = architecture.upper_functions
            lower = mutate_function_set(architecture.lower_functions, rng, num_mutations)
        return Architecture(
            operations=architecture.operations,
            upper_functions=upper,
            lower_functions=lower,
            input_dim=architecture.input_dim,
        )

    def crossover_operations(
        self, parent_a: Architecture, parent_b: Architecture, rng: np.random.Generator
    ) -> Architecture:
        """Uniform crossover of operation assignments (functions from parent A)."""
        if parent_a.num_positions != parent_b.num_positions:
            raise ValueError("parents must have the same number of positions")
        mask = rng.random(parent_a.num_positions) < 0.5
        operations = tuple(
            parent_a.operations[i] if mask[i] else parent_b.operations[i]
            for i in range(parent_a.num_positions)
        )
        return Architecture(
            operations=operations,
            upper_functions=parent_a.upper_functions,
            lower_functions=parent_a.lower_functions,
            input_dim=parent_a.input_dim,
        )
