"""Periodic search checkpoints persisted through the ArtifactStore.

A :class:`SearchCheckpointer` binds one ``(store, key)`` pair — the same
content-addressed key the final search artifact will be stored under, in
a separate ``search_ckpt`` stage — and overwrites a single checkpoint
entry as the search progresses (supernet epoch by epoch, EA generation by
generation).  The checkpoint carries everything a killed search needs to
continue *bit-identically*:

* the shared search RNG state and the (stochastic) latency evaluator's
  RNG state,
* the virtual clock,
* the accuracy/latency fitness caches (as genotype documents, re-keyed on
  load),
* the evolutionary-search population/history/counters,
* the supernet weights and Adam optimiser slots (as arrays).

Any checkpoint is a valid resume point: work after it is recomputed, and
because everything downstream of the captured state is deterministic the
recomputation replays the original run exactly.  The entry is discarded
when the search completes (the final artifact supersedes it).

``save`` commits the entry *before* visiting the ``nas.search.checkpoint``
fault point, so a chaos plan that "kills" the process at a checkpoint
(an ``error`` spec) leaves a committed, resumable entry behind — the same
window a real SIGKILL right after a commit would leave.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.faults import fault_point
from repro.obs.metrics import get_metrics
from repro.utils.logging import get_logger
from repro.workspace.store import ArtifactStore

__all__ = ["SearchCheckpointer", "CHECKPOINT_STAGE"]

CHECKPOINT_STAGE = "search_ckpt"

_LOGGER = get_logger("nas.checkpoint")


class SearchCheckpointer:
    """One overwritable checkpoint slot for a search run."""

    def __init__(self, store: ArtifactStore, key: str, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.store = store
        self.key = key
        self.every = every
        self.saves = 0

    def accepts(self, progress: int) -> bool:
        """Whether an epoch/generation index is on the checkpoint cadence."""
        return self.every == 1 or progress % self.every == 0

    def save(self, meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray] | None = None) -> None:
        """Commit a checkpoint (atomic via the store's staged writes)."""
        self.store.save(CHECKPOINT_STAGE, self.key, meta, arrays)
        self.saves += 1
        get_metrics().count("nas.search.checkpoints")
        fault_point(
            "nas.search.checkpoint",
            phase=meta.get("phase"),
            progress=meta.get("progress"),
            saves=self.saves,
        )

    def load(self) -> tuple[dict, dict[str, np.ndarray]] | None:
        """The committed checkpoint as ``(meta, arrays)``, or ``None``."""
        if not self.store.contains(CHECKPOINT_STAGE, self.key):
            # Every fresh run probes for a resume point; don't let that
            # routine absence pollute the pipeline's hit/miss counters.
            return None
        artifact = self.store.load(CHECKPOINT_STAGE, self.key)
        if artifact is None:
            return None
        _LOGGER.info(
            "loaded search checkpoint %s (phase=%s progress=%s)",
            self.key,
            artifact.meta.get("phase"),
            artifact.meta.get("progress"),
        )
        return dict(artifact.meta), dict(artifact.arrays)

    def clear(self) -> None:
        """Drop the checkpoint (called when the search completes)."""
        self.store.discard(CHECKPOINT_STAGE, self.key)
