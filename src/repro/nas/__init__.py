"""HGNAS core: design space, one-shot supernet, evolutionary search.

This package implements the paper's primary contribution: the fine-grained
operation-based design space (Table I), the weight-sharing supernet, the
multi-stage hierarchical evolutionary search (Alg. 1) with the
hardware-constrained objective (Eq. 1-3), and utilities to visualise and
instantiate the searched architectures.
"""

from repro.nas.architecture import Architecture, EffectiveOp
from repro.nas.derived import DerivedModel
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.nas.evolution import EvolutionConfig, EvolutionResult, EvolutionarySearch, HistoryPoint
from repro.nas.latency_eval import (
    EvaluatorRequest,
    LatencyEvaluator,
    MeasurementLatencyEvaluator,
    OracleLatencyEvaluator,
    list_latency_evaluators,
    make_latency_evaluator,
    register_latency_evaluator,
    unregister_latency_evaluator,
)
from repro.nas.objective import ObjectiveConfig, hardware_constrained_score, objective_score
from repro.nas.ops import (
    AGGREGATOR_TYPES,
    COMBINE_DIMS,
    CONNECT_MODES,
    FUNCTION_FIELDS,
    MESSAGE_TYPES,
    SAMPLE_METHODS,
    FunctionSet,
    OperationType,
    function_space_size,
    mutate_function_set,
    random_function_set,
)
from repro.nas.presets import (
    device_acc_architecture,
    device_fast_architecture,
    dgcnn_architecture,
    intel_fast_architecture,
    pi_fast_architecture,
    rtx_fast_architecture,
    tx2_fast_architecture,
)
from repro.nas.search import HGNAS, HGNASConfig, SearchResult
from repro.nas.supernet import Supernet, SupernetConfig
from repro.nas.trainer import (
    EvalMetrics,
    TrainingHistory,
    evaluate_classifier,
    evaluate_path,
    train_classifier,
    train_supernet,
)
from repro.nas.visualize import architecture_summary, architecture_to_networkx, render_architecture

__all__ = [
    "Architecture",
    "EffectiveOp",
    "DerivedModel",
    "DesignSpace",
    "DesignSpaceConfig",
    "EvolutionConfig",
    "EvolutionResult",
    "EvolutionarySearch",
    "HistoryPoint",
    "EvaluatorRequest",
    "LatencyEvaluator",
    "MeasurementLatencyEvaluator",
    "OracleLatencyEvaluator",
    "list_latency_evaluators",
    "make_latency_evaluator",
    "register_latency_evaluator",
    "unregister_latency_evaluator",
    "ObjectiveConfig",
    "hardware_constrained_score",
    "objective_score",
    "AGGREGATOR_TYPES",
    "COMBINE_DIMS",
    "CONNECT_MODES",
    "FUNCTION_FIELDS",
    "MESSAGE_TYPES",
    "SAMPLE_METHODS",
    "FunctionSet",
    "OperationType",
    "function_space_size",
    "mutate_function_set",
    "random_function_set",
    "device_acc_architecture",
    "device_fast_architecture",
    "dgcnn_architecture",
    "intel_fast_architecture",
    "pi_fast_architecture",
    "rtx_fast_architecture",
    "tx2_fast_architecture",
    "HGNAS",
    "HGNASConfig",
    "SearchResult",
    "Supernet",
    "SupernetConfig",
    "EvalMetrics",
    "TrainingHistory",
    "evaluate_classifier",
    "evaluate_path",
    "train_classifier",
    "train_supernet",
    "architecture_summary",
    "architecture_to_networkx",
    "render_architecture",
]
