"""Multi-objective scoring of candidate architectures (paper Eq. 1-3).

The operation-search objective is

.. math::

    F_{obj}(C) = \\begin{cases}
        0 & \\text{if } lat \\geq C \\\\
        \\alpha \\cdot acc_{val} - \\beta \\cdot lat & \\text{if } lat < C
    \\end{cases}

Latency is normalised by a per-device reference (DGCNN's latency by
default) so that the accuracy term (in ``[0, 1]``) and the latency term are
commensurable and the alpha/beta ratio of Fig. 7 has a device-independent
meaning.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObjectiveConfig", "objective_score", "hardware_constrained_score"]


@dataclass(frozen=True)
class ObjectiveConfig:
    """Scaling factors and hardware constraint of the search objective.

    Attributes:
        alpha: Weight of validation accuracy.
        beta: Weight of (normalised) latency.
        latency_constraint_ms: Hard constraint ``C``; candidates at or above
            it score zero.  ``inf`` disables the constraint.
        latency_scale_ms: Normalisation constant for the latency term
            (typically the DGCNN latency on the target device).
    """

    alpha: float = 1.0
    beta: float = 0.5
    latency_constraint_ms: float = float("inf")
    latency_scale_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("at least one of alpha/beta must be positive")
        if self.latency_scale_ms <= 0:
            raise ValueError("latency_scale_ms must be positive")
        if self.latency_constraint_ms <= 0:
            raise ValueError("latency_constraint_ms must be positive")

    @property
    def alpha_beta_ratio(self) -> float:
        """The alpha:beta ratio explored in the paper's Fig. 7."""
        return self.alpha / self.beta if self.beta > 0 else float("inf")


def objective_score(accuracy: float, latency_ms: float, config: ObjectiveConfig) -> float:
    """Unconstrained part of the objective: ``alpha * acc - beta * lat_norm``."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
    if latency_ms < 0:
        raise ValueError(f"latency must be non-negative, got {latency_ms}")
    normalised_latency = latency_ms / config.latency_scale_ms
    return config.alpha * accuracy - config.beta * normalised_latency


def hardware_constrained_score(accuracy: float, latency_ms: float, config: ObjectiveConfig) -> float:
    """Full Eq. 3 objective: zero whenever the hardware constraint is violated."""
    if latency_ms >= config.latency_constraint_ms:
        return 0.0
    return objective_score(accuracy, latency_ms, config)
