"""Training and evaluation loops for classifiers and the one-shot supernet."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import DataLoader, InMemoryDataset
from repro.nas.architecture import Architecture
from repro.nas.supernet import Supernet
from repro.nn.layers import Module
from repro.nn.loss import accuracy, balanced_accuracy, cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import no_grad
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

__all__ = [
    "TrainingHistory",
    "EvalMetrics",
    "train_classifier",
    "evaluate_classifier",
    "train_supernet",
    "evaluate_path",
]


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy curves."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        return len(self.losses)


@dataclass(frozen=True)
class EvalMetrics:
    """Classification metrics over a dataset."""

    overall_accuracy: float
    balanced_accuracy: float
    loss: float
    num_samples: int


def _make_loader(
    dataset: InMemoryDataset, batch_size: int, shuffle: bool, rng: np.random.Generator
) -> DataLoader:
    return DataLoader(dataset, batch_size=batch_size, shuffle=shuffle, rng=rng)


def train_classifier(
    model: Module,
    train_dataset: InMemoryDataset,
    epochs: int = 10,
    batch_size: int = 8,
    lr: float = 3e-3,
    weight_decay: float = 1e-4,
    rng: np.random.Generator | None = None,
    val_dataset: InMemoryDataset | None = None,
    grad_clip: float = 5.0,
) -> TrainingHistory:
    """Train a point-cloud classifier with Adam and cross-entropy.

    Args:
        model: Any module mapping a :class:`~repro.data.Batch` to logits.
        train_dataset: Training samples.
        epochs: Number of passes over the training set.
        batch_size: Mini-batch size.
        lr: Learning rate.
        weight_decay: L2 regularisation strength.
        rng: Generator for shuffling (a fixed default is used if omitted).
        val_dataset: Optional dataset evaluated after every epoch.
        grad_clip: Global gradient-norm clip.

    Returns:
        The per-epoch training history.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    history = TrainingHistory()
    for epoch in range(epochs):
        with get_tracer().span("nn.classifier.epoch", epoch=epoch) as span:
            model.train()
            loader = _make_loader(train_dataset, batch_size, shuffle=True, rng=rng)
            epoch_losses: list[float] = []
            epoch_accs: list[float] = []
            for batch in loader:
                logits = model(batch)
                loss = cross_entropy(logits, batch.labels)
                model.zero_grad()
                loss.backward()
                clip_grad_norm(model.parameters(), grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
                epoch_accs.append(accuracy(logits, batch.labels))
            history.losses.append(float(np.mean(epoch_losses)))
            history.train_accuracies.append(float(np.mean(epoch_accs)))
            if val_dataset is not None:
                history.val_accuracies.append(
                    evaluate_classifier(model, val_dataset, batch_size).overall_accuracy
                )
            span.attributes.update(
                batches=len(epoch_losses),
                loss=history.losses[-1],
                accuracy=history.train_accuracies[-1],
            )
        get_metrics().count("nn.classifier.epochs")
    return history


def evaluate_classifier(
    model: Module, dataset: InMemoryDataset, batch_size: int = 8, max_batches: int | None = None
) -> EvalMetrics:
    """Evaluate a classifier: overall accuracy, balanced accuracy and loss."""
    model.eval()
    all_logits: list[np.ndarray] = []
    all_labels: list[np.ndarray] = []
    losses: list[float] = []
    loader = _make_loader(dataset, batch_size, shuffle=False, rng=np.random.default_rng(0))
    with no_grad():
        for index, batch in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            logits = model(batch)
            losses.append(cross_entropy(logits, batch.labels).item())
            all_logits.append(logits.data)
            all_labels.append(batch.labels)
    model.train()
    if not all_logits:
        return EvalMetrics(0.0, 0.0, 0.0, 0)
    logits = np.concatenate(all_logits, axis=0)
    labels = np.concatenate(all_labels, axis=0)
    return EvalMetrics(
        overall_accuracy=accuracy(logits, labels),
        balanced_accuracy=balanced_accuracy(logits, labels),
        loss=float(np.mean(losses)),
        num_samples=int(labels.shape[0]),
    )


def train_supernet(
    supernet: Supernet,
    train_dataset: InMemoryDataset,
    path_sampler: Callable[[np.random.Generator], Architecture],
    epochs: int = 5,
    batch_size: int = 8,
    lr: float = 3e-3,
    rng: np.random.Generator | None = None,
    grad_clip: float = 5.0,
    start_epoch: int = 0,
    optimizer_state: dict[str, np.ndarray] | None = None,
    on_epoch: Callable[[int, Adam], None] | None = None,
) -> TrainingHistory:
    """Train the one-shot supernet with uniform single-path sampling.

    A fresh random path is drawn for every mini-batch (single-path one-shot
    training as in Guo et al.), so every position/operation pair receives
    gradient signal over the course of an epoch.

    Args:
        supernet: The weight-sharing supernet.
        train_dataset: Training samples.
        path_sampler: Callable drawing a random :class:`Architecture` — this
            is where stage 1 (random functions) and stage 2 (fixed functions)
            differ.
        epochs: Number of passes over the training set.
        batch_size: Mini-batch size.
        lr: Learning rate.
        rng: Generator for shuffling and path sampling.
        grad_clip: Global gradient-norm clip.
        start_epoch: First epoch index to run (resume support: epochs
            ``[0, start_epoch)`` are assumed already applied to the weights,
            the optimizer state and ``rng``).
        optimizer_state: Optimiser slots captured by ``Adam.state_dict`` at
            the checkpoint being resumed.
        on_epoch: Called after every completed epoch with
            ``(epoch_index, optimizer)`` — the checkpoint hook.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    if not 0 <= start_epoch <= epochs:
        raise ValueError(f"start_epoch must lie in [0, {epochs}], got {start_epoch}")
    rng = rng if rng is not None else np.random.default_rng(0)
    optimizer = Adam(supernet.parameters(), lr=lr)
    if optimizer_state is not None:
        optimizer.load_state_dict(optimizer_state)
    history = TrainingHistory()
    for epoch in range(start_epoch, epochs):
        with get_tracer().span("nas.supernet.epoch", epoch=epoch) as span:
            supernet.train()
            loader = _make_loader(train_dataset, batch_size, shuffle=True, rng=rng)
            epoch_losses: list[float] = []
            epoch_accs: list[float] = []
            for batch in loader:
                path = path_sampler(rng)
                logits = supernet(batch, path)
                loss = cross_entropy(logits, batch.labels)
                supernet.zero_grad()
                loss.backward()
                clip_grad_norm(supernet.parameters(), grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
                epoch_accs.append(accuracy(logits, batch.labels))
            history.losses.append(float(np.mean(epoch_losses)))
            history.train_accuracies.append(float(np.mean(epoch_accs)))
            span.attributes.update(
                batches=len(epoch_losses),
                loss=history.losses[-1],
                accuracy=history.train_accuracies[-1],
            )
        get_metrics().count("nas.supernet.epochs")
        if on_epoch is not None:
            on_epoch(epoch, optimizer)
    return history


def evaluate_path(
    supernet: Supernet,
    architecture: Architecture,
    dataset: InMemoryDataset,
    batch_size: int = 8,
    max_batches: int | None = None,
) -> float:
    """Weight-sharing validation accuracy of one path through the supernet."""
    supernet.eval()
    all_logits: list[np.ndarray] = []
    all_labels: list[np.ndarray] = []
    loader = _make_loader(dataset, batch_size, shuffle=False, rng=np.random.default_rng(0))
    with no_grad():
        for index, batch in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            logits = supernet(batch, architecture)
            all_logits.append(logits.data)
            all_labels.append(batch.labels)
    supernet.train()
    if not all_logits:
        return 0.0
    return accuracy(np.concatenate(all_logits, axis=0), np.concatenate(all_labels, axis=0))
