"""Architecture genotype of the fine-grained design space.

An :class:`Architecture` assigns one operation to each supernet position
and carries the two shared :class:`~repro.nas.ops.FunctionSet` objects
(upper / lower half).  It knows how to:

* resolve itself into a list of *effective operations*
  (:meth:`Architecture.effective_ops`) — consecutive sample operations are
  merged (the paper notes that adjacent KNN constructions are duplicates)
  and aggregates with no preceding sample trigger an implicit graph build;
* lower itself to a hardware :class:`~repro.hardware.workload.Workload`
  (:meth:`Architecture.to_workload`), which is what the latency/memory
  models and the latency predictor's training-label generation consume;
* serialise to/from plain dictionaries for checkpoints and experiment logs.

Execution semantics of the operations (used consistently by the workload
lowering, the one-shot supernet and the derived stand-alone models):

* ``sample``  — (re)build the neighbourhood graph with the half's sample
  method; feature width unchanged.
* ``aggregate`` — build per-edge messages with the half's message type and
  reduce them with the half's aggregator; the output width equals the
  message width.
* ``combine`` — linear transformation (plus activation) to the half's
  combine dimension.
* ``connect`` — ``skip`` concatenates the original input features to the
  current features (a lightweight residual path); ``identity`` is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.message import message_dim
from repro.hardware.workload import OpDescriptor, Workload
from repro.nas.ops import FunctionSet, OperationType

__all__ = ["EffectiveOp", "Architecture", "effective_op_to_descriptor"]


def effective_op_to_descriptor(op: "EffectiveOp", num_points: int, k: int) -> OpDescriptor:
    """Lower one effective operation to a hardware op descriptor.

    Shared by :meth:`Architecture.to_workload` and the latency predictor's
    feature encoding so both always agree on the executed operation shapes.
    """
    edges = num_points * k
    if op.kind == "sample":
        kind = "knn_sample" if op.sample_method == "knn" else "random_sample"
        return OpDescriptor(
            kind=kind,
            num_points=num_points,
            num_edges=edges,
            in_dim=op.in_dim,
            name=f"pos{op.position}.{op.sample_method}_sample",
        )
    if op.kind == "aggregate":
        return OpDescriptor(
            kind="aggregate",
            num_points=num_points,
            num_edges=edges,
            in_dim=op.in_dim,
            out_dim=op.out_dim,
            message_dim=op.out_dim,
            name=f"pos{op.position}.aggregate",
        )
    if op.kind == "combine":
        return OpDescriptor(
            kind="combine",
            num_points=num_points,
            in_dim=op.in_dim,
            out_dim=op.out_dim,
            name=f"pos{op.position}.combine",
        )
    if op.kind == "connect_skip":
        return OpDescriptor(
            kind="connect_skip",
            num_points=num_points,
            in_dim=op.in_dim,
            out_dim=op.out_dim,
            name=f"pos{op.position}.skip",
        )
    raise ValueError(f"unhandled effective op kind '{op.kind}'")


@dataclass(frozen=True)
class EffectiveOp:
    """One operation of the resolved (post-merge) architecture."""

    kind: str  # 'sample' | 'aggregate' | 'combine' | 'connect_skip'
    position: int
    in_dim: int
    out_dim: int
    sample_method: str = ""
    aggregator: str = ""
    message_type: str = ""
    combine_dim: int = 0

    def describe(self) -> str:
        """Short human-readable description (used by the visualiser)."""
        if self.kind == "sample":
            return "KNN" if self.sample_method == "knn" else "RandomSample"
        if self.kind == "aggregate":
            return f"Aggregate ({self.message_type}, {self.aggregator})"
        if self.kind == "combine":
            return f"Combine ({self.out_dim})"
        return "Skip-connect"


@dataclass(frozen=True)
class Architecture:
    """A point in the fine-grained design space."""

    operations: tuple[OperationType, ...]
    upper_functions: FunctionSet = field(default_factory=FunctionSet)
    lower_functions: FunctionSet = field(default_factory=FunctionSet)
    input_dim: int = 3
    name: str = ""

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError("an architecture needs at least one position")
        operations = tuple(OperationType(op) for op in self.operations)
        object.__setattr__(self, "operations", operations)
        if self.input_dim <= 0:
            raise ValueError("input_dim must be positive")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_positions(self) -> int:
        return len(self.operations)

    def functions_at(self, position: int) -> FunctionSet:
        """Function set governing ``position`` (upper half shares one set,
        lower half the other, following Alg. 1 stage 1)."""
        if not 0 <= position < self.num_positions:
            raise IndexError(f"position {position} out of range")
        half = self.num_positions // 2
        return self.upper_functions if position < half else self.lower_functions

    def count(self, operation: OperationType) -> int:
        """Number of positions holding the given operation."""
        return sum(1 for op in self.operations if op is operation)

    def key(self) -> tuple:
        """Hashable identity used for deduplication during search."""
        return (
            tuple(op.value for op in self.operations),
            tuple(sorted(self.upper_functions.to_dict().items())),
            tuple(sorted(self.lower_functions.to_dict().items())),
            self.input_dim,
        )

    # ------------------------------------------------------------------ #
    # Resolution into effective operations
    # ------------------------------------------------------------------ #
    def effective_ops(self) -> list[EffectiveOp]:
        """Resolve positions into the merged list of executed operations.

        Consecutive sample operations collapse into the last one, sample
        operations never followed by an aggregate are dropped, aggregates
        with no prior graph get an implicit sample inserted, and identity
        connects vanish.
        """
        ops: list[EffectiveOp] = []
        dim = self.input_dim
        has_graph = False
        pending_sample: EffectiveOp | None = None

        def flush_sample() -> None:
            nonlocal pending_sample, has_graph
            if pending_sample is not None:
                ops.append(pending_sample)
                has_graph = True
                pending_sample = None

        for position, operation in enumerate(self.operations):
            functions = self.functions_at(position)
            if operation is OperationType.SAMPLE:
                # Adjacent samples merge: only the most recent one survives.
                pending_sample = EffectiveOp(
                    kind="sample",
                    position=position,
                    in_dim=dim,
                    out_dim=dim,
                    sample_method=functions.sample_method,
                )
            elif operation is OperationType.AGGREGATE:
                if pending_sample is None and not has_graph:
                    # Implicit graph construction so the aggregate is well defined.
                    pending_sample = EffectiveOp(
                        kind="sample",
                        position=position,
                        in_dim=dim,
                        out_dim=dim,
                        sample_method=functions.sample_method,
                    )
                flush_sample()
                out_dim = message_dim(functions.message_type, dim)
                ops.append(
                    EffectiveOp(
                        kind="aggregate",
                        position=position,
                        in_dim=dim,
                        out_dim=out_dim,
                        aggregator=functions.aggregator,
                        message_type=functions.message_type,
                    )
                )
                dim = out_dim
            elif operation is OperationType.COMBINE:
                flush_sample()
                ops.append(
                    EffectiveOp(
                        kind="combine",
                        position=position,
                        in_dim=dim,
                        out_dim=functions.combine_dim,
                        combine_dim=functions.combine_dim,
                    )
                )
                dim = functions.combine_dim
            elif operation is OperationType.CONNECT:
                if functions.connect_mode == "skip":
                    flush_sample()
                    ops.append(
                        EffectiveOp(
                            kind="connect_skip",
                            position=position,
                            in_dim=dim,
                            out_dim=dim + self.input_dim,
                        )
                    )
                    dim = dim + self.input_dim
                # identity: nothing to execute
            else:  # pragma: no cover - enum is exhaustive
                raise ValueError(f"unhandled operation {operation}")
        # A trailing sample never followed by an aggregate is dead and dropped.
        return ops

    def output_dim(self) -> int:
        """Feature width entering the classifier head."""
        ops = self.effective_ops()
        return ops[-1].out_dim if ops else self.input_dim

    def num_valid_samples(self) -> int:
        """Number of graph constructions actually executed (post merge)."""
        return sum(1 for op in self.effective_ops() if op.kind == "sample")

    # ------------------------------------------------------------------ #
    # Lowering to the hardware IR
    # ------------------------------------------------------------------ #
    def to_workload(
        self,
        num_points: int = 1024,
        k: int = 20,
        num_classes: int = 40,
    ) -> Workload:
        """Lower to a device-independent hardware workload.

        Args:
            num_points: Point-cloud size of the deployment scenario.
            k: Neighbourhood size used by sample operations.
            num_classes: Output classes of the final classifier.
        """
        if num_points <= 0 or k <= 0 or num_classes <= 1:
            raise ValueError("num_points, k must be positive and num_classes > 1")
        workload = Workload(num_points=num_points, name=self.name or "architecture")
        for op in self.effective_ops():
            workload.add(effective_op_to_descriptor(op, num_points, k))
        final_dim = self.output_dim()
        workload.add(
            OpDescriptor(kind="pooling", num_points=num_points, in_dim=final_dim, name="global_pool")
        )
        workload.add(
            OpDescriptor(
                kind="classifier",
                num_points=num_points,
                in_dim=2 * final_dim,
                out_dim=num_classes,
                name="classifier",
            )
        )
        return workload

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """Serialise to a plain dictionary (JSON compatible)."""
        return {
            "operations": [op.value for op in self.operations],
            "upper_functions": self.upper_functions.to_dict(),
            "lower_functions": self.lower_functions.to_dict(),
            "input_dim": self.input_dim,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Architecture":
        """Deserialise from :meth:`to_dict` output."""
        return cls(
            operations=tuple(OperationType(op) for op in data["operations"]),
            upper_functions=FunctionSet.from_dict(data["upper_functions"]),
            lower_functions=FunctionSet.from_dict(data["lower_functions"]),
            input_dim=int(data.get("input_dim", 3)),
            name=str(data.get("name", "")),
        )

    @classmethod
    def random(
        cls,
        num_positions: int,
        rng: np.random.Generator,
        upper_functions: FunctionSet | None = None,
        lower_functions: FunctionSet | None = None,
        input_dim: int = 3,
    ) -> "Architecture":
        """Sample an architecture with uniformly random operations."""
        from repro.nas.ops import random_function_set

        choices = OperationType.list()
        operations = tuple(choices[int(i)] for i in rng.integers(0, len(choices), size=num_positions))
        return cls(
            operations=operations,
            upper_functions=upper_functions or random_function_set(rng),
            lower_functions=lower_functions or random_function_set(rng),
            input_dim=input_dim,
        )
