"""Generic evolutionary search used by both stages of Alg. 1.

The evolutionary algorithm is genotype-agnostic: the caller supplies
initialisation, mutation, crossover and evaluation callables.  Fitness
evaluations are cached by genotype key, the best-so-far trajectory is
recorded against a (virtual) clock, and ties are broken deterministically,
so search runs are fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, TypeVar

import numpy as np

from repro.utils.timer import VirtualClock

__all__ = ["EvolutionConfig", "HistoryPoint", "EvolutionResult", "EvolutionarySearch"]

Genotype = TypeVar("Genotype")


@dataclass(frozen=True)
class EvolutionConfig:
    """Evolution hyper-parameters (paper defaults: population 20)."""

    population_size: int = 20
    parent_fraction: float = 0.5
    mutation_probability: float = 0.8
    crossover_probability: float = 0.5
    mutations_per_child: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not 0 < self.parent_fraction <= 1:
            raise ValueError("parent_fraction must be in (0, 1]")
        if not 0 <= self.mutation_probability <= 1:
            raise ValueError("mutation_probability must be in [0, 1]")
        if not 0 <= self.crossover_probability <= 1:
            raise ValueError("crossover_probability must be in [0, 1]")
        if self.mutations_per_child <= 0:
            raise ValueError("mutations_per_child must be positive")


@dataclass(frozen=True)
class HistoryPoint:
    """Best-so-far snapshot after one generation."""

    iteration: int
    evaluations: int
    best_score: float
    clock_s: float


@dataclass
class EvolutionResult(Generic[Genotype]):
    """Outcome of an evolutionary run."""

    best: Genotype
    best_score: float
    history: list[HistoryPoint] = field(default_factory=list)
    population: list[tuple[Genotype, float]] = field(default_factory=list)
    evaluations: int = 0


class EvolutionarySearch(Generic[Genotype]):
    """Mutation/crossover EA with fitness caching and elitist selection."""

    def __init__(
        self,
        config: EvolutionConfig,
        initialize: Callable[[np.random.Generator], Genotype],
        mutate: Callable[[Genotype, np.random.Generator, int], Genotype],
        evaluate: Callable[[Genotype], float],
        rng: np.random.Generator,
        crossover: Callable[[Genotype, Genotype, np.random.Generator], Genotype] | None = None,
        key: Callable[[Genotype], Hashable] | None = None,
        clock: VirtualClock | None = None,
        evaluation_cost_s: float = 0.0,
    ):
        self.config = config
        self.initialize = initialize
        self.mutate = mutate
        self.crossover = crossover
        self.evaluate_fn = evaluate
        self.key_fn = key if key is not None else (lambda genotype: genotype)
        self.rng = rng
        self.clock = clock if clock is not None else VirtualClock()
        self.evaluation_cost_s = evaluation_cost_s
        self._cache: dict[Hashable, float] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------ #
    def _evaluate(self, genotype: Genotype) -> float:
        cache_key = self.key_fn(genotype)
        if cache_key in self._cache:
            return self._cache[cache_key]
        score = float(self.evaluate_fn(genotype))
        self._cache[cache_key] = score
        self.evaluations += 1
        self.clock.advance(self.evaluation_cost_s)
        return score

    def _make_child(self, parents: list[tuple[Genotype, float]]) -> Genotype:
        first = parents[int(self.rng.integers(0, len(parents)))][0]
        child = first
        if (
            self.crossover is not None
            and len(parents) > 1
            and self.rng.random() < self.config.crossover_probability
        ):
            second = parents[int(self.rng.integers(0, len(parents)))][0]
            child = self.crossover(first, second, self.rng)
        if self.rng.random() < self.config.mutation_probability or child is first:
            child = self.mutate(child, self.rng, self.config.mutations_per_child)
        return child

    def run(self, iterations: int) -> EvolutionResult[Genotype]:
        """Run the EA for ``iterations`` generations.

        Args:
            iterations: Number of generations after the random initial one.

        Returns:
            The best genotype found, its score and the search history.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        population: list[tuple[Genotype, float]] = []
        for _ in range(self.config.population_size):
            genotype = self.initialize(self.rng)
            population.append((genotype, self._evaluate(genotype)))
        population.sort(key=lambda item: item[1], reverse=True)
        history = [
            HistoryPoint(
                iteration=0,
                evaluations=self.evaluations,
                best_score=population[0][1],
                clock_s=self.clock.now,
            )
        ]

        num_parents = max(2, int(round(self.config.parent_fraction * self.config.population_size)))
        for iteration in range(1, iterations + 1):
            parents = population[:num_parents]
            children: list[tuple[Genotype, float]] = []
            while len(children) < self.config.population_size - num_parents:
                child = self._make_child(parents)
                children.append((child, self._evaluate(child)))
            population = parents + children
            population.sort(key=lambda item: item[1], reverse=True)
            history.append(
                HistoryPoint(
                    iteration=iteration,
                    evaluations=self.evaluations,
                    best_score=population[0][1],
                    clock_s=self.clock.now,
                )
            )

        best, best_score = population[0]
        return EvolutionResult(
            best=best,
            best_score=best_score,
            history=history,
            population=population,
            evaluations=self.evaluations,
        )
