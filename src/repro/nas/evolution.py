"""Generic evolutionary search used by both stages of Alg. 1.

The evolutionary algorithm is genotype-agnostic: the caller supplies
initialisation, mutation, crossover and evaluation callables.  Fitness
evaluations are cached by genotype key, the best-so-far trajectory is
recorded against a (virtual) clock, and ties are broken deterministically,
so search runs are fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, TypeVar

import numpy as np

from repro.nn.dtype import WIDE_DTYPE
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.utils.timer import VirtualClock

__all__ = ["EvolutionConfig", "HistoryPoint", "EvolutionResult", "EvolutionarySearch"]

Genotype = TypeVar("Genotype")


@dataclass(frozen=True)
class EvolutionConfig:
    """Evolution hyper-parameters (paper defaults: population 20)."""

    population_size: int = 20
    parent_fraction: float = 0.5
    mutation_probability: float = 0.8
    crossover_probability: float = 0.5
    mutations_per_child: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not 0 < self.parent_fraction <= 1:
            raise ValueError("parent_fraction must be in (0, 1]")
        if not 0 <= self.mutation_probability <= 1:
            raise ValueError("mutation_probability must be in [0, 1]")
        if not 0 <= self.crossover_probability <= 1:
            raise ValueError("crossover_probability must be in [0, 1]")
        if self.mutations_per_child <= 0:
            raise ValueError("mutations_per_child must be positive")

    @property
    def num_parents(self) -> int:
        """Elite count per generation, clamped to ``population_size - 1``.

        The upper clamp guarantees at least one child per generation: with
        e.g. ``population_size=2`` and ``parent_fraction=0.5`` the former
        ``max(2, 1) = 2`` parents left zero slots for children and the
        search silently never moved past its initial population.
        """
        proposed = max(2, int(round(self.parent_fraction * self.population_size)))
        return min(proposed, self.population_size - 1)


@dataclass(frozen=True)
class HistoryPoint:
    """Best-so-far snapshot after one generation."""

    iteration: int
    evaluations: int
    best_score: float
    clock_s: float


@dataclass
class EvolutionResult(Generic[Genotype]):
    """Outcome of an evolutionary run."""

    best: Genotype
    best_score: float
    history: list[HistoryPoint] = field(default_factory=list)
    population: list[tuple[Genotype, float]] = field(default_factory=list)
    evaluations: int = 0
    #: Candidates rejected by the static validator before fitness scoring.
    rejections: int = 0


class EvolutionarySearch(Generic[Genotype]):
    """Mutation/crossover EA with fitness caching and elitist selection.

    Fitness is obtained either genotype-by-genotype through ``evaluate`` or
    — when the caller provides ``evaluate_many`` — in one batched call per
    generation, which lets vectorized scorers (e.g. the batched latency
    predictor) amortise their per-call overhead over the whole population.
    Both paths share the per-genotype fitness cache and advance the clock by
    ``evaluation_cost_s`` per *uncached* genotype, so the batched search is
    indistinguishable from the sequential one whenever ``evaluate_many``
    returns the same scores as mapping ``evaluate`` (note: a batched scorer
    must not consume this search's ``rng``, because batching reorders
    evaluation relative to child generation).
    """

    def __init__(
        self,
        config: EvolutionConfig,
        initialize: Callable[[np.random.Generator], Genotype],
        mutate: Callable[[Genotype, np.random.Generator, int], Genotype],
        evaluate: Callable[[Genotype], float],
        rng: np.random.Generator,
        crossover: Callable[[Genotype, Genotype, np.random.Generator], Genotype] | None = None,
        key: Callable[[Genotype], Hashable] | None = None,
        clock: VirtualClock | None = None,
        evaluation_cost_s: float = 0.0,
        evaluate_many: Callable[[list[Genotype]], "np.ndarray | list[float]"] | None = None,
        validate: Callable[[Genotype], bool] | None = None,
        max_validation_attempts: int = 32,
    ):
        if max_validation_attempts <= 0:
            raise ValueError("max_validation_attempts must be positive")
        self.config = config
        self.initialize = initialize
        self.mutate = mutate
        self.crossover = crossover
        self.evaluate_fn = evaluate
        self.evaluate_many_fn = evaluate_many
        self.key_fn = key if key is not None else (lambda genotype: genotype)
        self.rng = rng
        self.clock = clock if clock is not None else VirtualClock()
        self.evaluation_cost_s = evaluation_cost_s
        self.validate_fn = validate
        self.max_validation_attempts = max_validation_attempts
        self._cache: dict[Hashable, float] = {}
        # Genotype behind every cache key, so the cache can be serialized
        # into a checkpoint (keys are arbitrary hashables; genotypes have
        # caller-supplied encoders).
        self._cache_genotypes: dict[Hashable, Genotype] = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.rejections = 0
        # Resumable run state: generations completed so far live on the
        # instance, so run() can continue from a restored checkpoint.
        self._population: list[tuple[Genotype, float]] | None = None
        self._history: list[HistoryPoint] = []
        self._next_iteration = 0

    # ------------------------------------------------------------------ #
    def _evaluate(self, genotype: Genotype) -> float:
        cache_key = self.key_fn(genotype)
        if cache_key in self._cache:
            self.cache_hits += 1
            return self._cache[cache_key]
        score = float(self.evaluate_fn(genotype))
        self._cache[cache_key] = score
        self._cache_genotypes[cache_key] = genotype
        self.evaluations += 1
        self.clock.advance(self.evaluation_cost_s)
        return score

    def _evaluate_batch(self, genotypes: list[Genotype]) -> list[float]:
        """Score ``genotypes`` through one ``evaluate_many`` call.

        Duplicate and already-cached genotypes are evaluated at most once
        (matching the sequential cache semantics); the clock advances by
        ``evaluation_cost_s`` per uncached genotype.
        """
        keys = [self.key_fn(genotype) for genotype in genotypes]
        pending: dict[Hashable, Genotype] = {}
        for cache_key, genotype in zip(keys, genotypes):
            if cache_key not in self._cache and cache_key not in pending:
                pending[cache_key] = genotype
        # Every lookup that does not trigger a fresh evaluation was served
        # by the fitness cache, exactly as in the sequential path.
        self.cache_hits += len(genotypes) - len(pending)
        if pending:
            batch = list(pending.values())
            scores = np.asarray(self.evaluate_many_fn(batch), dtype=WIDE_DTYPE)
            if scores.shape != (len(batch),):
                raise ValueError(
                    f"evaluate_many returned shape {scores.shape} for {len(batch)} genotypes"
                )
            for cache_key, score in zip(pending, scores):
                self._cache[cache_key] = float(score)
                self._cache_genotypes[cache_key] = pending[cache_key]
                self.evaluations += 1
                # One advance per genotype (not one multiplied advance):
                # float addition is order-sensitive, and the sequential path
                # accumulates the cost term by term.
                self.clock.advance(self.evaluation_cost_s)
        return [self._cache[cache_key] for cache_key in keys]

    def _spawn_valid(self, spawn: Callable[[], Genotype]) -> Genotype:
        """Draw from ``spawn`` until ``validate`` accepts (or no validator set).

        Rejected candidates never reach fitness scoring: the clock does not
        advance and the fitness cache is untouched; only the ``rejections``
        counter and the ``nas.analysis.rejected`` metric record them.  When
        every genotype passes, the shared ``rng`` stream is byte-identical
        to an unvalidated run (the validator itself must not draw from it).
        """
        if self.validate_fn is None:
            return spawn()
        for _ in range(self.max_validation_attempts):
            genotype = spawn()
            if self.validate_fn(genotype):
                return genotype
            self.rejections += 1
            get_metrics().count("nas.analysis.rejected")
        raise RuntimeError(
            f"no valid genotype in {self.max_validation_attempts} attempts; "
            "the mutation operator cannot escape an invalid region of the space"
        )

    def _spawn_and_score(
        self, count: int, spawn: Callable[[], Genotype]
    ) -> list[tuple[Genotype, float]]:
        """Generate ``count`` (valid) genotypes and score them.

        Without ``evaluate_many`` this interleaves generation and evaluation
        exactly like the historical sequential loop (an ``evaluate`` that
        draws from the shared ``rng`` therefore sees an unchanged stream);
        with it, the whole cohort is generated first and scored in one
        batched call.
        """
        if self.evaluate_many_fn is None:
            scored = []
            for _ in range(count):
                genotype = self._spawn_valid(spawn)
                scored.append((genotype, self._evaluate(genotype)))
            return scored
        genotypes = [self._spawn_valid(spawn) for _ in range(count)]
        return list(zip(genotypes, self._evaluate_batch(genotypes)))

    def _make_child(self, parents: list[tuple[Genotype, float]]) -> Genotype:
        first = parents[int(self.rng.integers(0, len(parents)))][0]
        child = first
        if (
            self.crossover is not None
            and len(parents) > 1
            and self.rng.random() < self.config.crossover_probability
        ):
            second = parents[int(self.rng.integers(0, len(parents)))][0]
            child = self.crossover(first, second, self.rng)
        if self.rng.random() < self.config.mutation_probability or child is first:
            child = self.mutate(child, self.rng, self.config.mutations_per_child)
        return child

    def _traced_generation(
        self, iteration: int, produce: Callable[[], list[tuple[Genotype, float]]]
    ) -> list[tuple[Genotype, float]]:
        """Run one generation inside a span, recording per-generation metrics.

        The span carries population size, fresh-evaluation and cache-hit
        counts, best/mean fitness and the virtual-clock charge of the
        generation; the default registry accumulates the same quantities as
        ``nas.evolution.*`` counters/gauges.  Purely observational — the
        genotypes, scores and clock are untouched.
        """
        metrics = get_metrics()
        evaluations_before = self.evaluations
        hits_before = self.cache_hits
        rejections_before = self.rejections
        clock_before = self.clock.now
        with get_tracer().span("nas.evolution.generation", iteration=iteration) as span:
            population = produce()
            population.sort(key=lambda item: item[1], reverse=True)
            scores = [score for _, score in population]
            span.attributes.update(
                population=len(population),
                evaluations=self.evaluations - evaluations_before,
                cache_hits=self.cache_hits - hits_before,
                rejections=self.rejections - rejections_before,
                best_fitness=float(population[0][1]),
                mean_fitness=float(np.mean(scores)),
                clock_s=self.clock.now - clock_before,
            )
        metrics.count("nas.evolution.generations")
        metrics.count("nas.evolution.evaluations", self.evaluations - evaluations_before)
        metrics.count("nas.evolution.cache_hits", self.cache_hits - hits_before)
        metrics.count("nas.evolution.clock_s", self.clock.now - clock_before)
        metrics.set_gauge("nas.evolution.best_fitness", float(population[0][1]), aggregate="max")
        return population

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def state_dict(self, encode: Callable[[Genotype], object]) -> dict:
        """JSON-compatible snapshot of the run state after a generation.

        ``encode`` maps one genotype to a JSON-compatible document (the
        inverse of ``load_state_dict``'s ``decode``).  The snapshot covers
        everything :meth:`run` consumes besides the shared ``rng``/``clock``
        (which the caller checkpoints alongside): population, history,
        fitness cache and the bookkeeping counters.
        """
        if self._population is None:
            raise RuntimeError("no generation has completed; nothing to checkpoint")
        return {
            "next_iteration": self._next_iteration,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "rejections": self.rejections,
            "population": [[encode(genotype), float(score)] for genotype, score in self._population],
            "history": [
                {
                    "iteration": point.iteration,
                    "evaluations": point.evaluations,
                    "best_score": point.best_score,
                    "clock_s": point.clock_s,
                }
                for point in self._history
            ],
            "cache": [
                [encode(self._cache_genotypes[cache_key]), float(score)]
                for cache_key, score in self._cache.items()
            ],
        }

    def load_state_dict(self, state: dict, decode: Callable[[object], Genotype]) -> None:
        """Restore a :meth:`state_dict` snapshot; the next :meth:`run` resumes.

        Cache keys are rebuilt through ``key_fn`` from the decoded
        genotypes, so the restored cache is keyed identically to one built
        by a live run.
        """
        self._cache = {}
        self._cache_genotypes = {}
        for document, score in state["cache"]:
            genotype = decode(document)
            cache_key = self.key_fn(genotype)
            self._cache[cache_key] = float(score)
            self._cache_genotypes[cache_key] = genotype
        self._population = [(decode(document), float(score)) for document, score in state["population"]]
        self._history = [HistoryPoint(**point) for point in state["history"]]
        self._next_iteration = int(state["next_iteration"])
        self.evaluations = int(state["evaluations"])
        self.cache_hits = int(state["cache_hits"])
        self.rejections = int(state["rejections"])

    def _record_generation(self, iteration: int) -> None:
        assert self._population is not None
        self._history.append(
            HistoryPoint(
                iteration=iteration,
                evaluations=self.evaluations,
                best_score=self._population[0][1],
                clock_s=self.clock.now,
            )
        )
        self._next_iteration = iteration + 1

    def run(
        self,
        iterations: int,
        on_generation: Callable[[int], None] | None = None,
    ) -> EvolutionResult[Genotype]:
        """Run the EA for ``iterations`` generations.

        Args:
            iterations: Number of generations after the random initial one.
            on_generation: Called after every completed generation with its
                index — the checkpoint hook (generation state is readable
                through :meth:`state_dict` at that moment).

        Returns:
            The best genotype found, its score and the search history.

        After :meth:`load_state_dict`, already-completed generations are
        skipped and the run continues exactly where the snapshot left off
        (bit-identical to an uninterrupted run given identically restored
        ``rng``/``clock``).
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if self._population is None:
            self._population = self._traced_generation(
                0,
                lambda: self._spawn_and_score(
                    self.config.population_size, lambda: self.initialize(self.rng)
                ),
            )
            self._record_generation(0)
            if on_generation is not None:
                on_generation(0)

        num_parents = self.config.num_parents
        num_children = self.config.population_size - num_parents
        for iteration in range(self._next_iteration, iterations + 1):
            parents = self._population[:num_parents]
            self._population = self._traced_generation(
                iteration,
                lambda parents=parents: parents
                + self._spawn_and_score(num_children, lambda: self._make_child(parents)),
            )
            self._record_generation(iteration)
            if on_generation is not None:
                on_generation(iteration)

        best, best_score = self._population[0]
        return EvolutionResult(
            best=best,
            best_score=best_score,
            history=list(self._history),
            population=list(self._population),
            evaluations=self.evaluations,
            rejections=self.rejections,
        )
