"""Text visualisation of architectures (the paper's Fig. 10)."""

from __future__ import annotations

import networkx as nx

from repro.nas.architecture import Architecture

__all__ = ["render_architecture", "architecture_summary", "architecture_to_networkx"]


def render_architecture(architecture: Architecture, title: str | None = None) -> str:
    """Render an architecture as a vertical op chain (Fig. 10 style).

    Adjacent KNN operations are already merged by
    :meth:`Architecture.effective_ops`, matching the paper's note that
    duplicate graph constructions are removed during execution.
    """
    lines: list[str] = []
    header = title or architecture.name or "architecture"
    lines.append(header)
    lines.append("=" * len(header))
    for op in architecture.effective_ops():
        lines.append(f"  {op.describe()}")
        lines.append("    |")
    lines.append("  Classifier")
    return "\n".join(lines)


def architecture_summary(architecture: Architecture) -> dict[str, object]:
    """Structured summary used by experiment reports."""
    ops = architecture.effective_ops()
    return {
        "name": architecture.name or "architecture",
        "num_positions": architecture.num_positions,
        "num_effective_ops": len(ops),
        "num_samples": sum(1 for op in ops if op.kind == "sample"),
        "num_aggregates": sum(1 for op in ops if op.kind == "aggregate"),
        "num_combines": sum(1 for op in ops if op.kind == "combine"),
        "num_skips": sum(1 for op in ops if op.kind == "connect_skip"),
        "output_dim": architecture.output_dim(),
        "ops": [op.describe() for op in ops] + ["Classifier"],
    }


def architecture_to_networkx(architecture: Architecture) -> nx.DiGraph:
    """Convert the effective op chain into a directed graph.

    Nodes are the input, every effective operation, and the output
    (classifier); edges follow the dataflow.  This mirrors the abstraction
    the latency predictor consumes (Fig. 5), minus the global node, which
    :mod:`repro.predictor.arch_graph` adds.
    """
    graph = nx.DiGraph()
    graph.add_node("input", kind="input")
    previous = "input"
    for index, op in enumerate(architecture.effective_ops()):
        node = f"op{index}"
        graph.add_node(node, kind=op.kind, label=op.describe())
        graph.add_edge(previous, node)
        previous = node
    graph.add_node("output", kind="output")
    graph.add_edge(previous, "output")
    return graph
