"""Latency evaluators used during architecture search.

Three interchangeable oracles provide the ``lat(A, H)`` term of the search
objective:

* :class:`OracleLatencyEvaluator` — the noise-free analytical model
  (useful for tests and for generating predictor training labels).
* :class:`MeasurementLatencyEvaluator` — the simulated on-device
  measurement: noisy and *slow* (each query advances the search clock by the
  device's measurement round trip), reproducing the cost of real-time
  measurement in Fig. 9(a).
* ``PredictorLatencyEvaluator`` (in :mod:`repro.predictor.evaluator`) — the
  paper's GNN-based predictor: approximate but answers in milliseconds.

All evaluators share the same duck-typed interface: ``evaluate(architecture)
-> latency in ms`` and ``query_cost_s`` (simulated wall-clock cost of one
query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.hardware.measurement import DeviceMeasurement
from repro.nas.architecture import Architecture

__all__ = ["LatencyEvaluator", "OracleLatencyEvaluator", "MeasurementLatencyEvaluator"]


class LatencyEvaluator(Protocol):
    """Interface of a latency oracle used by the search."""

    query_cost_s: float

    def evaluate(self, architecture: Architecture) -> float:
        """Return the estimated/measured latency of ``architecture`` in ms."""
        ...


@dataclass
class OracleLatencyEvaluator:
    """Noise-free analytical latency (zero query cost)."""

    device: DeviceSpec
    num_points: int = 1024
    k: int = 20
    num_classes: int = 40
    query_cost_s: float = 0.0

    def evaluate(self, architecture: Architecture) -> float:
        workload = architecture.to_workload(self.num_points, self.k, self.num_classes)
        return estimate_latency(workload, self.device).total_ms


@dataclass
class MeasurementLatencyEvaluator:
    """Simulated on-device measurement: accurate but slow and noisy."""

    device: DeviceSpec
    num_points: int = 1024
    k: int = 20
    num_classes: int = 40
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        self._measurement = DeviceMeasurement(device=self.device, rng=self.rng)
        self.query_cost_s = self.device.measurement_round_trip_s

    def evaluate(self, architecture: Architecture) -> float:
        workload = architecture.to_workload(self.num_points, self.k, self.num_classes)
        return self._measurement.measure_latency_ms(workload)
