"""Latency evaluators used during architecture search.

Three interchangeable oracles provide the ``lat(A, H)`` term of the search
objective:

* :class:`OracleLatencyEvaluator` — the noise-free analytical model
  (useful for tests and for generating predictor training labels).
* :class:`MeasurementLatencyEvaluator` — the simulated on-device
  measurement: noisy and *slow* (each query advances the search clock by the
  device's measurement round trip), reproducing the cost of real-time
  measurement in Fig. 9(a).
* ``PredictorLatencyEvaluator`` (in :mod:`repro.predictor.evaluator`) — the
  paper's GNN-based predictor: approximate but answers in milliseconds.

All evaluators share the same duck-typed interface: ``evaluate(architecture)
-> latency in ms`` and ``query_cost_s`` (simulated wall-clock cost of one
query).

Evaluators are pluggable through a string-keyed registry: the built-in
``"oracle"``/``"measurement"``/``"predictor"`` factories are registered at
import time, and :func:`register_latency_evaluator` adds custom oracles
(e.g. a table lookup or a remote measurement client) that the search,
:func:`repro.api.search_architecture` and :class:`repro.workspace.Workspace`
can then select by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

import numpy as np

from repro.defaults import DEFAULTS as _SCENARIO_DEFAULTS
from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.hardware.measurement import DeviceMeasurement
from repro.nas.architecture import Architecture
from repro.nn.dtype import WIDE_DTYPE

__all__ = [
    "LatencyEvaluator",
    "OracleLatencyEvaluator",
    "MeasurementLatencyEvaluator",
    "EvaluatorRequest",
    "evaluate_latencies",
    "register_latency_evaluator",
    "unregister_latency_evaluator",
    "list_latency_evaluators",
    "make_latency_evaluator",
]


class LatencyEvaluator(Protocol):
    """Interface of a latency oracle used by the search.

    Evaluators may additionally expose ``evaluate_many(architectures) ->
    array of ms`` for vectorized population scoring;
    :func:`evaluate_latencies` dispatches to it when present and must return
    the same floats as mapping :meth:`evaluate`.
    """

    query_cost_s: float

    def evaluate(self, architecture: Architecture) -> float:
        """Return the estimated/measured latency of ``architecture`` in ms."""
        ...


def evaluate_latencies(evaluator: LatencyEvaluator, architectures: list[Architecture]) -> np.ndarray:
    """Latencies (ms) of several architectures through one evaluator.

    Uses the evaluator's batched ``evaluate_many`` fast path when it has
    one, falling back to sequential :meth:`~LatencyEvaluator.evaluate`
    calls; either way the result is ordered like ``architectures``.
    """
    if not architectures:
        return np.zeros(0, dtype=WIDE_DTYPE)
    evaluate_many = getattr(evaluator, "evaluate_many", None)
    if callable(evaluate_many):
        latencies = np.asarray(evaluate_many(architectures), dtype=WIDE_DTYPE)
        if latencies.shape != (len(architectures),):
            raise ValueError(
                f"evaluate_many returned shape {latencies.shape} "
                f"for {len(architectures)} architectures"
            )
        return latencies
    return np.array([float(evaluator.evaluate(arch)) for arch in architectures], dtype=WIDE_DTYPE)


@dataclass
class OracleLatencyEvaluator:
    """Noise-free analytical latency (zero query cost)."""

    device: DeviceSpec
    num_points: int = _SCENARIO_DEFAULTS.num_points
    k: int = _SCENARIO_DEFAULTS.k
    num_classes: int = _SCENARIO_DEFAULTS.num_classes
    query_cost_s: float = 0.0

    def evaluate(self, architecture: Architecture) -> float:
        workload = architecture.to_workload(self.num_points, self.k, self.num_classes)
        return estimate_latency(workload, self.device).total_ms


@dataclass
class MeasurementLatencyEvaluator:
    """Simulated on-device measurement: accurate but slow and noisy."""

    device: DeviceSpec
    num_points: int = _SCENARIO_DEFAULTS.num_points
    k: int = _SCENARIO_DEFAULTS.k
    num_classes: int = _SCENARIO_DEFAULTS.num_classes
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        self._measurement = DeviceMeasurement(device=self.device, rng=self.rng)
        self.query_cost_s = self.device.measurement_round_trip_s

    def evaluate(self, architecture: Architecture) -> float:
        workload = architecture.to_workload(self.num_points, self.k, self.num_classes)
        return self._measurement.measure_latency_ms(workload)


# ---------------------------------------------------------------------- #
# Evaluator registry
# ---------------------------------------------------------------------- #
@dataclass
class EvaluatorRequest:
    """Everything an evaluator factory may need to build its oracle.

    The scenario defaults come from the shared
    :data:`repro.defaults.DEFAULTS` rather than another hardcoded copy.  ``predictor`` (a pre-trained
    :class:`~repro.predictor.model.LatencyPredictor`, typed loosely to keep
    this module free of the predictor import) and ``predictor_factory`` (a
    zero-argument callable training or loading one on demand) are only
    consulted by predictor-style evaluators.
    """

    device: DeviceSpec
    num_points: int = _SCENARIO_DEFAULTS.num_points
    k: int = _SCENARIO_DEFAULTS.k
    num_classes: int = _SCENARIO_DEFAULTS.num_classes
    seed: int = _SCENARIO_DEFAULTS.seed
    predictor: Any | None = None
    predictor_factory: Callable[[], Any] | None = None


EvaluatorFactory = Callable[[EvaluatorRequest], LatencyEvaluator]

_EVALUATOR_FACTORIES: dict[str, EvaluatorFactory] = {}


def register_latency_evaluator(
    name: str, factory: EvaluatorFactory | None = None, replace: bool = False
) -> Callable:
    """Register an evaluator factory under ``name`` (directly or as a decorator).

    The factory receives an :class:`EvaluatorRequest` and returns an object
    satisfying the :class:`LatencyEvaluator` protocol.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("evaluator name must be non-empty")

    def _register(fn: EvaluatorFactory) -> EvaluatorFactory:
        if key in _EVALUATOR_FACTORIES and not replace:
            raise ValueError(f"latency evaluator '{key}' already registered (pass replace=True)")
        _EVALUATOR_FACTORIES[key] = fn
        return fn

    return _register if factory is None else _register(factory)


def unregister_latency_evaluator(name: str) -> None:
    """Remove a registered evaluator factory."""
    key = name.strip().lower()
    if key not in _EVALUATOR_FACTORIES:
        raise KeyError(f"unknown latency oracle '{name}'; registered: {list_latency_evaluators()}")
    del _EVALUATOR_FACTORIES[key]


def list_latency_evaluators() -> list[str]:
    """Names of the registered latency oracles, sorted."""
    return sorted(_EVALUATOR_FACTORIES)


def make_latency_evaluator(name: str, request: EvaluatorRequest) -> LatencyEvaluator:
    """Build the evaluator registered under ``name`` for ``request``."""
    factory = _EVALUATOR_FACTORIES.get(name.strip().lower())
    if factory is None:
        raise ValueError(f"unknown latency oracle '{name}'; registered: {list_latency_evaluators()}")
    return factory(request)


@register_latency_evaluator("oracle")
def _make_oracle_evaluator(request: EvaluatorRequest) -> OracleLatencyEvaluator:
    return OracleLatencyEvaluator(
        request.device, num_points=request.num_points, k=request.k, num_classes=request.num_classes
    )


@register_latency_evaluator("measurement")
def _make_measurement_evaluator(request: EvaluatorRequest) -> MeasurementLatencyEvaluator:
    return MeasurementLatencyEvaluator(
        request.device,
        num_points=request.num_points,
        k=request.k,
        num_classes=request.num_classes,
        rng=np.random.default_rng(request.seed),
    )


@register_latency_evaluator("predictor")
def _make_predictor_evaluator(request: EvaluatorRequest) -> LatencyEvaluator:
    # Imported lazily so search runs that never use the predictor oracle do
    # not pay for the predictor subsystem.
    from repro.predictor.evaluator import PredictorLatencyEvaluator

    predictor = request.predictor
    if predictor is None and request.predictor_factory is not None:
        predictor = request.predictor_factory()
    if predictor is None:
        raise ValueError(
            "latency oracle 'predictor' needs a pre-trained predictor or a "
            "predictor_factory on the EvaluatorRequest"
        )
    return PredictorLatencyEvaluator(predictor)
