"""Single-path one-shot GNN supernet with weight sharing (paper Sec. III-B/C).

The supernet holds one set of weights per (position, operation type) and is
trained by sampling a random single path per step.  Because the hidden
width of a position's output must not depend on which operation the path
chose, operations that would change the width (aggregate, combine, skip
connect) carry *alignment* linear transformations back to the shared hidden
dimension, exactly as described in the paper; these alignment layers exist
only inside the supernet and are discarded in the finalised architectures
(:mod:`repro.nas.derived`).

Weight sharing across *function* choices uses weight slicing: the combine
projection is parameterised at the maximum candidate width and sliced to
the width requested by the active function set, and the aggregate alignment
is parameterised at the widest possible message and sliced to the active
message width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Batch
from repro.graph.batching import batched_knn_graph, batched_random_graph
from repro.graph.fused import fused_aggregate, fused_kernels_enabled, supports_fused
from repro.graph.message import build_messages, message_dim
from repro.graph.scatter import scatter
from repro.models.classifier import ClassificationHead
from repro.nas.architecture import Architecture
from repro.nas.ops import COMBINE_DIMS, FunctionSet, OperationType
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor, concatenate, is_grad_enabled
from repro.obs.metrics import get_metrics

__all__ = ["SupernetConfig", "Supernet"]


@dataclass(frozen=True)
class SupernetConfig:
    """Supernet hyper-parameters.

    Attributes:
        num_positions: Number of searchable positions.
        hidden_dim: Shared hidden width of every position.
        k: Neighbourhood size for graph construction during supernet runs.
        num_classes: Classification classes.
        input_dim: Raw input feature width (3 for xyz).
        dropout: Dropout of the classification head.
        seed: Weight-initialisation seed.
    """

    num_positions: int = 12
    hidden_dim: int = 32
    k: int = 8
    num_classes: int = 10
    input_dim: int = 3
    dropout: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_positions < 2 or self.num_positions % 2 != 0:
            raise ValueError("num_positions must be an even number >= 2")
        if self.hidden_dim <= 0 or self.k <= 0 or self.input_dim <= 0:
            raise ValueError("hidden_dim, k and input_dim must be positive")
        if self.num_classes <= 1:
            raise ValueError("num_classes must be > 1")


class _PositionBlock(Module):
    """Shared weights of one supernet position (all four operations)."""

    def __init__(self, hidden_dim: int, input_dim: int, rng: np.random.Generator):
        super().__init__()
        self.hidden_dim = hidden_dim
        max_combine = max(COMBINE_DIMS)
        # Combine: project to the widest candidate and slice; align back.
        self.combine_proj = Linear(hidden_dim, max_combine, rng=rng)
        self.combine_align = Linear(max_combine, hidden_dim, rng=rng)
        # Aggregate: widest possible message is the 'full' type (3F + 1).
        self.aggregate_align = Linear(3 * hidden_dim + 1, hidden_dim, rng=rng)
        # Skip connect concatenates the raw input features.
        self.skip_align = Linear(hidden_dim + input_dim, hidden_dim, rng=rng)

    def combine(self, x: Tensor, combine_dim: int) -> Tensor:
        """Sliced combine projection followed by alignment back to hidden."""
        weight = self.combine_proj.weight[:, :combine_dim]
        bias = self.combine_proj.bias[:combine_dim]
        projected = F.leaky_relu(x @ weight + bias, 0.2)
        align_weight = self.combine_align.weight[:combine_dim, :]
        return F.leaky_relu(projected @ align_weight + self.combine_align.bias, 0.2)

    def aggregate(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        aggregator: str,
        message_type: str,
    ) -> Tensor:
        """Message construction, reduction and alignment back to hidden."""
        # The edge index comes from Supernet._build_graph's validating
        # builders and is shared across positions: skip re-scanning it on
        # every aggregate call.
        if not is_grad_enabled() and fused_kernels_enabled() and supports_fused(message_type):
            # Evaluation passes (accuracy scoring during the search) run in
            # no-grad mode and take the fused CSR/reduceat kernel.
            # repro-lint: allow[unvalidated-index] edge index produced by Supernet._build_graph (validating) one call level up
            reduced = fused_aggregate(
                x, edge_index, message_type, aggregator, num_nodes=x.shape[0], validated=True
            )
        else:
            get_metrics().count("graph.materialized.dispatch")
            # repro-lint: allow[unvalidated-index] edge index produced by Supernet._build_graph (validating) one call level up
            messages = build_messages(x, edge_index, message_type, validated=True)
            reduced = scatter(messages, edge_index[1], x.shape[0], aggregator, validated=True)  # repro-lint: allow[unvalidated-index] same shared edge index
        width = message_dim(message_type, self.hidden_dim)
        align_weight = self.aggregate_align.weight[:width, :]
        return F.leaky_relu(reduced @ align_weight + self.aggregate_align.bias, 0.2)

    def skip(self, x: Tensor, inputs: Tensor) -> Tensor:
        """Skip connect: concatenate raw inputs and align back to hidden."""
        combined = concatenate([x, inputs], axis=1)
        return F.leaky_relu(self.skip_align(combined), 0.2)


class Supernet(Module):
    """Weight-sharing supernet over the fine-grained design space."""

    def __init__(self, config: SupernetConfig | None = None):
        super().__init__()
        self.config = config or SupernetConfig()
        rng = np.random.default_rng(self.config.seed)
        self.stem = Linear(self.config.input_dim, self.config.hidden_dim, rng=rng)
        self.blocks: list[_PositionBlock] = []
        for position in range(self.config.num_positions):
            block = _PositionBlock(self.config.hidden_dim, self.config.input_dim, rng)
            self.add_module(f"position{position}", block)
            self.blocks.append(block)
        self.head = ClassificationHead(
            self.config.hidden_dim,
            self.config.num_classes,
            embed_dim=self.config.hidden_dim,
            hidden_dims=(self.config.hidden_dim,),
            dropout=self.config.dropout,
            rng=rng,
        )
        self._graph_rng = np.random.default_rng(self.config.seed + 1)

    def _check_architecture(self, architecture: Architecture) -> None:
        if architecture.num_positions != self.config.num_positions:
            raise ValueError(
                f"architecture has {architecture.num_positions} positions, "
                f"supernet expects {self.config.num_positions}"
            )

    def forward(self, batch: Batch, architecture: Architecture) -> Tensor:
        """Run the single path selected by ``architecture`` on a batch.

        Args:
            batch: Stacked point clouds.
            architecture: Path through the supernet (one op per position).

        Returns:
            Logits of shape ``(batch.num_graphs, num_classes)``.
        """
        self._check_architecture(architecture)
        inputs = Tensor(batch.points)
        x = F.leaky_relu(self.stem(inputs), 0.2)
        edge_index: np.ndarray | None = None
        needs_rebuild = True
        pending_method: str | None = None
        for position, operation in enumerate(architecture.operations):
            functions = architecture.functions_at(position)
            block = self.blocks[position]
            if operation is OperationType.SAMPLE:
                # Merged with any directly preceding sample: just mark dirty.
                needs_rebuild = True
                pending_method = functions.sample_method
            elif operation is OperationType.AGGREGATE:
                if needs_rebuild or edge_index is None:
                    method = pending_method or functions.sample_method
                    edge_index = self._build_graph(x, batch.batch, method)
                    needs_rebuild = False
                x = block.aggregate(x, edge_index, functions.aggregator, functions.message_type)
            elif operation is OperationType.COMBINE:
                x = block.combine(x, functions.combine_dim)
            elif operation is OperationType.CONNECT:
                if functions.connect_mode == "skip":
                    x = block.skip(x, inputs)
            else:  # pragma: no cover - enum exhaustive
                raise ValueError(f"unhandled operation {operation}")
        return self.head(x, batch.batch, batch.num_graphs)

    def _build_graph(self, x: Tensor, batch: np.ndarray, method: str) -> np.ndarray:
        if method == "knn":
            return batched_knn_graph(x.data, batch, self.config.k)
        return batched_random_graph(batch, self.config.k, self._graph_rng)

    # ------------------------------------------------------------------ #
    # Internal generator state (checkpoint support)
    # ------------------------------------------------------------------ #
    def rng_state(self) -> dict:
        """State of the supernet's internal generators.

        ``state_dict`` covers only learnable parameters, but the supernet
        also holds two stochastic pieces: the random-graph sampler
        (:attr:`_graph_rng`, advanced by every forward pass through a
        ``random``-sampled position, in train *and* eval mode) and the
        dropout mask generator shared by the classification head.  A
        checkpoint that rebuilds the supernet from ``state_dict`` alone
        would silently reset both streams; this pair of methods makes them
        resumable.
        """
        return {
            "graph": self._graph_rng.bit_generator.state,
            "dropout": [
                module.rng.bit_generator.state
                for module in self.modules()
                if isinstance(module, Dropout)
            ],
        }

    def set_rng_state(self, state: dict) -> None:
        """Restore a :meth:`rng_state` snapshot."""
        self._graph_rng.bit_generator.state = state["graph"]
        dropouts = [module for module in self.modules() if isinstance(module, Dropout)]
        if len(dropouts) != len(state["dropout"]):
            raise ValueError(
                f"snapshot has {len(state['dropout'])} dropout states, supernet has {len(dropouts)}"
            )
        for module, rng_state in zip(dropouts, state["dropout"]):
            module.rng.bit_generator.state = rng_state

    # ------------------------------------------------------------------ #
    # Path sampling helpers
    # ------------------------------------------------------------------ #
    def random_path(
        self,
        rng: np.random.Generator,
        upper_functions: FunctionSet | None = None,
        lower_functions: FunctionSet | None = None,
    ) -> Architecture:
        """Sample a uniform random single path (optionally with fixed functions)."""
        return Architecture.random(
            self.config.num_positions,
            rng,
            upper_functions=upper_functions,
            lower_functions=lower_functions,
            input_dim=self.config.input_dim,
        )
