"""Preset architectures expressed in the fine-grained design space.

``dgcnn_architecture`` shows that the 12-position space covers the DGCNN
backbone (the paper's stated design goal); the four ``*_fast`` presets
transcribe the per-device architectures visualised in the paper's Fig. 10
(fewer valid KNN constructions on GPU-like devices, fewer/cheaper
aggregations on the CPU, simplified everything on the Raspberry Pi), and
are used by the visualisation experiment and as regression anchors for the
hardware model.

Positions 0..N/2-1 share the *upper* function set and positions N/2..N-1
share the *lower* one, so each preset is written as an (upper ops, lower
ops) pair padded with identity connects.
"""

from __future__ import annotations

from repro.nas.architecture import Architecture
from repro.nas.ops import FunctionSet, OperationType

__all__ = [
    "dgcnn_architecture",
    "rtx_fast_architecture",
    "intel_fast_architecture",
    "tx2_fast_architecture",
    "pi_fast_architecture",
    "device_fast_architecture",
    "device_acc_architecture",
]

_S = OperationType.SAMPLE
_A = OperationType.AGGREGATE
_C = OperationType.COMBINE
_N = OperationType.CONNECT


def _split_halves(
    upper_ops: list[OperationType], lower_ops: list[OperationType], num_positions: int
) -> tuple[OperationType, ...]:
    """Pad each half with identity connects so the function sharing lines up."""
    half = num_positions // 2
    if len(upper_ops) > half or len(lower_ops) > half:
        raise ValueError(
            f"each half holds at most {half} operations "
            f"(got {len(upper_ops)} upper, {len(lower_ops)} lower)"
        )
    upper = list(upper_ops) + [_N] * (half - len(upper_ops))
    lower = list(lower_ops) + [_N] * (num_positions - half - len(lower_ops))
    return tuple(upper + lower)


def dgcnn_architecture(num_positions: int = 12) -> Architecture:
    """DGCNN expressed in the design space: repeated (sample, aggregate, combine).

    At the paper's 12 positions this is the full four-layer backbone; smaller
    supernets get proportionally fewer EdgeConv blocks.  With shared function
    sets the EdgeConv widths collapse to two (64 for the upper half, 256 for
    the lower half), the closest representable point to the original
    64/64/128/256 backbone.
    """
    if num_positions < 6:
        raise ValueError("the DGCNN preset needs at least 6 positions (one EdgeConv block per half)")
    num_layers = max(num_positions // 3, 1)
    upper_layers = (num_layers + 1) // 2
    lower_layers = num_layers - upper_layers
    operations = _split_halves([_S, _A, _C] * upper_layers, [_S, _A, _C] * lower_layers, num_positions)
    upper = FunctionSet(aggregator="max", message_type="target_rel", combine_dim=64, sample_method="knn", connect_mode="identity")
    lower = FunctionSet(aggregator="max", message_type="target_rel", combine_dim=256, sample_method="knn", connect_mode="identity")
    return Architecture(operations=operations, upper_functions=upper, lower_functions=lower, name="dgcnn")


def rtx_fast_architecture(num_positions: int = 12) -> Architecture:
    """Fig. 10 RTX_Fast: a single valid KNN, two aggregates, one combine."""
    operations = _split_halves([_S, _C, _A], [_A, _S], num_positions)
    upper = FunctionSet(aggregator="max", message_type="target_rel", combine_dim=64, sample_method="knn", connect_mode="identity")
    lower = FunctionSet(aggregator="mean", message_type="target_rel", combine_dim=64, sample_method="knn", connect_mode="identity")
    return Architecture(operations=operations, upper_functions=upper, lower_functions=lower, name="rtx_fast")


def intel_fast_architecture(num_positions: int = 12) -> Architecture:
    """Fig. 10 Intel_Fast: few, narrow aggregations (the CPU is aggregate-bound)."""
    operations = _split_halves([_S, _C, _A, _C], [_C, _A], num_positions)
    upper = FunctionSet(aggregator="max", message_type="source_pos", combine_dim=64, sample_method="knn", connect_mode="identity")
    lower = FunctionSet(aggregator="mean", message_type="source_pos", combine_dim=32, sample_method="knn", connect_mode="identity")
    return Architecture(operations=operations, upper_functions=upper, lower_functions=lower, name="intel_fast")


def tx2_fast_architecture(num_positions: int = 12) -> Architecture:
    """Fig. 10 TX2_Fast: one KNN, three aggregates, one combine."""
    operations = _split_halves([_S, _A, _A], [_C, _A], num_positions)
    upper = FunctionSet(aggregator="max", message_type="target_rel", combine_dim=128, sample_method="knn", connect_mode="identity")
    lower = FunctionSet(aggregator="mean", message_type="source_pos", combine_dim=128, sample_method="knn", connect_mode="identity")
    return Architecture(operations=operations, upper_functions=upper, lower_functions=lower, name="tx2_fast")


def pi_fast_architecture(num_positions: int = 12) -> Architecture:
    """Fig. 10 Pi_Fast: simplified operations (cheap messages, small combines)."""
    operations = _split_halves([_S, _S, _C, _A], [_C, _C, _A], num_positions)
    upper = FunctionSet(aggregator="max", message_type="source_pos", combine_dim=64, sample_method="knn", connect_mode="identity")
    lower = FunctionSet(aggregator="max", message_type="source_pos", combine_dim=32, sample_method="knn", connect_mode="identity")
    return Architecture(operations=operations, upper_functions=upper, lower_functions=lower, name="pi_fast")


def device_acc_architecture(device_name: str, num_positions: int = 12) -> Architecture:
    """Accuracy-preserving variant ("Device-Acc" in Table II).

    Same operation layout as the fast preset for the device, but with richer
    functions (expressive ``target||rel`` messages and wider combines), which
    trades back some of the latency gain for accuracy — mirroring how the
    paper's Acc models sit between DGCNN and the Fast models on the
    latency axis.
    """
    fast = device_fast_architecture(device_name, num_positions)
    upper = fast.upper_functions.replace(message_type="target_rel", combine_dim=128)
    lower = fast.lower_functions.replace(message_type="target_rel", combine_dim=128)
    return Architecture(
        operations=fast.operations,
        upper_functions=upper,
        lower_functions=lower,
        input_dim=fast.input_dim,
        name=fast.name.replace("fast", "acc"),
    )


def device_fast_architecture(device_name: str, num_positions: int = 12) -> Architecture:
    """Return the Fig. 10 preset matching a device name (aliases accepted)."""
    key = device_name.strip().lower()
    if "rtx" in key or key == "gpu":
        return rtx_fast_architecture(num_positions)
    if "i7" in key or "intel" in key or key == "cpu":
        return intel_fast_architecture(num_positions)
    if "tx2" in key or "jetson" in key:
        return tx2_fast_architecture(num_positions)
    if "pi" in key or "raspberry" in key:
        return pi_fast_architecture(num_positions)
    raise KeyError(f"no preset architecture for device '{device_name}'")
