"""The HGNAS multi-stage hierarchical search (paper Alg. 1) and ablations.

Stage 1 (*function search*) trains the supernet with uniformly sampled
operations and functions, then runs an evolutionary search over pairs of
shared function sets (upper / lower half) that maximise weight-sharing
validation accuracy.  Stage 2 (*operation search*) re-initialises and
pre-trains the supernet with the winning function sets fixed, then runs a
multi-objective evolutionary search over operation assignments scored by
Eq. 3 (validation accuracy and predicted/measured latency under the
hardware constraint).

A one-stage baseline (:meth:`HGNAS.run_one_stage`) searches the joint
operation+function space with the same budget, reproducing the Fig. 9(b)
ablation; the latency oracle is pluggable (analytical oracle, simulated
on-device measurement, or the GNN predictor), reproducing Fig. 9(a).

Search time is tracked on a :class:`~repro.utils.timer.VirtualClock`
advanced by modelled costs (supernet training epochs, accuracy evaluations,
latency queries) so the time-vs-quality plots are deterministic and
machine-independent.

Both :meth:`HGNAS.run` and :meth:`HGNAS.run_one_stage` accept a
:class:`~repro.nas.checkpoint.SearchCheckpointer`: progress is committed
after every supernet epoch and every EA generation, and a search restarted
from the checkpoint replays the remainder *bit-identically* — the
checkpoint captures the shared RNG (and evaluator RNG) state, the virtual
clock, the fitness caches and the EA population, so every random draw and
every float addition after the resume point repeats the uninterrupted run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.data.dataset import InMemoryDataset
from repro.nas.architecture import Architecture
from repro.nas.checkpoint import SearchCheckpointer
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.nas.evolution import EvolutionConfig, EvolutionarySearch, HistoryPoint
from repro.nas.latency_eval import (
    EvaluatorRequest,
    LatencyEvaluator,
    evaluate_latencies,
    make_latency_evaluator,
)
from repro.nas.objective import ObjectiveConfig, hardware_constrained_score
from repro.nas.ops import FunctionSet, mutate_function_set, random_function_set
from repro.nas.supernet import Supernet, SupernetConfig
from repro.nas.trainer import evaluate_path, train_supernet
from repro.nn.dtype import WIDE_DTYPE
from repro.obs.tracer import get_tracer
from repro.utils.logging import get_logger
from repro.utils.timer import VirtualClock

__all__ = ["HGNASConfig", "SearchResult", "HGNAS"]

_LOGGER = get_logger("nas.search")


def _prefixed(arrays: Mapping[str, np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    return {f"{prefix}{name}": array for name, array in arrays.items()}


def _subset(arrays: Mapping[str, np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    return {name[len(prefix):]: array for name, array in arrays.items() if name.startswith(prefix)}


def _history_docs(history: list[HistoryPoint]) -> list[dict]:
    return [dataclasses.asdict(point) for point in history]


def _history_from_docs(documents: list[dict]) -> list[HistoryPoint]:
    return [HistoryPoint(**document) for document in documents]


@dataclass(frozen=True)
class HGNASConfig:
    """Configuration of a full HGNAS run.

    The paper-scale settings are ``num_positions=12``, population 20, 1000
    iterations, 50/500 supernet epochs; the defaults here are scaled down so
    a full search completes in seconds on the pure-numpy substrate while
    preserving every algorithmic step.
    """

    # Design space / supernet
    num_positions: int = 12
    hidden_dim: int = 24
    supernet_k: int = 6
    num_classes: int = 10
    input_dim: int = 3
    # Deployment scenario used for hardware evaluation
    deploy_num_points: int = 1024
    deploy_k: int = 20
    # Evolution
    population_size: int = 8
    function_iterations: int = 4
    operation_iterations: int = 8
    # Supernet training
    function_epochs: int = 2
    operation_epochs: int = 3
    batch_size: int = 8
    learning_rate: float = 3e-3
    # Objective (Eq. 1-3)
    alpha: float = 1.0
    beta: float = 0.5
    latency_constraint_ms: float = float("inf")
    # Evaluation budget
    eval_max_batches: int = 2
    paths_per_function_eval: int = 2
    # Simulated costs (advance the virtual clock)
    epoch_cost_s: float = 30.0
    accuracy_eval_cost_s: float = 1.0
    seed: int = 0
    # Score each generation's cohort through the latency evaluator's batched
    # fast path (one fused forward for predictor-style oracles).  Results are
    # identical to the sequential path; disable only to compare the two.
    batched_evaluation: bool = True
    # Statically validate candidates (repro.analysis) before fitness scoring;
    # rejected mutants never reach the supernet/predictor and show up in the
    # nas.analysis.rejected counter.
    validate_candidates: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.function_iterations <= 0 or self.operation_iterations <= 0:
            raise ValueError("iteration counts must be positive")
        if self.function_epochs <= 0 or self.operation_epochs <= 0:
            raise ValueError("epoch counts must be positive")
        if self.paths_per_function_eval <= 0 or self.eval_max_batches <= 0:
            raise ValueError("evaluation budgets must be positive")

    def design_space_config(self) -> DesignSpaceConfig:
        """Derived design-space configuration."""
        return DesignSpaceConfig(
            num_positions=self.num_positions,
            k=self.deploy_k,
            num_points=self.deploy_num_points,
            num_classes=self.num_classes,
            input_dim=self.input_dim,
        )

    def supernet_config(self) -> SupernetConfig:
        """Derived supernet configuration."""
        return SupernetConfig(
            num_positions=self.num_positions,
            hidden_dim=self.hidden_dim,
            k=self.supernet_k,
            num_classes=self.num_classes,
            input_dim=self.input_dim,
            seed=self.seed,
        )


@dataclass
class SearchResult:
    """Outcome of an HGNAS run."""

    best_architecture: Architecture
    best_score: float
    best_accuracy: float
    best_latency_ms: float
    upper_functions: FunctionSet
    lower_functions: FunctionSet
    stage1_history: list[HistoryPoint] = field(default_factory=list)
    stage2_history: list[HistoryPoint] = field(default_factory=list)
    search_time_s: float = 0.0
    evaluations: int = 0
    strategy: str = "multi-stage"

    @property
    def history(self) -> list[HistoryPoint]:
        """Concatenated stage-1 + stage-2 best-so-far trajectory."""
        return list(self.stage1_history) + list(self.stage2_history)


class HGNAS:
    """Hardware-aware graph neural architecture search."""

    def __init__(
        self,
        config: HGNASConfig,
        train_dataset: InMemoryDataset,
        val_dataset: InMemoryDataset,
        latency_evaluator: LatencyEvaluator,
        objective: ObjectiveConfig | None = None,
        rng: np.random.Generator | None = None,
        clock: VirtualClock | None = None,
    ):
        self.config = config
        self.train_dataset = train_dataset
        self.val_dataset = val_dataset
        self.latency_evaluator = latency_evaluator
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.clock = clock if clock is not None else VirtualClock()
        self.design_space = DesignSpace(config.design_space_config())
        self.objective = objective or ObjectiveConfig(
            alpha=config.alpha,
            beta=config.beta,
            latency_constraint_ms=config.latency_constraint_ms,
            latency_scale_ms=self._default_latency_scale(),
        )
        self._accuracy_cache: dict[tuple, float] = {}
        self._latency_cache: dict[tuple, float] = {}
        # Latencies computed by a batched query but not yet "paid for":
        # _latency() charges the clock when each one is first consumed, so
        # the clock sees the same sequence of additions as sequential
        # evaluation (summation order matters for float equality).
        self._prefetched_latencies: dict[tuple, float] = {}
        # Architecture behind every cache key, so the caches above can be
        # serialized into a checkpoint (keys are tuples, architectures have
        # to_dict/from_dict).
        self._arch_by_key: dict[tuple, Architecture] = {}

    @classmethod
    def for_device(
        cls,
        config: HGNASConfig,
        train_dataset: InMemoryDataset,
        val_dataset: InMemoryDataset,
        device,
        latency_oracle: str = "oracle",
        predictor=None,
        predictor_factory=None,
        objective: ObjectiveConfig | None = None,
        rng: np.random.Generator | None = None,
        clock: VirtualClock | None = None,
        seed: int | None = None,
    ) -> "HGNAS":
        """Build a search whose latency oracle is resolved from the evaluator registry.

        ``latency_oracle`` names any evaluator registered through
        :func:`repro.nas.latency_eval.register_latency_evaluator` (built-ins:
        ``"oracle"``, ``"measurement"``, ``"predictor"``).  The deployment
        scenario (``deploy_num_points``/``deploy_k``/``num_classes``) is taken
        from ``config``; ``seed`` (defaulting to ``config.seed``) seeds
        stochastic oracles, and ``predictor``/``predictor_factory`` feed
        predictor-style ones.
        """
        request = EvaluatorRequest(
            device=device,
            num_points=config.deploy_num_points,
            k=config.deploy_k,
            num_classes=config.num_classes,
            seed=config.seed if seed is None else seed,
            predictor=predictor,
            predictor_factory=predictor_factory,
        )
        evaluator = make_latency_evaluator(latency_oracle, request)
        return cls(config, train_dataset, val_dataset, evaluator, objective=objective, rng=rng, clock=clock)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _default_latency_scale(self) -> float:
        """Normalise the latency term by DGCNN's latency on the target device."""
        from repro.nas.presets import dgcnn_architecture

        reference = dgcnn_architecture(self.config.num_positions)
        scale = self.latency_evaluator.evaluate(reference)
        return max(float(scale), 1e-6)

    def _train_supernet(
        self,
        supernet: Supernet,
        path_sampler,
        epochs: int,
        *,
        checkpointer: SearchCheckpointer | None = None,
        phase: str | None = None,
        strategy: str | None = None,
        results: dict | None = None,
        start_epoch: int = 0,
        optimizer_state: dict[str, np.ndarray] | None = None,
    ) -> None:
        # Clock invariant: the training charge is added once, after the
        # epoch loop.  Per-epoch checkpoints therefore carry the
        # *pre-training* clock value, and a resumed run — which restores
        # that value, finishes the remaining epochs and then performs the
        # same single advance — lands on a bit-identical clock.
        on_epoch = None
        if checkpointer is not None and phase is not None:

            def on_epoch(epoch: int, optimizer) -> None:
                if not checkpointer.accepts(epoch):
                    return
                meta = self._capture_meta(phase, epoch, strategy=strategy, results=results)
                meta["supernet_rng"] = supernet.rng_state()
                arrays = _prefixed(supernet.state_dict(), "supernet.")
                arrays.update(_prefixed(optimizer.state_dict(), "optimizer."))
                checkpointer.save(meta, arrays)

        train_supernet(
            supernet,
            self.train_dataset,
            path_sampler,
            epochs=epochs,
            batch_size=self.config.batch_size,
            lr=self.config.learning_rate,
            rng=self.rng,
            start_epoch=start_epoch,
            optimizer_state=optimizer_state,
            on_epoch=on_epoch,
        )
        self.clock.advance(epochs * self.config.epoch_cost_s)

    # ------------------------------------------------------------------ #
    # Checkpoint capture / restore
    # ------------------------------------------------------------------ #
    def _encode_arch_cache(self, cache: dict[tuple, float]) -> list:
        return [[self._arch_by_key[key].to_dict(), float(value)] for key, value in cache.items()]

    def _decode_arch_cache(self, payload: list) -> dict[tuple, float]:
        cache: dict[tuple, float] = {}
        for document, value in payload:
            architecture = Architecture.from_dict(document)
            key = architecture.key()
            self._arch_by_key[key] = architecture
            cache[key] = float(value)
        return cache

    def _capture_meta(
        self, phase: str, progress: int, *, strategy: str | None, results: dict | None
    ) -> dict:
        """Scalar search state at a checkpoint (arrays travel separately)."""
        meta = {
            "phase": phase,
            "progress": int(progress),
            "strategy": strategy,
            "results": dict(results or {}),
            "rng_state": self.rng.bit_generator.state,
            "clock_s": float(self.clock.now),
            "accuracy_cache": self._encode_arch_cache(self._accuracy_cache),
            "latency_cache": self._encode_arch_cache(self._latency_cache),
            "prefetched_latencies": self._encode_arch_cache(self._prefetched_latencies),
        }
        evaluator_rng = getattr(self.latency_evaluator, "rng", None)
        if evaluator_rng is not None:
            meta["evaluator_rng_state"] = evaluator_rng.bit_generator.state
        return meta

    def _restore_meta(self, meta: dict) -> None:
        self.rng.bit_generator.state = meta["rng_state"]
        self.clock.now = float(meta["clock_s"])
        evaluator_rng = getattr(self.latency_evaluator, "rng", None)
        if evaluator_rng is not None and "evaluator_rng_state" in meta:
            evaluator_rng.bit_generator.state = meta["evaluator_rng_state"]
        self._accuracy_cache = self._decode_arch_cache(meta["accuracy_cache"])
        self._latency_cache = self._decode_arch_cache(meta["latency_cache"])
        self._prefetched_latencies = self._decode_arch_cache(meta["prefetched_latencies"])

    def _load_checkpoint(
        self, checkpointer: SearchCheckpointer | None, strategy: str, phases: tuple[str, ...]
    ) -> tuple[dict, dict[str, np.ndarray], int, int]:
        """Restore a committed checkpoint; ``phase_index == -1`` means none."""
        if checkpointer is None:
            return {}, {}, -1, -1
        restored = checkpointer.load()
        if restored is None:
            return {}, {}, -1, -1
        meta, arrays = restored
        if meta.get("strategy") != strategy:
            raise ValueError(
                f"checkpoint {checkpointer.key!r} belongs to a {meta.get('strategy')!r} run, "
                f"cannot resume a {strategy!r} search from it"
            )
        self._restore_meta(meta)
        phase_index = phases.index(meta["phase"])
        progress = int(meta["progress"])
        _LOGGER.info(
            "resuming %s search from checkpoint: phase=%s progress=%d clock=%.1fs",
            strategy,
            meta["phase"],
            progress,
            self.clock.now,
        )
        return meta, arrays, phase_index, progress

    def _generation_hook(
        self,
        checkpointer: SearchCheckpointer | None,
        phase: str,
        strategy: str,
        results: dict,
        supernet: Supernet,
        search: EvolutionarySearch,
        encode,
    ):
        """Per-generation checkpoint callback for :meth:`EvolutionarySearch.run`."""
        if checkpointer is None:
            return None

        def hook(iteration: int) -> None:
            if not checkpointer.accepts(iteration):
                return
            meta = self._capture_meta(phase, iteration, strategy=strategy, results=results)
            meta["supernet_rng"] = supernet.rng_state()
            meta["ea_state"] = search.state_dict(encode)
            checkpointer.save(meta, _prefixed(supernet.state_dict(), "supernet."))

        return hook

    @staticmethod
    def _restore_supernet(supernet: Supernet, meta: dict, arrays: Mapping[str, np.ndarray]) -> None:
        """Rebuild a checkpointed supernet: weights plus internal RNG streams."""
        supernet.load_state_dict(_subset(arrays, "supernet."))
        supernet.set_rng_state(meta["supernet_rng"])

    @staticmethod
    def _encode_pair(pair: tuple[FunctionSet, FunctionSet]) -> dict:
        return {"upper": pair[0].to_dict(), "lower": pair[1].to_dict()}

    @staticmethod
    def _decode_pair(document) -> tuple[FunctionSet, FunctionSet]:
        return (FunctionSet.from_dict(document["upper"]), FunctionSet.from_dict(document["lower"]))

    def _path_accuracy(self, supernet: Supernet, architecture: Architecture) -> float:
        key = architecture.key()
        self._arch_by_key.setdefault(key, architecture)
        if key not in self._accuracy_cache:
            self._accuracy_cache[key] = evaluate_path(
                supernet,
                architecture,
                self.val_dataset,
                batch_size=self.config.batch_size,
                max_batches=self.config.eval_max_batches,
            )
            self.clock.advance(self.config.accuracy_eval_cost_s)
        return self._accuracy_cache[key]

    def _latency(self, architecture: Architecture) -> float:
        key = architecture.key()
        self._arch_by_key.setdefault(key, architecture)
        if key not in self._latency_cache:
            if key in self._prefetched_latencies:
                self._latency_cache[key] = self._prefetched_latencies.pop(key)
            else:
                self._latency_cache[key] = float(self.latency_evaluator.evaluate(architecture))
            self.clock.advance(self.latency_evaluator.query_cost_s)
        return self._latency_cache[key]

    def _latency_many(self, architectures: list[Architecture]) -> None:
        """Prefetch latencies for ``architectures`` in one batched query.

        Unknown architectures (first occurrence wins, so stochastic
        evaluators draw noise in the same order as the sequential path) are
        scored through :func:`evaluate_latencies`.  The clock is *not*
        advanced here — :meth:`_latency` charges ``query_cost_s`` when each
        prefetched value is first consumed, preserving the sequential
        path's exact interleaving of clock additions.
        """
        pending: dict[tuple, Architecture] = {}
        for architecture in architectures:
            key = architecture.key()
            self._arch_by_key.setdefault(key, architecture)
            if (
                key not in self._latency_cache
                and key not in self._prefetched_latencies
                and key not in pending
            ):
                pending[key] = architecture
        if not pending:
            return
        latencies = evaluate_latencies(self.latency_evaluator, list(pending.values()))
        for key, latency in zip(pending, latencies):
            self._prefetched_latencies[key] = float(latency)

    def _objective(self, supernet: Supernet, architecture: Architecture) -> float:
        latency_ms = self._latency(architecture)
        if latency_ms >= self.objective.latency_constraint_ms:
            # Candidates violating the constraint are rejected without
            # spending an accuracy evaluation (paper Sec. III-C).
            return 0.0
        accuracy = self._path_accuracy(supernet, architecture)
        return hardware_constrained_score(accuracy, latency_ms, self.objective)

    def _objective_many(self, supernet: Supernet, architectures: list[Architecture]) -> np.ndarray:
        """Eq. 3 scores for a whole cohort, latencies batched up front.

        Latency queries are fused into one :meth:`_latency_many` call (the
        big win with the GNN predictor oracle); accuracy evaluations keep
        their per-architecture cache-and-clock flow, and constraint
        violators are still rejected without an accuracy evaluation, so the
        scores and clock total match the sequential path exactly.
        """
        self._latency_many(architectures)
        return np.array(
            [self._objective(supernet, architecture) for architecture in architectures],
            dtype=WIDE_DTYPE,
        )

    # ------------------------------------------------------------------ #
    # Stage 1: function search
    # ------------------------------------------------------------------ #
    def _function_search(self, supernet: Supernet) -> EvolutionarySearch:
        def initialize(rng: np.random.Generator) -> tuple[FunctionSet, FunctionSet]:
            return (random_function_set(rng), random_function_set(rng))

        def mutate(
            pair: tuple[FunctionSet, FunctionSet], rng: np.random.Generator, num: int
        ) -> tuple[FunctionSet, FunctionSet]:
            upper, lower = pair
            if rng.random() < 0.5:
                return (mutate_function_set(upper, rng, num), lower)
            return (upper, mutate_function_set(lower, rng, num))

        def crossover(
            pair_a: tuple[FunctionSet, FunctionSet],
            pair_b: tuple[FunctionSet, FunctionSet],
            rng: np.random.Generator,
        ) -> tuple[FunctionSet, FunctionSet]:
            return (pair_a[0], pair_b[1]) if rng.random() < 0.5 else (pair_b[0], pair_a[1])

        def evaluate(pair: tuple[FunctionSet, FunctionSet]) -> float:
            upper, lower = pair
            accuracies = []
            for _ in range(self.config.paths_per_function_eval):
                path = self.design_space.random_architecture(self.rng, upper, lower)
                accuracies.append(self._path_accuracy(supernet, path))
            return float(np.mean(accuracies))

        def key(pair: tuple[FunctionSet, FunctionSet]):
            return (tuple(sorted(pair[0].to_dict().items())), tuple(sorted(pair[1].to_dict().items())))

        return EvolutionarySearch(
            EvolutionConfig(population_size=self.config.population_size),
            initialize=initialize,
            mutate=mutate,
            evaluate=evaluate,
            crossover=crossover,
            key=key,
            rng=self.rng,
            clock=self.clock,
        )

    # ------------------------------------------------------------------ #
    # Candidate validation (repro.analysis)
    # ------------------------------------------------------------------ #
    def _architecture_validator(self):
        """Static accept/reject hook for architecture-genotype searches.

        Checks each candidate against the deployment scenario *before* any
        fitness scoring (supernet forward or predictor query).  Stage-1
        searches operate on function-set pairs, not architectures, and every
        function-set pair is valid by construction, so only the
        architecture-level searches take this hook.
        """
        if not self.config.validate_candidates:
            return None
        # Imported here, not at module level: repro.analysis depends on
        # repro.nas.architecture, and the eager nas package init would turn
        # a top-level import into a cycle.
        from repro.analysis.validate import validate_architecture

        def validate(architecture: Architecture) -> bool:
            return validate_architecture(
                architecture,
                num_points=self.config.deploy_num_points,
                k=self.config.deploy_k,
                num_classes=self.config.num_classes,
            ).ok

        return validate

    # ------------------------------------------------------------------ #
    # Stage 2: operation search
    # ------------------------------------------------------------------ #
    def _operation_search(
        self, supernet: Supernet, upper: FunctionSet, lower: FunctionSet
    ) -> EvolutionarySearch:
        def initialize(rng: np.random.Generator) -> Architecture:
            return self.design_space.random_architecture(rng, upper, lower)

        def mutate(architecture: Architecture, rng: np.random.Generator, num: int) -> Architecture:
            return self.design_space.mutate_operations(architecture, rng, num)

        def crossover(a: Architecture, b: Architecture, rng: np.random.Generator) -> Architecture:
            return self.design_space.crossover_operations(a, b, rng)

        def evaluate(architecture: Architecture) -> float:
            return self._objective(supernet, architecture)

        def evaluate_many(architectures: list[Architecture]) -> np.ndarray:
            return self._objective_many(supernet, architectures)

        return EvolutionarySearch(
            EvolutionConfig(population_size=self.config.population_size),
            initialize=initialize,
            mutate=mutate,
            evaluate=evaluate,
            crossover=crossover,
            key=lambda arch: arch.key(),
            rng=self.rng,
            clock=self.clock,
            evaluate_many=evaluate_many if self.config.batched_evaluation else None,
            validate=self._architecture_validator(),
        )

    # ------------------------------------------------------------------ #
    # Full runs
    # ------------------------------------------------------------------ #
    def run(self, checkpointer: SearchCheckpointer | None = None) -> SearchResult:
        """Run the multi-stage hierarchical search (Alg. 1).

        With a ``checkpointer``, progress is committed after every supernet
        epoch and every EA generation, and a run constructed identically
        (same config, datasets, evaluator, fresh ``rng``/``clock``) resumes
        from the committed state bit-identically.  The checkpoint entry is
        cleared once the search completes.
        """
        tracer = get_tracer()
        phases = ("stage1_supernet", "stage1_functions", "stage2_supernet", "stage2_operations")
        meta, arrays, phase_index, progress = self._load_checkpoint(checkpointer, "multi-stage", phases)
        results: dict = dict(meta.get("results", {}))

        supernet = Supernet(self.config.supernet_config())
        if phase_index <= 0:
            _LOGGER.info("stage 1: training supernet for function search")
            with tracer.span("nas.search.stage1_supernet", epochs=self.config.function_epochs):
                start_epoch = 0
                optimizer_state = None
                if phase_index == 0:
                    self._restore_supernet(supernet, meta, arrays)
                    optimizer_state = _subset(arrays, "optimizer.")
                    start_epoch = progress + 1
                self._train_supernet(
                    supernet,
                    lambda rng: supernet.random_path(rng),
                    self.config.function_epochs,
                    checkpointer=checkpointer,
                    phase="stage1_supernet",
                    strategy="multi-stage",
                    results=results,
                    start_epoch=start_epoch,
                    optimizer_state=optimizer_state,
                )
        elif phase_index == 1:
            # Interrupted mid stage-1 EA: the weights come from the
            # checkpoint and the restored clock already carries the
            # training charge — no training, no advance.
            self._restore_supernet(supernet, meta, arrays)

        if phase_index <= 1:
            _LOGGER.info("stage 1: evolutionary function search")
            with tracer.span("nas.search.stage1_functions") as span:
                search = self._function_search(supernet)
                if phase_index == 1:
                    search.load_state_dict(meta["ea_state"], self._decode_pair)
                hook = self._generation_hook(
                    checkpointer, "stage1_functions", "multi-stage", results,
                    supernet, search, self._encode_pair,
                )
                result = search.run(self.config.function_iterations, on_generation=hook)
                upper, lower = result.best
                stage1_history = result.history
                span.attributes.update(best_score=float(stage1_history[-1].best_score))
            results = {
                "upper": upper.to_dict(),
                "lower": lower.to_dict(),
                "stage1_history": _history_docs(stage1_history),
            }
        else:
            upper = FunctionSet.from_dict(results["upper"])
            lower = FunctionSet.from_dict(results["lower"])
            stage1_history = _history_from_docs(results["stage1_history"])

        supernet = Supernet(self.config.supernet_config())
        if phase_index <= 2:
            _LOGGER.info("stage 2: re-training supernet with fixed functions")
            with tracer.span("nas.search.stage2_supernet", epochs=self.config.operation_epochs):
                start_epoch = 0
                optimizer_state = None
                if phase_index == 2:
                    self._restore_supernet(supernet, meta, arrays)
                    optimizer_state = _subset(arrays, "optimizer.")
                    start_epoch = progress + 1
                else:
                    self._accuracy_cache.clear()
                self._train_supernet(
                    supernet,
                    lambda rng: supernet.random_path(rng, upper_functions=upper, lower_functions=lower),
                    self.config.operation_epochs,
                    checkpointer=checkpointer,
                    phase="stage2_supernet",
                    strategy="multi-stage",
                    results=results,
                    start_epoch=start_epoch,
                    optimizer_state=optimizer_state,
                )
        else:
            self._restore_supernet(supernet, meta, arrays)

        _LOGGER.info("stage 2: multi-objective operation search")
        with tracer.span("nas.search.stage2_operations") as span:
            search = self._operation_search(supernet, upper, lower)
            if phase_index == 3:
                search.load_state_dict(meta["ea_state"], Architecture.from_dict)
            hook = self._generation_hook(
                checkpointer, "stage2_operations", "multi-stage", results,
                supernet, search, lambda arch: arch.to_dict(),
            )
            result = search.run(self.config.operation_iterations, on_generation=hook)
            best = result.best
            best_score = result.best_score
            stage2_history = result.history
            evaluations = result.evaluations
            span.attributes.update(best_score=float(best_score), evaluations=evaluations)

        best_latency = self._latency(best)
        best_accuracy = self._path_accuracy(supernet, best)
        if checkpointer is not None:
            checkpointer.clear()
        return SearchResult(
            best_architecture=best,
            best_score=best_score,
            best_accuracy=best_accuracy,
            best_latency_ms=best_latency,
            upper_functions=upper,
            lower_functions=lower,
            stage1_history=stage1_history,
            stage2_history=stage2_history,
            search_time_s=self.clock.now,
            evaluations=evaluations,
            strategy="multi-stage",
        )

    def run_one_stage(
        self, iterations: int | None = None, checkpointer: SearchCheckpointer | None = None
    ) -> SearchResult:
        """One-stage baseline: jointly search operations and functions.

        Used for the Fig. 9(b) ablation.  The supernet is trained once with
        fully random paths (same total epoch budget as the two stages of the
        hierarchical strategy) and a single EA explores the joint space.
        Checkpoint/resume semantics match :meth:`run` (a resumed run must
        pass the same ``iterations``).
        """
        tracer = get_tracer()
        phases = ("one_stage_supernet", "one_stage_search")
        meta, arrays, phase_index, progress = self._load_checkpoint(checkpointer, "one-stage", phases)
        iterations = iterations or (self.config.function_iterations + self.config.operation_iterations)
        total_epochs = self.config.function_epochs + self.config.operation_epochs
        supernet = Supernet(self.config.supernet_config())
        if phase_index <= 0:
            with tracer.span("nas.search.one_stage_supernet", epochs=total_epochs):
                start_epoch = 0
                optimizer_state = None
                if phase_index == 0:
                    self._restore_supernet(supernet, meta, arrays)
                    optimizer_state = _subset(arrays, "optimizer.")
                    start_epoch = progress + 1
                self._train_supernet(
                    supernet,
                    lambda rng: supernet.random_path(rng),
                    total_epochs,
                    checkpointer=checkpointer,
                    phase="one_stage_supernet",
                    strategy="one-stage",
                    start_epoch=start_epoch,
                    optimizer_state=optimizer_state,
                )
        else:
            self._restore_supernet(supernet, meta, arrays)

        def initialize(rng: np.random.Generator) -> Architecture:
            return self.design_space.random_architecture(rng)

        def mutate(architecture: Architecture, rng: np.random.Generator, num: int) -> Architecture:
            if rng.random() < 0.5:
                return self.design_space.mutate_operations(architecture, rng, num)
            return self.design_space.mutate_functions(architecture, rng, num)

        def crossover(a: Architecture, b: Architecture, rng: np.random.Generator) -> Architecture:
            return self.design_space.crossover_operations(a, b, rng)

        def evaluate(architecture: Architecture) -> float:
            return self._objective(supernet, architecture)

        def evaluate_many(architectures: list[Architecture]) -> np.ndarray:
            return self._objective_many(supernet, architectures)

        search = EvolutionarySearch(
            EvolutionConfig(population_size=self.config.population_size),
            initialize=initialize,
            mutate=mutate,
            evaluate=evaluate,
            crossover=crossover,
            key=lambda arch: arch.key(),
            rng=self.rng,
            clock=self.clock,
            evaluate_many=evaluate_many if self.config.batched_evaluation else None,
            validate=self._architecture_validator(),
        )
        if phase_index == 1:
            search.load_state_dict(meta["ea_state"], Architecture.from_dict)
        with tracer.span("nas.search.one_stage_search", iterations=iterations) as span:
            hook = self._generation_hook(
                checkpointer, "one_stage_search", "one-stage", {},
                supernet, search, lambda arch: arch.to_dict(),
            )
            result = search.run(iterations, on_generation=hook)
            span.attributes.update(best_score=float(result.best_score), evaluations=result.evaluations)
        best = result.best
        if checkpointer is not None:
            checkpointer.clear()
        return SearchResult(
            best_architecture=best,
            best_score=result.best_score,
            best_accuracy=self._path_accuracy(supernet, best),
            best_latency_ms=self._latency(best),
            upper_functions=best.upper_functions,
            lower_functions=best.lower_functions,
            stage1_history=[],
            stage2_history=result.history,
            search_time_s=self.clock.now,
            evaluations=result.evaluations,
            strategy="one-stage",
        )
