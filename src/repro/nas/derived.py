"""Stand-alone models derived from a searched architecture.

After the search, the winning :class:`~repro.nas.architecture.Architecture`
is instantiated as a :class:`DerivedModel` with its *real* feature widths
(the supernet's alignment layers are discarded, as the paper describes) and
trained from scratch for deployment or accuracy evaluation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.dataset import Batch
from repro.graph.batching import batched_knn_graph, batched_random_graph
from repro.graph.fused import fused_aggregate, fused_kernels_enabled, supports_fused
from repro.graph.message import build_messages
from repro.graph.scatter import scatter
from repro.models.classifier import ClassificationHead
from repro.nas.architecture import Architecture, EffectiveOp
from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concatenate, is_grad_enabled
from repro.obs.metrics import get_metrics

__all__ = ["DerivedModel", "GraphBuilder"]

#: Pluggable graph construction: ``(method, features, batch, k) -> edge_index``
#: where ``method`` is ``"knn"`` or ``"random"``.  The serving engine installs
#: a caching, deterministic builder here; ``None`` keeps the default behaviour.
GraphBuilder = Callable[[str, np.ndarray, np.ndarray, int], np.ndarray]


class DerivedModel(Module):
    """Executable model for a finalised architecture."""

    def __init__(
        self,
        architecture: Architecture,
        num_classes: int,
        k: int = 10,
        embed_dim: int = 64,
        dropout: float = 0.3,
        seed: int = 0,
    ):
        super().__init__()
        if k <= 0:
            raise ValueError("k must be positive")
        self.architecture = architecture
        self.k = k
        rng = np.random.default_rng(seed)
        self.ops: list[EffectiveOp] = architecture.effective_ops()
        self.combines: dict[int, Linear] = {}
        for index, op in enumerate(self.ops):
            if op.kind == "combine":
                layer = Linear(op.in_dim, op.out_dim, rng=rng)
                self.add_module(f"combine{index}", layer)
                self.combines[index] = layer
        self.head = ClassificationHead(
            architecture.output_dim(),
            num_classes,
            embed_dim=embed_dim,
            hidden_dims=(embed_dim, embed_dim // 2),
            dropout=dropout,
            rng=rng,
        )
        self._graph_rng = np.random.default_rng(seed + 1)
        self.graph_builder: GraphBuilder | None = None

    def _build_graph(self, method: str, features: np.ndarray, batch_vector: np.ndarray) -> np.ndarray:
        if self.graph_builder is not None:
            return self.graph_builder(method, features, batch_vector, self.k)
        if method == "knn":
            return batched_knn_graph(features, batch_vector, self.k)
        return batched_random_graph(batch_vector, self.k, self._graph_rng)

    def forward(self, batch: Batch) -> Tensor:
        """Classify a batch of point clouds with the derived architecture."""
        inputs = Tensor(batch.points)
        x = inputs
        edge_index: np.ndarray | None = None
        for index, op in enumerate(self.ops):
            if op.kind == "sample":
                edge_index = self._build_graph(op.sample_method, x.data, batch.batch)
            elif op.kind == "aggregate":
                if edge_index is None:
                    edge_index = self._build_graph("knn", x.data, batch.batch)
                if (
                    not is_grad_enabled()
                    and fused_kernels_enabled()
                    and supports_fused(op.message_type)
                ):
                    # Inference fast path: fused gather/message/reduce over
                    # CSR-sorted edges, no (E, F) message materialization.
                    # The edge index came out of a validating graph builder.
                    x = fused_aggregate(
                        x,
                        edge_index,
                        op.message_type,
                        op.aggregator,
                        num_nodes=x.shape[0],
                        validated=True,
                    )
                else:
                    get_metrics().count("graph.materialized.dispatch")
                    messages = build_messages(x, edge_index, op.message_type, validated=True)
                    x = scatter(
                        messages, edge_index[1], x.shape[0], op.aggregator, validated=True
                    )
            elif op.kind == "combine":
                x = F.leaky_relu(self.combines[index](x), 0.2)
            elif op.kind == "connect_skip":
                x = concatenate([x, inputs], axis=1)
            else:  # pragma: no cover - effective ops are exhaustive
                raise ValueError(f"unhandled effective op '{op.kind}'")
        return self.head(x, batch.batch, batch.num_graphs)
