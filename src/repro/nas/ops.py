"""Operations and functions of the fine-grained HGNAS design space (Table I).

The design space decouples GNN layers into four basic **operations** placed
at supernet positions, each parameterised by **functions**:

=============  =====================================================
Operation      Function
=============  =====================================================
Connect        skip-connect, identity
Aggregate      aggregator type: sum / min / max / mean
               message type: source pos / target pos / rel pos /
               distance / source||rel / target||rel / full
Combine        hidden dimension: 8, 16, 32, 64, 128, 256
Sample         KNN, random
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.graph.message import MESSAGE_TYPES

__all__ = [
    "OperationType",
    "AGGREGATOR_TYPES",
    "MESSAGE_TYPES",
    "COMBINE_DIMS",
    "SAMPLE_METHODS",
    "CONNECT_MODES",
    "FunctionSet",
    "random_function_set",
    "mutate_function_set",
    "function_space_size",
    "FUNCTION_FIELDS",
]


class OperationType(str, Enum):
    """The four basic operations of the decoupled message-passing paradigm."""

    CONNECT = "connect"
    AGGREGATE = "aggregate"
    COMBINE = "combine"
    SAMPLE = "sample"

    @classmethod
    def list(cls) -> list["OperationType"]:
        """All operation types, in canonical order."""
        return [cls.CONNECT, cls.AGGREGATE, cls.COMBINE, cls.SAMPLE]


#: Aggregator candidates for the aggregate operation.
AGGREGATOR_TYPES = ("sum", "min", "max", "mean")
#: Hidden-dimension candidates for the combine operation.
COMBINE_DIMS = (8, 16, 32, 64, 128, 256)
#: Graph-sampling candidates for the sample operation.
SAMPLE_METHODS = ("knn", "random")
#: Connection candidates for the connect operation.
CONNECT_MODES = ("skip", "identity")

#: Function fields with their candidate values, in encoding order.
FUNCTION_FIELDS: dict[str, tuple] = {
    "aggregator": AGGREGATOR_TYPES,
    "message_type": MESSAGE_TYPES,
    "combine_dim": COMBINE_DIMS,
    "sample_method": SAMPLE_METHODS,
    "connect_mode": CONNECT_MODES,
}


@dataclass(frozen=True)
class FunctionSet:
    """A complete function assignment shared by one half of the supernet.

    HGNAS shares one :class:`FunctionSet` among the upper half of the
    positions and another among the lower half (Alg. 1, stage 1), which
    collapses the function space from exponential-in-positions to a small
    product of the candidate lists.
    """

    aggregator: str = "max"
    message_type: str = "target_rel"
    combine_dim: int = 64
    sample_method: str = "knn"
    connect_mode: str = "skip"

    def __post_init__(self) -> None:
        if self.aggregator not in AGGREGATOR_TYPES:
            raise ValueError(f"unknown aggregator '{self.aggregator}'")
        if self.message_type not in MESSAGE_TYPES:
            raise ValueError(f"unknown message type '{self.message_type}'")
        if self.combine_dim not in COMBINE_DIMS:
            raise ValueError(f"combine_dim must be one of {COMBINE_DIMS}, got {self.combine_dim}")
        if self.sample_method not in SAMPLE_METHODS:
            raise ValueError(f"unknown sample method '{self.sample_method}'")
        if self.connect_mode not in CONNECT_MODES:
            raise ValueError(f"unknown connect mode '{self.connect_mode}'")

    def to_dict(self) -> dict[str, object]:
        """Serialise to a plain dictionary."""
        return {
            "aggregator": self.aggregator,
            "message_type": self.message_type,
            "combine_dim": self.combine_dim,
            "sample_method": self.sample_method,
            "connect_mode": self.connect_mode,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FunctionSet":
        """Deserialise from :meth:`to_dict` output."""
        return cls(
            aggregator=str(data["aggregator"]),
            message_type=str(data["message_type"]),
            combine_dim=int(data["combine_dim"]),
            sample_method=str(data["sample_method"]),
            connect_mode=str(data["connect_mode"]),
        )

    def replace(self, **changes: object) -> "FunctionSet":
        """Return a copy with selected fields changed."""
        data = self.to_dict()
        data.update(changes)
        return FunctionSet.from_dict(data)


def function_space_size() -> int:
    """Number of distinct :class:`FunctionSet` assignments (per half)."""
    size = 1
    for candidates in FUNCTION_FIELDS.values():
        size *= len(candidates)
    return size


def random_function_set(rng: np.random.Generator) -> FunctionSet:
    """Sample a uniformly random function set."""
    return FunctionSet(
        aggregator=str(rng.choice(AGGREGATOR_TYPES)),
        message_type=str(rng.choice(MESSAGE_TYPES)),
        combine_dim=int(rng.choice(COMBINE_DIMS)),
        sample_method=str(rng.choice(SAMPLE_METHODS)),
        connect_mode=str(rng.choice(CONNECT_MODES)),
    )


def mutate_function_set(
    functions: FunctionSet, rng: np.random.Generator, num_mutations: int = 1
) -> FunctionSet:
    """Return a copy with ``num_mutations`` random fields resampled."""
    if num_mutations <= 0:
        raise ValueError("num_mutations must be positive")
    fields = list(FUNCTION_FIELDS.keys())
    chosen = rng.choice(len(fields), size=min(num_mutations, len(fields)), replace=False)
    changes: dict[str, object] = {}
    for index in np.atleast_1d(chosen):
        name = fields[int(index)]
        candidates = FUNCTION_FIELDS[name]
        current = getattr(functions, name)
        alternatives = [c for c in candidates if c != current]
        changes[name] = alternatives[int(rng.integers(0, len(alternatives)))]
    return functions.replace(**changes)
