"""Stateful pipeline workspace: one entry point, persisted stage artifacts.

* :mod:`repro.workspace.config` — :class:`InferenceDefaults`, the shared
  deployment-scenario constants every stage resolves from.
* :mod:`repro.workspace.store` — the content-addressed
  :class:`ArtifactStore` persisting predictors, search results and trained
  derived models across runs.
* :mod:`repro.workspace.pipeline` — :class:`Workspace` with the stage
  methods ``profile`` / ``measure_latency`` / ``train_predictor`` /
  ``search`` / ``derive`` / ``deploy`` / ``serve`` / ``serve_pool``.

The one-shot helpers of :mod:`repro.api` and the ``repro`` CLI are both
built on top of this package.

The pipeline names are re-exported lazily: :mod:`repro.serving` (imported
by the pipeline) itself draws its registration defaults from
:mod:`repro.workspace.config`, and an eager import here would close that
cycle before :mod:`repro.serving.engine` finishes initialising.
"""

from importlib import import_module

from repro.workspace.config import DEFAULTS, InferenceDefaults
from repro.workspace.store import (
    Artifact,
    ArtifactStore,
    array_fingerprint,
    canonical_key,
    dataset_fingerprint,
)

_LAZY_EXPORTS = {
    "PredictorBundle": "repro.workspace.pipeline",
    "PoolServeReport": "repro.workspace.pipeline",
    "ServeReport": "repro.workspace.pipeline",
    "Workspace": "repro.workspace.pipeline",
}

__all__ = [
    "DEFAULTS",
    "InferenceDefaults",
    "PredictorBundle",
    "PoolServeReport",
    "ServeReport",
    "Workspace",
    "Artifact",
    "ArtifactStore",
    "array_fingerprint",
    "canonical_key",
    "dataset_fingerprint",
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.workspace' has no attribute '{name}'")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
