"""The :class:`Workspace` — one stateful entry point for the paper's pipeline.

The HGNAS workflow is a pipeline: profile a device, train the GNN latency
predictor, run the hierarchical search, derive and train the winner, deploy
it, serve traffic.  A ``Workspace`` owns everything the stages share — the
target :class:`~repro.hardware.device.DeviceSpec`, one
:class:`~repro.workspace.config.InferenceDefaults`, a content-addressed
:class:`~repro.workspace.store.ArtifactStore`, a
:class:`~repro.serving.registry.ModelRegistry` and a persistent
:class:`~repro.serving.engine.InferenceEngine` — so repeated stage calls
with the same inputs are cache hits (pass ``fresh=True`` to bypass) and the
stages compose: ``search(latency_oracle="predictor")`` reuses the predictor
``train_predictor()`` persisted, ``serve()`` reuses warm engine caches.

The one-shot helpers in :mod:`repro.api` are thin shims over a throwaway
``Workspace``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import pathlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.backends import active_backend_name, get_backend, use_backend
from repro.data.dataset import InMemoryDataset
from repro.hardware.device import DeviceSpec, get_device
from repro.hardware.profiler import ProfileResult, profile_workload
from repro.nas.architecture import Architecture
from repro.nas.derived import DerivedModel
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.nas.checkpoint import SearchCheckpointer
from repro.nas.evolution import HistoryPoint
from repro.nas.latency_eval import EvaluatorRequest, list_latency_evaluators, make_latency_evaluator
from repro.nas.ops import FunctionSet
from repro.nas.search import HGNAS, HGNASConfig, SearchResult
from repro.nas.trainer import train_classifier
from repro.obs.tracer import trace_span
from repro.predictor.dataset import generate_predictor_dataset
from repro.predictor.metrics import PredictorMetrics
from repro.predictor.model import LatencyPredictor, PredictorConfig
from repro.predictor.train import PredictorTrainingConfig, evaluate_predictor, train_predictor
from repro.serving.engine import EngineConfig, InferenceEngine, InferenceResult
from repro.serving.pool import PoolConfig, WorkerPoolEngine
from repro.serving.registry import DeployedModel, ModelRegistry
from repro.utils.logging import get_logger
from repro.workspace.config import DEFAULTS, InferenceDefaults
from repro.workspace.store import ArtifactStore, array_fingerprint, dataset_fingerprint

__all__ = ["PredictorBundle", "PoolServeReport", "ServeReport", "Workspace"]

_LOGGER = get_logger("workspace")


@dataclass
class PredictorBundle:
    """A trained predictor with its validation metrics."""

    predictor: LatencyPredictor
    metrics: PredictorMetrics
    device: str


@dataclass
class ServeReport:
    """Results of a served request stream plus the engine that produced them."""

    results: list[InferenceResult]
    telemetry: dict
    engine: InferenceEngine


@dataclass
class PoolServeReport:
    """Results of a request stream served through a multi-process worker pool.

    ``telemetry`` is the fleet-wide report (frontend + every worker's
    shutdown snapshot merged); ``formatted`` its human-readable rendering,
    captured before the pool shut down.
    """

    results: list[InferenceResult]
    telemetry: dict
    formatted: str
    workers: int


def _search_result_to_meta(result: SearchResult) -> dict[str, object]:
    return {
        "best_architecture": result.best_architecture.to_dict(),
        "best_score": result.best_score,
        "best_accuracy": result.best_accuracy,
        "best_latency_ms": result.best_latency_ms,
        "upper_functions": result.upper_functions.to_dict(),
        "lower_functions": result.lower_functions.to_dict(),
        "stage1_history": [dataclasses.asdict(point) for point in result.stage1_history],
        "stage2_history": [dataclasses.asdict(point) for point in result.stage2_history],
        "search_time_s": result.search_time_s,
        "evaluations": result.evaluations,
        "strategy": result.strategy,
    }


def _search_result_from_meta(meta: dict) -> SearchResult:
    return SearchResult(
        best_architecture=Architecture.from_dict(meta["best_architecture"]),
        best_score=float(meta["best_score"]),
        best_accuracy=float(meta["best_accuracy"]),
        best_latency_ms=float(meta["best_latency_ms"]),
        upper_functions=FunctionSet.from_dict(meta["upper_functions"]),
        lower_functions=FunctionSet.from_dict(meta["lower_functions"]),
        stage1_history=[HistoryPoint(**point) for point in meta["stage1_history"]],
        stage2_history=[HistoryPoint(**point) for point in meta["stage2_history"]],
        search_time_s=float(meta["search_time_s"]),
        evaluations=int(meta["evaluations"]),
        strategy=str(meta["strategy"]),
    )


class Workspace:
    """Stateful façade over the profile → predict → search → derive → serve pipeline.

    Args:
        device: Target device name/alias or a built
            :class:`~repro.hardware.device.DeviceSpec`; resolved once and
            shared by every stage.
        root: Directory for the on-disk artifact store.  ``None`` keeps
            artifacts in memory only (stage results still cache within this
            workspace's lifetime, but do not survive the process).
        defaults: The shared :class:`InferenceDefaults`; every stage accepts
            per-call overrides.
        registry: Serving registry to deploy into; a fresh one is created
            when omitted.
        backend: Compute backend (a registered name from
            :mod:`repro.backends`) the stages run under; ``None`` follows the
            ambient active backend.  Orthogonal to the dtype policy; recorded
            in stage spans and artifact cache keys either way.

    Repeating a stage call with identical inputs returns the persisted
    artifact instead of recomputing (``fresh=True`` bypasses and overwrites).
    """

    def __init__(
        self,
        device: str | DeviceSpec = "jetson-tx2",
        root: str | pathlib.Path | None = None,
        defaults: InferenceDefaults | None = None,
        registry: ModelRegistry | None = None,
        backend: str | None = None,
    ):
        self.device = device if isinstance(device, DeviceSpec) else get_device(device)
        self.defaults = defaults if defaults is not None else DEFAULTS
        self.backend = None if backend is None else get_backend(backend).name
        self.store = ArtifactStore(root)
        self.registry = registry if registry is not None else ModelRegistry()
        self._engine: InferenceEngine | None = None
        self._engine_config: EngineConfig | None = None
        self._last_deployed: str | None = None

    @property
    def root(self) -> pathlib.Path | None:
        """The artifact store's on-disk root (``None`` for memory-only)."""
        return self.store.root

    def cache_stats(self) -> dict[str, object]:
        """Artifact-store hit/miss counters."""
        return self.store.stats()

    def _device_key(self) -> dict[str, object]:
        # The full spec, not just the name: two devices registered under the
        # same name with different coefficients must not share artifacts.
        return dataclasses.asdict(self.device)

    def _backend_name(self) -> str:
        """The effective compute backend of this workspace's stages.

        Part of every compute-stage artifact key: backends are numerically
        equivalent only to allclose (blocked/jitted summation orders differ),
        so artifacts produced under different backends must not alias.
        """
        return self.backend or active_backend_name()

    def _backend_context(self):
        if self.backend is None:
            return contextlib.nullcontext()
        return use_backend(self.backend)

    # ------------------------------------------------------------------ #
    # Stage 1: profiling / measurement
    # ------------------------------------------------------------------ #
    def profile(
        self,
        architecture: Architecture,
        num_points: int | None = None,
        k: int | None = None,
        num_classes: int | None = None,
    ) -> ProfileResult:
        """Latency breakdown and peak memory of ``architecture`` on this device."""
        with trace_span("workspace.profile", device=self.device.name, backend=self._backend_name()):
            scenario = self.defaults.resolve(num_points=num_points, k=k, num_classes=num_classes)
            workload = architecture.to_workload(scenario.num_points, scenario.k, scenario.num_classes)
            return profile_workload(workload, self.device)

    def measure_latency(
        self,
        architecture: Architecture,
        noisy: bool = False,
        num_points: int | None = None,
        k: int | None = None,
        num_classes: int | None = None,
        seed: int | None = None,
    ) -> float:
        """Latency (ms) on this device, optionally with simulated measurement noise."""
        with trace_span(
            "workspace.measure_latency", device=self.device.name, noisy=noisy, backend=self._backend_name()
        ):
            scenario = self.defaults.resolve(num_points=num_points, k=k, num_classes=num_classes, seed=seed)
            evaluator = make_latency_evaluator(
                "measurement" if noisy else "oracle",
                EvaluatorRequest(
                    device=self.device,
                    num_points=scenario.num_points,
                    k=scenario.k,
                    num_classes=scenario.num_classes,
                    seed=scenario.seed,
                ),
            )
            return float(evaluator.evaluate(architecture))

    # ------------------------------------------------------------------ #
    # Stage 2: latency predictor
    # ------------------------------------------------------------------ #
    def train_predictor(
        self,
        num_samples: int = 400,
        num_positions: int = 12,
        epochs: int = 80,
        seed: int | None = None,
        predictor_config: PredictorConfig | None = None,
        training_config: PredictorTrainingConfig | None = None,
        fresh: bool = False,
    ) -> PredictorBundle:
        """Train (or load the cached) GNN latency predictor for this device.

        Samples ``num_samples`` architectures from the design space, labels
        them with the device's analytical model and fits the predictor.  The
        result is persisted in the artifact store keyed by device, sampling
        scale, both configs and seed, so an identical call skips training.
        """
        with trace_span(
            "workspace.train_predictor", device=self.device.name, backend=self._backend_name()
        ) as span, self._backend_context():
            seed = self.defaults.seed if seed is None else seed
            predictor_config = predictor_config or PredictorConfig(
                gcn_dims=(32, 48, 48),
                mlp_dims=(32, 16),
                num_points=self.defaults.num_points,
                k=self.defaults.k,
                seed=seed,
            )
            training_config = training_config or PredictorTrainingConfig(
                epochs=epochs, batch_size=32, learning_rate=1e-2, seed=seed
            )
            space_config = DesignSpaceConfig(
                num_positions=num_positions, k=self.defaults.k, num_points=self.defaults.num_points
            )
            key = self.store.key_for(
                "predictor",
                {
                    "device": self._device_key(),
                    "num_samples": num_samples,
                    "space": dataclasses.asdict(space_config),
                    "predictor_config": dataclasses.asdict(predictor_config),
                    "training_config": dataclasses.asdict(training_config),
                    "seed": seed,
                    # Backends are only allclose-equivalent, so artifacts from
                    # different backends must not alias each other.
                    "backend": self._backend_name(),
                },
            )
            if not fresh:
                cached = self.store.load("predictor", key)
                if cached is not None:
                    _LOGGER.info("predictor cache hit (%s)", key)
                    span.attributes["cache_hit"] = True
                    return self._predictor_bundle_from_artifact(cached)
            span.attributes["cache_hit"] = False
            rng = np.random.default_rng(seed)
            dataset = generate_predictor_dataset(DesignSpace(space_config), self.device, num_samples, rng)
            train_split, val_split = dataset.split(0.75, rng)
            predictor = LatencyPredictor(predictor_config)
            train_predictor(predictor, train_split, val_split, training_config)
            metrics = evaluate_predictor(predictor, val_split)
            self.store.save(
                "predictor",
                key,
                meta={
                    "device": self.device.name,
                    "predictor_config": dataclasses.asdict(predictor_config),
                    "target_mean": predictor.target_mean,
                    "target_std": predictor.target_std,
                    "metrics": dataclasses.asdict(metrics),
                },
                arrays=predictor.state_dict(),
            )
            return PredictorBundle(predictor=predictor, metrics=metrics, device=self.device.name)

    def _predictor_bundle_from_artifact(self, artifact) -> PredictorBundle:
        # Pass every stored field through so a PredictorConfig grown later
        # round-trips instead of silently resetting new fields to defaults.
        config_data = dict(artifact.meta["predictor_config"])
        config_data["gcn_dims"] = tuple(config_data["gcn_dims"])
        config_data["mlp_dims"] = tuple(config_data["mlp_dims"])
        config = PredictorConfig(**config_data)
        predictor = LatencyPredictor(config)
        predictor.load_state_dict(dict(artifact.arrays))
        predictor.set_target_normalization(
            float(artifact.meta["target_mean"]), float(artifact.meta["target_std"])
        )
        metrics = PredictorMetrics(**artifact.meta["metrics"])
        return PredictorBundle(predictor=predictor, metrics=metrics, device=str(artifact.meta["device"]))

    # ------------------------------------------------------------------ #
    # Stage 3: architecture search
    # ------------------------------------------------------------------ #
    def search(
        self,
        train_dataset: InMemoryDataset,
        val_dataset: InMemoryDataset,
        config: HGNASConfig | None = None,
        latency_oracle: str = "oracle",
        predictor: LatencyPredictor | None = None,
        seed: int | None = None,
        strategy: str = "multi-stage",
        predictor_num_samples: int = 200,
        predictor_epochs: int = 40,
        batched_evaluation: bool | None = None,
        fresh: bool = False,
        resume: bool = False,
        checkpoint: bool | None = None,
        checkpoint_every: int = 1,
    ) -> SearchResult:
        """Run (or load the cached) hardware-aware search for this device.

        ``latency_oracle`` names any registered evaluator; with
        ``"predictor"`` and no explicit ``predictor``, the workspace's own
        (cached) :meth:`train_predictor` supplies one, trained with
        ``predictor_num_samples``/``predictor_epochs``.
        ``batched_evaluation`` overrides the config's population-scoring
        path (batched fast path vs sequential; the results are identical).
        Results are keyed by device, search config, oracle, strategy, seed
        and dataset fingerprints, so the genotype and its history survive
        restarts.

        Fault tolerance: with ``checkpoint`` on (the default for rooted
        workspaces), progress is committed after every supernet epoch and
        EA generation under the same content key, and ``resume=True`` picks
        the committed checkpoint up after a crash — the resumed search is
        bit-identical to an uninterrupted one.  Without ``resume``, any
        stale checkpoint is discarded and the search starts over.
        ``checkpoint_every`` thins the commit cadence (resume then replays
        the uncommitted tail deterministically).
        """
        seed = self.defaults.seed if seed is None else seed
        oracle = latency_oracle.strip().lower()
        if oracle not in list_latency_evaluators():
            raise ValueError(
                f"unknown latency oracle '{latency_oracle}'; registered: {list_latency_evaluators()}"
            )
        if strategy not in ("multi-stage", "one-stage"):
            raise ValueError(f"unknown search strategy '{strategy}' (use 'multi-stage' or 'one-stage')")
        config = config or HGNASConfig(num_classes=train_dataset.num_classes, seed=seed)
        if batched_evaluation is not None and batched_evaluation != config.batched_evaluation:
            config = dataclasses.replace(config, batched_evaluation=batched_evaluation)
        # Any evaluator (including custom ones) may consult the workspace's
        # predictor factory when no explicit predictor is given, so the
        # factory's knobs are part of the result's identity in that case.
        may_use_workspace_predictor = predictor is None
        # The evaluation path (batched vs sequential) is excluded from the
        # key: it is bit-identical by contract, so both produce the same
        # artifact (and pre-existing cached results keep their identity).
        config_key = {
            field: value
            for field, value in dataclasses.asdict(config).items()
            if field != "batched_evaluation"
        }
        key = self.store.key_for(
            "search",
            {
                "device": self._device_key(),
                "config": config_key,
                "oracle": oracle,
                "strategy": strategy,
                "seed": seed,
                "train_data": dataset_fingerprint(train_dataset),
                "val_data": dataset_fingerprint(val_dataset),
                "predictor": array_fingerprint(predictor.state_dict()) if predictor is not None else None,
                # The auto-trained predictor inherits this workspace's
                # defaults (design-space k/num_points), so they are part of
                # the result's identity whenever the factory could run.
                "predictor_training": (
                    {
                        "num_samples": predictor_num_samples,
                        "epochs": predictor_epochs,
                        "defaults": self.defaults.key_dict(),
                    }
                    if may_use_workspace_predictor
                    else None
                ),
                "backend": self._backend_name(),
            },
        )
        with trace_span(
            "workspace.search",
            device=self.device.name,
            oracle=oracle,
            strategy=strategy,
            backend=self._backend_name(),
        ) as span, self._backend_context():
            if not fresh:
                cached = self.store.load("search", key)
                if cached is not None:
                    _LOGGER.info("search cache hit (%s)", key)
                    span.attributes["cache_hit"] = True
                    return _search_result_from_meta(cached.meta)
            span.attributes["cache_hit"] = False

            def predictor_factory() -> LatencyPredictor:
                return self.train_predictor(
                    num_samples=predictor_num_samples,
                    num_positions=config.num_positions,
                    epochs=predictor_epochs,
                    seed=seed,
                ).predictor

            search = HGNAS.for_device(
                config,
                train_dataset,
                val_dataset,
                self.device,
                latency_oracle=oracle,
                predictor=predictor,
                predictor_factory=predictor_factory,
                rng=np.random.default_rng(seed),
                seed=seed,
            )
            use_checkpoint = checkpoint if checkpoint is not None else self.store.root is not None
            checkpointer = None
            if use_checkpoint or resume:
                checkpointer = SearchCheckpointer(self.store, key, every=checkpoint_every)
                if not resume:
                    checkpointer.clear()
            result = (
                search.run(checkpointer=checkpointer)
                if strategy == "multi-stage"
                else search.run_one_stage(checkpointer=checkpointer)
            )
            span.attributes.update(
                best_score=float(result.best_score),
                search_time_s=float(result.search_time_s),
                evaluations=int(result.evaluations),
            )
            self.store.save("search", key, meta=_search_result_to_meta(result))
            return result

    # ------------------------------------------------------------------ #
    # Stage 4: derive / deploy / serve
    # ------------------------------------------------------------------ #
    def derive(
        self,
        architecture: Architecture,
        num_classes: int,
        k: int | None = None,
        embed_dim: int | None = None,
        seed: int | None = None,
        train_dataset: InMemoryDataset | None = None,
        train_epochs: int = 5,
        train_batch_size: int = 8,
        fresh: bool = False,
    ) -> DerivedModel:
        """Instantiate ``architecture`` as a stand-alone model, optionally trained.

        Trained weights are persisted (keyed by genotype, head configuration
        and training data), so re-deriving the same model loads them instead
        of re-training.  Untrained instantiation is cheap and never cached.
        """
        with trace_span(
            "workspace.derive", device=self.device.name, backend=self._backend_name()
        ) as span, self._backend_context():
            scenario = self.defaults.resolve(k=k, embed_dim=embed_dim, seed=seed)
            model = DerivedModel(
                architecture,
                num_classes=num_classes,
                k=scenario.k,
                embed_dim=scenario.embed_dim,
                seed=scenario.seed,
            )
            span.attributes["trained"] = train_dataset is not None
            if train_dataset is None:
                return model
            key = self.store.key_for(
                "derived",
                {
                    "architecture": architecture.to_dict(),
                    "num_classes": num_classes,
                    "k": scenario.k,
                    "embed_dim": scenario.embed_dim,
                    "seed": scenario.seed,
                    "train_data": dataset_fingerprint(train_dataset),
                    "train_epochs": train_epochs,
                    "train_batch_size": train_batch_size,
                    "backend": self._backend_name(),
                },
            )
            if not fresh:
                cached = self.store.load("derived", key)
                if cached is not None:
                    _LOGGER.info("derived-model cache hit (%s)", key)
                    span.attributes["cache_hit"] = True
                    model.load_state_dict(dict(cached.arrays))
                    return model
            span.attributes["cache_hit"] = False
            train_classifier(
                model,
                train_dataset,
                epochs=train_epochs,
                batch_size=train_batch_size,
                rng=np.random.default_rng(scenario.seed),
            )
            self.store.save(
                "derived",
                key,
                meta={
                    "architecture": architecture.to_dict(),
                    "num_classes": num_classes,
                    "k": scenario.k,
                    "embed_dim": scenario.embed_dim,
                    "seed": scenario.seed,
                    "train_epochs": train_epochs,
                    "train_batch_size": train_batch_size,
                },
                arrays=model.state_dict(),
            )
            return model

    def deploy(
        self,
        architecture: Architecture,
        num_classes: int,
        name: str | None = None,
        k: int | None = None,
        embed_dim: int | None = None,
        seed: int | None = None,
        slo_ms: float | None = None,
        train_dataset: InMemoryDataset | None = None,
        train_epochs: int = 5,
        train_batch_size: int = 8,
        replace: bool = False,
        fresh: bool = False,
    ) -> DeployedModel:
        """Derive (via the cache) and register ``architecture`` in this workspace's registry."""
        with trace_span("workspace.deploy", device=self.device.name, backend=self._backend_name()):
            scenario = self.defaults.resolve(k=k, embed_dim=embed_dim, seed=seed)
            model = self.derive(
                architecture,
                num_classes,
                k=scenario.k,
                embed_dim=scenario.embed_dim,
                seed=scenario.seed,
                train_dataset=train_dataset,
                train_epochs=train_epochs,
                train_batch_size=train_batch_size,
                fresh=fresh,
            )
            entry = self.registry.register(
                name=name or architecture.name or "deployed",
                architecture=architecture,
                device=self.device,
                num_classes=num_classes,
                k=scenario.k,
                embed_dim=scenario.embed_dim,
                seed=scenario.seed,
                slo_ms=slo_ms,
                model=model,
                replace=replace,
            )
            # Remembered by name, not registry position: a replace keeps its
            # original insertion slot, so list()[-1] is not "most recent".
            self._last_deployed = entry.name
            return entry

    def engine(self, config: EngineConfig | None = None) -> InferenceEngine:
        """The workspace's persistent inference engine (caches stay warm).

        Created on first use; passing a different ``config`` later rebuilds
        it (and drops the warm caches).  A workspace pinned to a compute
        backend passes it down to the engine unless the config already names
        one of its own.
        """
        if config is not None or self._engine is None:
            resolved = config
            if self.backend is not None and (resolved is None or resolved.backend is None):
                resolved = dataclasses.replace(resolved or EngineConfig(), backend=self.backend)
            if self._engine is None or (config is not None and resolved != self._engine_config):
                self._engine_config = resolved
                self._engine = InferenceEngine(self.registry, resolved)
        return self._engine

    def serve(
        self,
        clouds: Iterable[np.ndarray] | Sequence[np.ndarray],
        name: str | None = None,
        config: EngineConfig | None = None,
    ) -> ServeReport:
        """Serve a stream of point clouds through a deployed model.

        ``name`` defaults to the most recently deployed model.  Follow-up
        calls reuse the same engine, so result/edge caches stay warm across
        request waves.
        """
        if name is None:
            names = self.registry.list()
            if not names:
                raise ValueError("no deployed models in this workspace; call deploy() first")
            name = self._last_deployed if self._last_deployed in names else names[-1]
        clouds = list(clouds)
        with trace_span(
            "workspace.serve",
            device=self.device.name,
            model=name,
            requests=len(clouds),
            backend=self._backend_name(),
        ):
            engine = self.engine(config)
            results = engine.submit_many(name, clouds)
            return ServeReport(results=results, telemetry=engine.report(), engine=engine)

    def serve_pool(
        self,
        clouds: Iterable[np.ndarray] | Sequence[np.ndarray],
        name: str | None = None,
        config: EngineConfig | None = None,
        pool_config: PoolConfig | None = None,
    ) -> PoolServeReport:
        """Serve a stream through a multi-process worker pool.

        Spawns ``pool_config.workers`` processes, each hosting a full
        engine over this workspace's registry, serves the stream across
        them, then drains and shuts the pool down.  A rooted workspace
        hosts the shared cross-process cache tier under
        ``<root>/serving_cache``, so cached results survive the pool and
        warm the next one.
        """
        if name is None:
            names = self.registry.list()
            if not names:
                raise ValueError("no deployed models in this workspace; call deploy() first")
            name = self._last_deployed if self._last_deployed in names else names[-1]
        clouds = list(clouds)
        pool_config = pool_config or PoolConfig()
        if self.backend is not None and (config is None or config.backend is None):
            config = dataclasses.replace(config or EngineConfig(), backend=self.backend)
        with trace_span(
            "workspace.serve_pool",
            device=self.device.name,
            model=name,
            requests=len(clouds),
            workers=pool_config.workers,
            backend=self._backend_name(),
        ):
            with WorkerPoolEngine(
                self.registry, config, pool_config, root=self.store.root
            ) as pool:
                results = pool.submit_many(name, clouds)
                pool.shutdown()
                return PoolServeReport(
                    results=results,
                    telemetry=pool.report(),
                    formatted=pool.format_report(),
                    workers=pool_config.workers,
                )
