"""Content-addressed artifact store backing the Workspace pipeline.

Artifacts are keyed by the sha256 of the canonical JSON of their inputs
(stage name, device spec, stage configuration, seeds, dataset
fingerprints), so *identical pipeline inputs always map to the same key*
and a repeated stage call is a cache hit instead of a recomputation.

On-disk layout (when a root directory is given)::

    <root>/<stage>/<key>/meta.json     # JSON: stage, key, payload metadata
    <root>/<stage>/<key>/arrays.npz    # optional: named weight arrays

Every store also keeps an in-memory layer, so a root-less store (the
throwaway workspaces behind :mod:`repro.api`) still caches within its own
lifetime, while a rooted store survives process restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import uuid
import zipfile
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.faults import fault_point
from repro.obs.metrics import get_metrics
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, load_npz, save_json, save_npz, to_jsonable

__all__ = [
    "Artifact",
    "ArtifactStore",
    "canonical_key",
    "array_fingerprint",
    "dataset_fingerprint",
]

_FORMAT = "repro.workspace.artifact/v1"

_LOGGER = get_logger("workspace.store")


def _file_checksum(path: pathlib.Path) -> str:
    """blake2b digest of a file's bytes (the integrity stamp in meta.json)."""
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def canonical_key(payload: object, digits: int = 16) -> str:
    """Hex digest of the canonical (sorted, compact) JSON form of ``payload``."""
    blob = json.dumps(to_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:digits]


def array_fingerprint(arrays: Mapping[str, np.ndarray], digits: int = 16) -> str:
    """Content hash of a named-array mapping (e.g. a model ``state_dict``)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()[:digits]


def dataset_fingerprint(dataset, digits: int = 16) -> str:
    """Content hash of an :class:`~repro.data.dataset.InMemoryDataset`."""
    digest = hashlib.sha256()
    digest.update(str(dataset.num_classes).encode("utf-8"))
    for sample in dataset:
        digest.update(np.ascontiguousarray(sample.points).tobytes())
        digest.update(str(sample.label).encode("utf-8"))
    return digest.hexdigest()[:digits]


@dataclass
class Artifact:
    """One stored stage result: JSON metadata plus optional weight arrays."""

    stage: str
    key: str
    meta: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    path: pathlib.Path | None = None


class ArtifactStore:
    """Two-level (memory + optional disk) content-addressed artifact cache."""

    def __init__(self, root: str | pathlib.Path | None = None):
        self.root = pathlib.Path(root) if root is not None else None
        self._memory: dict[tuple[str, str], Artifact] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------ #
    def key_for(self, stage: str, inputs: Mapping[str, object]) -> str:
        """Content key for a stage invocation described by ``inputs``."""
        return canonical_key({"stage": stage, "inputs": inputs})

    def _entry_dir(self, stage: str, key: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / stage / key

    def keys(self, stage: str) -> list[str]:
        """Every stored key of ``stage``, across the memory and disk layers."""
        found = {key for (stored_stage, key) in self._memory if stored_stage == stage}
        if self.root is not None:
            stage_dir = self.root / stage
            if stage_dir.is_dir():
                for entry in stage_dir.iterdir():
                    if (entry / "meta.json").exists():
                        found.add(entry.name)
        return sorted(found)

    def contains(self, stage: str, key: str) -> bool:
        """Whether an artifact exists (without counting a hit or a miss)."""
        if (stage, key) in self._memory:
            return True
        return self.root is not None and (self._entry_dir(stage, key) / "meta.json").exists()

    def _drop_corrupt(self, stage: str, key: str, reason: str) -> None:
        """Discard a damaged entry so the caller falls through to recompute."""
        self.corrupt += 1
        get_metrics().count("workspace.store.corrupt")
        _LOGGER.warning("discarding corrupt artifact %s/%s: %s", stage, key, reason)
        self.discard(stage, key)

    def _load_disk(self, stage: str, key: str) -> Artifact | None:
        """Disk-layer read: verified artifact, or ``None`` (absent/corrupt)."""
        assert self.root is not None
        directory = self._entry_dir(stage, key)
        meta_path = directory / "meta.json"
        arrays_path = directory / "arrays.npz"
        try:
            document = load_json(meta_path)
        except FileNotFoundError:
            return None  # never written, or a racing discard
        except ValueError:
            self._drop_corrupt(stage, key, "unreadable meta.json")
            return None
        if document.get("format") != _FORMAT:
            self._drop_corrupt(stage, key, f"unrecognised format {document.get('format')!r}")
            return None
        # The meta document records whether the entry has arrays, so a
        # marker that promises arrays whose file is gone reads as a racing
        # discard — never as an artifact with silently-empty arrays.
        has_arrays = document.get("arrays", arrays_path.exists())
        arrays: dict[str, np.ndarray] = {}
        if has_arrays:
            spec = fault_point("workspace.store.load", stage=stage, key=key)
            if spec is not None and spec.action == "corrupt" and arrays_path.exists():
                with open(arrays_path, "r+b") as handle:  # truncate: real recovery path runs
                    handle.truncate(max(arrays_path.stat().st_size // 2, 1))
            try:
                expected = document.get("checksum")
                if expected is not None and _file_checksum(arrays_path) != expected:
                    self._drop_corrupt(stage, key, "arrays.npz checksum mismatch")
                    return None
                arrays = load_npz(arrays_path)
            except FileNotFoundError:
                return None  # racing discard between the meta and arrays reads
            except (zipfile.BadZipFile, ValueError, EOFError, OSError):
                self._drop_corrupt(stage, key, "unreadable arrays.npz")
                return None
        return Artifact(stage=stage, key=key, meta=document["meta"], arrays=arrays, path=directory)

    def load(self, stage: str, key: str) -> Artifact | None:
        """Return the stored artifact, or ``None`` on a cache miss.

        A damaged entry (torn write, bit rot, checksum mismatch against the
        stamp written by :meth:`save`) is logged, discarded and reported as
        a miss, so the pipeline recomputes instead of consuming poisoned
        arrays or crashing mid-stage.
        """
        memo = self._memory.get((stage, key))
        if memo is not None:
            self.hits += 1
            return memo
        if self.root is not None:
            artifact = self._load_disk(stage, key)
            if artifact is not None:
                self._memory[(stage, key)] = artifact
                self.hits += 1
                return artifact
        self.misses += 1
        return None

    def save(
        self,
        stage: str,
        key: str,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray] | None = None,
    ) -> Artifact:
        """Persist a stage result under ``(stage, key)``, overwriting any old entry."""
        meta = dict(meta)
        # Copy the arrays so later in-place mutation of live model weights
        # cannot corrupt the cached artifact.
        arrays = {name: np.array(value) for name, value in (arrays or {}).items()}
        path = None
        if self.root is not None:
            directory = self._entry_dir(stage, key)
            # Both files are staged under unique temp names and committed
            # with atomic renames — arrays first, then meta.json.  load()
            # only trusts entries whose meta.json exists, so an interrupted
            # save can neither read as a cache hit nor leave a truncated
            # file that poisons the key; and because temp names are unique
            # (uuid, not a fixed ".tmp"), any number of processes may race
            # a save of the same key — each commit is one writer's complete
            # bytes, last write wins, a concurrent reader sees some complete
            # version, never a torn one.
            for attempt in (0, 1):
                try:
                    token = uuid.uuid4().hex
                    arrays_path = directory / "arrays.npz"
                    checksum = None
                    if arrays:
                        # np.savez appends ".npz" to names missing it, so the
                        # temp name keeps the suffix for os.replace to find it.
                        staging_arrays = directory / f".{token}.tmp.npz"
                        save_npz(staging_arrays, arrays)
                        # Stamp the exact committed bytes; load() verifies the
                        # digest before trusting the arrays.
                        checksum = _file_checksum(staging_arrays)
                        os.replace(staging_arrays, arrays_path)
                    elif arrays_path.exists():
                        arrays_path.unlink()
                    staging_meta = directory / f".{token}.meta.tmp"
                    document = {"format": _FORMAT, "stage": stage, "key": key, "meta": meta, "arrays": bool(arrays)}
                    if checksum is not None:
                        document["checksum"] = checksum
                    save_json(staging_meta, document)
                    os.replace(staging_meta, directory / "meta.json")
                    break
                except FileNotFoundError:
                    # A racing discard() can rmdir the entry directory between
                    # our mkdir and a write; one retry recreates it after the
                    # racer is done with it.
                    if attempt:
                        raise
            path = directory
        artifact = Artifact(stage=stage, key=key, meta=meta, arrays=arrays, path=path)
        self._memory[(stage, key)] = artifact
        return artifact

    def discard(self, stage: str, key: str) -> bool:
        """Drop an artifact from both layers; returns whether anything existed."""
        existed = self._memory.pop((stage, key), None) is not None
        if self.root is not None:
            directory = self._entry_dir(stage, key)
            if directory.is_dir():
                # Only the committed files are deleted — meta.json (the
                # commit marker) first, so a racing reader sees "no entry",
                # never a marker whose arrays were deleted from under it.
                # Staging files belong to in-flight saves of other processes
                # and must survive (their os.replace will commit them).
                for name in ("meta.json", "arrays.npz"):
                    try:
                        (directory / name).unlink()
                        existed = True
                    except FileNotFoundError:  # racing discard/save
                        pass
                try:
                    directory.rmdir()
                except OSError:  # refilled (or never emptied) by a racer
                    pass
        return existed

    def stats(self) -> dict[str, object]:
        """Hit/miss counters and the store location."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "memory_entries": len(self._memory),
            "root": None if self.root is None else str(self.root),
        }
