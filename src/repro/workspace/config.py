"""Pipeline-facing re-export of the shared inference-scenario defaults.

The actual definitions live in :mod:`repro.defaults`, the lowest layer of
the package, so that :mod:`repro.nas.latency_eval` and
:mod:`repro.serving.registry` can draw the same constants without
importing upward into the workspace package.
"""

from repro.defaults import DEFAULTS, InferenceDefaults

__all__ = ["InferenceDefaults", "DEFAULTS"]
