"""The process-global fault injector and the ``fault_point`` call-site hook.

Production code marks its failure-prone seams with::

    spec = fault_point("serving.worker.serve", worker=worker_id)

which is a no-op (``None``) unless a :class:`~repro.faults.plan.FaultPlan`
is active.  Plans activate two ways:

* :func:`use_faults` — a context manager for the current process.  It also
  exports the plan through ``REPRO_FAULT_PLAN`` so worker processes
  spawned inside the context inherit it (forked children additionally
  inherit the live injector object).
* Environment — a process whose ``REPRO_FAULT_PLAN`` is set builds its
  injector lazily on the first ``fault_point`` call, which is how the CI
  chaos smoke drives ``repro serve`` without touching the CLI surface.

``crash``/``delay``/``error`` actions are executed here; ``corrupt`` and
``drop`` specs are returned so the call site can damage its own state
realistically.  All counting is per-process and lock-protected, so a
plan's ``after``/``times`` windows are deterministic per worker.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.faults.plan import ENV_VAR, FaultPlan, FaultSpec
from repro.obs.metrics import get_metrics
from repro.utils.logging import get_logger

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "use_faults",
    "fault_point",
    "get_injector",
    "reset_faults",
]

_LOGGER = get_logger("faults")


class InjectedFault(RuntimeError):
    """Raised by ``error``-action specs; carries the injection point name."""

    def __init__(self, message: str, point: str):
        super().__init__(message)
        self.point = point


class FaultInjector:
    """Evaluates a plan at call sites; owns per-process hit/fire counters."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._hits: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self._rngs: dict[int, np.random.Generator] = {}
        self.history: list[tuple[str, str]] = []

    def fired_count(self, point: str | None = None) -> int:
        with self._lock:
            if point is None:
                return len(self.history)
            return sum(1 for fired_point, _ in self.history if fired_point == point)

    def _should_fire(self, index: int, spec: FaultSpec, context: dict[str, Any]) -> bool:
        """Counter bookkeeping under the lock; no side effects beyond it."""
        if not spec.matches(context):
            return False
        self._hits[index] = self._hits.get(index, 0) + 1
        if self._hits[index] <= spec.after:
            return False
        if spec.times and self._fired.get(index, 0) >= spec.times:
            return False
        if spec.probability < 1.0:
            rng = self._rngs.setdefault(index, np.random.default_rng(spec.seed))
            if rng.random() >= spec.probability:
                return False
        self._fired[index] = self._fired.get(index, 0) + 1
        self.history.append((spec.point, spec.action))
        return True

    def fire(self, point: str, **context: Any) -> FaultSpec | None:
        """Visit ``point``; execute/return the first spec that fires."""
        chosen: FaultSpec | None = None
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if spec.point != point:
                    continue
                if self._should_fire(index, spec, context):
                    chosen = spec
                    break
        if chosen is None:
            return None
        get_metrics().count(f"faults.injected.{chosen.action}")
        _LOGGER.warning("fault injected at %s: %s (%s)", point, chosen.action, chosen.message)
        if chosen.action == "crash":
            # Mirrors a hard kill: no cleanup handlers, no queue flushes.
            os._exit(73)
        if chosen.action == "delay":
            time.sleep(chosen.delay_s)
            return chosen
        if chosen.action == "error":
            raise InjectedFault(f"{chosen.message} [{point}]", point)
        return chosen  # "corrupt" / "drop": the call site acts on it


_STATE_LOCK = threading.Lock()
_INJECTOR: FaultInjector | None = None
_ENV_CHECKED = False


def get_injector() -> FaultInjector | None:
    """The active injector, building one from ``REPRO_FAULT_PLAN`` if set."""
    global _INJECTOR, _ENV_CHECKED
    if _INJECTOR is not None:
        return _INJECTOR
    if _ENV_CHECKED:
        return None
    with _STATE_LOCK:
        if _INJECTOR is None and not _ENV_CHECKED:
            _ENV_CHECKED = True
            payload = os.environ.get(ENV_VAR)
            if payload:
                _INJECTOR = FaultInjector(FaultPlan.from_json(payload))
                _LOGGER.warning("fault plan activated from %s (%d specs)", ENV_VAR, len(_INJECTOR.plan.specs))
    return _INJECTOR


def reset_faults() -> None:
    """Deactivate any plan (process-local; leaves the environment alone)."""
    global _INJECTOR, _ENV_CHECKED
    with _STATE_LOCK:
        _INJECTOR = None
        _ENV_CHECKED = True


def fault_point(point: str, **context: Any) -> FaultSpec | None:
    """Injection hook for production code; ``None`` unless a plan fires here."""
    injector = get_injector()
    if injector is None:
        return None
    return injector.fire(point, **context)


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Activate ``plan`` for this process and (via the env) its children."""
    global _INJECTOR, _ENV_CHECKED
    injector = FaultInjector(plan)
    with _STATE_LOCK:
        previous = _INJECTOR
        previous_env = os.environ.get(ENV_VAR)
        _INJECTOR = injector
        _ENV_CHECKED = True
        os.environ[ENV_VAR] = plan.to_json()
    try:
        yield injector
    finally:
        with _STATE_LOCK:
            _INJECTOR = previous
            if previous_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous_env
