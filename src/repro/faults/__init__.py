"""Deterministic fault injection: named points, seedable plans, chaos tests.

See :mod:`repro.faults.plan` for the plan format and
:mod:`repro.faults.injector` for activation semantics.  Injection points
currently wired into the tree:

========================== ====================================================
``serving.worker.serve``    pool worker message loop (crash/delay/error)
``serving.diskcache.get``   shared-array cache read (corrupt → quarantine path)
``workspace.store.load``    artifact load (corrupt → checksum-mismatch path)
``serving.tcp.read``        TCP client response read (delay → read timeout)
``nas.search.checkpoint``   just after a search checkpoint commits (error →
                            simulated kill for resume tests)
========================== ====================================================
"""

from repro.faults.injector import (
    FaultInjector,
    InjectedFault,
    fault_point,
    get_injector,
    reset_faults,
    use_faults,
)
from repro.faults.plan import ACTIONS, ENV_VAR, FaultPlan, FaultSpec

__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
    "get_injector",
    "reset_faults",
    "use_faults",
]
