"""Declarative fault plans: what to break, where, and how many times.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming
an *injection point* (a short dotted string such as
``"serving.worker.serve"``) and an action to take when the running code
reaches it.  Plans are plain data — JSON round-trippable so they can be
passed to child worker processes through an environment variable and
recorded alongside test failures for exact replay.

Actions
-------
``crash``
    Terminate the current process immediately (``os._exit``), simulating
    a segfault/OOM-kill of a pool worker.
``delay``
    Sleep ``delay_s`` seconds before continuing, simulating a stalled
    worker or a slow peer.
``error``
    Raise :class:`~repro.faults.injector.InjectedFault`, simulating an
    unexpected exception (or, at a checkpoint site, a kill signal).
``corrupt`` / ``drop``
    Returned to the *call site* to act on — e.g. the shared-array cache
    garbles the on-disk file before reading it so the real corruption
    path is exercised, not a mock of it.

Determinism: every spec fires on exact per-process hit counts (``after``
skips the first N matching visits, ``times`` bounds total firings) and
any probabilistic firing draws from a per-spec generator seeded from the
plan — two runs of the same plan over the same workload inject the same
faults at the same points.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["FaultSpec", "FaultPlan", "ACTIONS", "ENV_VAR"]

#: Environment variable carrying a JSON-encoded plan into child processes.
ENV_VAR = "REPRO_FAULT_PLAN"

ACTIONS = ("crash", "delay", "error", "corrupt", "drop")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire ``action`` at injection point ``point``.

    ``match`` scopes the spec to call sites whose keyword payload equals
    every listed item (e.g. ``{"worker": 1}`` targets one pool worker).
    ``after`` skips the first N matching visits; ``times`` caps how many
    visits fire (0 = unlimited).  ``probability`` < 1 makes firing a
    seeded Bernoulli draw instead of a certainty.
    """

    point: str
    action: str
    after: int = 0
    times: int = 1
    delay_s: float = 0.0
    probability: float = 1.0
    seed: int = 0
    match: Mapping[str, Any] = field(default_factory=dict)
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("FaultSpec.point must be a non-empty string")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; expected one of {ACTIONS}")
        if self.after < 0:
            raise ValueError("FaultSpec.after must be >= 0")
        if self.times < 0:
            raise ValueError("FaultSpec.times must be >= 0 (0 = unlimited)")
        if self.action == "delay" and self.delay_s < 0:
            raise ValueError("FaultSpec.delay_s must be >= 0")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("FaultSpec.probability must be in (0, 1]")

    def matches(self, context: Mapping[str, Any]) -> bool:
        """True when every ``match`` item equals the call-site payload."""
        return all(key in context and context[key] == value for key, value in self.match.items())

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": self.point,
            "action": self.action,
            "after": self.after,
            "times": self.times,
            "delay_s": self.delay_s,
            "probability": self.probability,
            "seed": self.seed,
            "match": dict(self.match),
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            point=str(document["point"]),
            action=str(document["action"]),
            after=int(document.get("after", 0)),
            times=int(document.get("times", 1)),
            delay_s=float(document.get("delay_s", 0.0)),
            probability=float(document.get("probability", 1.0)),
            seed=int(document.get("seed", 0)),
            match=dict(document.get("match", {})),
            message=str(document.get("message", "injected fault")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec`; first matching spec wins."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def from_specs(cls, specs: Iterable[FaultSpec]) -> "FaultPlan":
        return cls(specs=tuple(specs))

    def to_dict(self) -> dict[str, Any]:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec.from_dict(entry) for entry in document.get("specs", [])))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        return cls.from_dict(json.loads(payload))
