"""DGCNN (Dynamic Graph CNN, Wang et al. 2019) for point-cloud classification.

The reference baseline of the paper: four EdgeConv layers whose KNN graph is
rebuilt in the feature space of every layer, a shared embedding over the
concatenated layer outputs and a global-pooling classifier head.

The ``graph_reuse`` option implements the Fig. 2(b) experiment: selected
layers reuse the KNN graph computed by an earlier layer instead of
recomputing it, trading accuracy for efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Batch
from repro.graph.batching import batched_knn_graph
from repro.models.classifier import ClassificationHead
from repro.models.edgeconv import EdgeConv
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, concatenate

__all__ = ["DGCNNConfig", "DGCNN"]


@dataclass
class DGCNNConfig:
    """DGCNN hyper-parameters.

    The paper-faithful configuration is ``layer_dims=(64, 64, 128, 256)``,
    ``k=20`` and 1024-point clouds; the defaults here are scaled down so
    that a pure-numpy forward/backward pass stays fast.  ``graph_reuse``
    maps each layer index to the layer whose graph it reuses (``-1`` means
    "recompute", the dynamic-graph default).
    """

    num_classes: int = 10
    k: int = 10
    layer_dims: tuple[int, ...] = (32, 32, 64)
    embed_dim: int = 64
    classifier_hidden: tuple[int, ...] = (64, 32)
    dropout: float = 0.3
    dynamic: bool = True
    graph_reuse: dict[int, int] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if not self.layer_dims:
            raise ValueError("layer_dims must contain at least one layer")
        for layer, source in self.graph_reuse.items():
            if not 0 <= source < layer or layer >= len(self.layer_dims):
                raise ValueError(
                    f"graph_reuse maps layer {layer} to {source}; sources must be earlier layers"
                )


class DGCNN(Module):
    """Dynamic Graph CNN classifier."""

    def __init__(self, config: DGCNNConfig | None = None):
        super().__init__()
        self.config = config or DGCNNConfig()
        rng = np.random.default_rng(self.config.seed)
        dims = [3, *self.config.layer_dims]
        self.convs: list[EdgeConv] = []
        for i in range(len(self.config.layer_dims)):
            conv = EdgeConv(dims[i], dims[i + 1], aggregator="max", message_type="target_rel", rng=rng)
            self.add_module(f"conv{i}", conv)
            self.convs.append(conv)
        total_dim = int(sum(self.config.layer_dims))
        self.head = ClassificationHead(
            total_dim,
            self.config.num_classes,
            embed_dim=self.config.embed_dim,
            hidden_dims=self.config.classifier_hidden,
            dropout=self.config.dropout,
            rng=rng,
        )

    @property
    def num_layers(self) -> int:
        return len(self.convs)

    def forward(self, batch: Batch) -> Tensor:
        """Classify a batch of point clouds.

        Args:
            batch: Stacked point clouds.

        Returns:
            Logits of shape ``(batch.num_graphs, num_classes)``.
        """
        x = Tensor(batch.points)
        layer_outputs: list[Tensor] = []
        graphs: list[np.ndarray] = []
        for i, conv in enumerate(self.convs):
            reuse_from = self.config.graph_reuse.get(i, -1)
            if reuse_from >= 0 and reuse_from < len(graphs):
                edge_index = graphs[reuse_from]
            else:
                # Dynamic DGCNN rebuilds the graph in the current feature
                # space; the static variant always uses input coordinates.
                source = x.data if (self.config.dynamic and i > 0) else batch.points
                edge_index = batched_knn_graph(source, batch.batch, self.config.k)
            graphs.append(edge_index)
            x = conv(x, edge_index)
            layer_outputs.append(x)
        combined = concatenate(layer_outputs, axis=1) if len(layer_outputs) > 1 else layer_outputs[0]
        return self.head(combined, batch.batch, batch.num_graphs)

    def count_knn_constructions(self) -> int:
        """Number of KNN graph constructions per forward pass (after reuse)."""
        return sum(1 for i in range(self.num_layers) if self.config.graph_reuse.get(i, -1) < 0)
