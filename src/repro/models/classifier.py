"""Point-cloud classification head shared by DGCNN and NAS-derived models."""

from __future__ import annotations

import numpy as np

from repro.graph.batching import global_max_pool, global_mean_pool
from repro.nn.layers import MLP, Dropout, LeakyReLU, Linear, Module, Sequential
from repro.nn.tensor import Tensor, concatenate

__all__ = ["ClassificationHead", "model_size_mb"]


def model_size_mb(module: Module, bytes_per_param: int = 4) -> float:
    """Approximate model size in MB assuming float32 storage."""
    return module.num_parameters() * bytes_per_param / 2**20


class ClassificationHead(Module):
    """Global pooling followed by an MLP classifier.

    Mirrors the DGCNN head: a shared linear embedding, concatenated global
    max and mean pooling, then a two-hidden-layer MLP with dropout.
    """

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        embed_dim: int = 128,
        hidden_dims: tuple[int, ...] = (64, 32),
        dropout: float = 0.3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_classes <= 1:
            raise ValueError(f"num_classes must be > 1, got {num_classes}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_dim = in_dim
        self.num_classes = num_classes
        self.embed = Sequential(Linear(in_dim, embed_dim, rng=rng), LeakyReLU(0.2))
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self.mlp = MLP([2 * embed_dim, *hidden_dims, num_classes], activation="leaky_relu", rng=rng)

    def forward(self, x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
        """Pool node features per cloud and classify.

        Args:
            x: Node features of shape ``(N, in_dim)``.
            batch: Cloud index per node.
            num_graphs: Number of clouds in the batch.

        Returns:
            Logits of shape ``(num_graphs, num_classes)``.
        """
        embedded = self.embed(x)
        pooled = concatenate(
            [
                global_max_pool(embedded, batch, num_graphs),
                global_mean_pool(embedded, batch, num_graphs),
            ],
            axis=1,
        )
        if self.dropout is not None:
            pooled = self.dropout(pooled)
        return self.mlp(pooled)
