"""Manually optimised DGCNN baselines.

The paper compares HGNAS against two hand-crafted efficiency optimisations
of DGCNN:

* **[6] Li et al., ICCV 2021** ("Towards efficient graph convolutional
  networks for point cloud handling"): eliminate redundant graph sampling by
  computing the KNN graph once on the input coordinates and reusing it in
  every layer.  Implemented as :class:`GraphReuseDGCNN`.
* **[7] Tailor et al., ICCV 2021** ("Towards efficient point cloud graph
  neural networks through architectural simplification"): keep the full
  expressive EdgeConv only in the front layers and replace the latter layers
  with much cheaper aggregation blocks (single static graph, lightweight
  messages).  Implemented as :class:`SimplifiedDGCNN`.

Both are runnable models (for accuracy comparisons on the synthetic
benchmark) and have matching architecture genotypes in
:mod:`repro.nas.presets` (for hardware cost comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Batch
from repro.graph.batching import batched_knn_graph
from repro.models.classifier import ClassificationHead
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.models.edgeconv import EdgeConv
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, concatenate

__all__ = ["GraphReuseDGCNN", "SimplifiedDGCNNConfig", "SimplifiedDGCNN"]


class GraphReuseDGCNN(DGCNN):
    """DGCNN variant of Li et al. [6]: one static KNN graph shared by all layers."""

    def __init__(self, config: DGCNNConfig | None = None):
        config = config or DGCNNConfig()
        reuse = {i: 0 for i in range(1, len(config.layer_dims))}
        static_config = DGCNNConfig(
            num_classes=config.num_classes,
            k=config.k,
            layer_dims=config.layer_dims,
            embed_dim=config.embed_dim,
            classifier_hidden=config.classifier_hidden,
            dropout=config.dropout,
            dynamic=False,
            graph_reuse=reuse,
            seed=config.seed,
        )
        super().__init__(static_config)


@dataclass
class SimplifiedDGCNNConfig:
    """Configuration of the Tailor et al. [7] style simplified model."""

    num_classes: int = 10
    k: int = 10
    full_layer_dims: tuple[int, ...] = (32, 32)
    simple_layer_dims: tuple[int, ...] = (64,)
    embed_dim: int = 64
    classifier_hidden: tuple[int, ...] = (64, 32)
    dropout: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if not self.full_layer_dims:
            raise ValueError("at least one full EdgeConv layer is required")


class SimplifiedDGCNN(Module):
    """Tailor et al. [7] style model: expressive front layers, simplified tail.

    Front layers are regular EdgeConv blocks on a single static KNN graph;
    tail layers use the cheap ``source_pos`` message with mean aggregation,
    which removes the per-edge feature concatenation and halves the message
    width.
    """

    def __init__(self, config: SimplifiedDGCNNConfig | None = None):
        super().__init__()
        self.config = config or SimplifiedDGCNNConfig()
        rng = np.random.default_rng(self.config.seed)
        dims = [3, *self.config.full_layer_dims]
        self.full_convs: list[EdgeConv] = []
        for i in range(len(self.config.full_layer_dims)):
            conv = EdgeConv(dims[i], dims[i + 1], aggregator="max", message_type="target_rel", rng=rng)
            self.add_module(f"full_conv{i}", conv)
            self.full_convs.append(conv)
        simple_dims = [dims[-1], *self.config.simple_layer_dims]
        self.simple_convs: list[EdgeConv] = []
        for i in range(len(self.config.simple_layer_dims)):
            conv = EdgeConv(
                simple_dims[i], simple_dims[i + 1], aggregator="mean", message_type="source_pos", rng=rng
            )
            self.add_module(f"simple_conv{i}", conv)
            self.simple_convs.append(conv)
        total_dim = int(sum(self.config.full_layer_dims) + sum(self.config.simple_layer_dims))
        self.head = ClassificationHead(
            total_dim,
            self.config.num_classes,
            embed_dim=self.config.embed_dim,
            hidden_dims=self.config.classifier_hidden,
            dropout=self.config.dropout,
            rng=rng,
        )

    @property
    def num_layers(self) -> int:
        return len(self.full_convs) + len(self.simple_convs)

    def forward(self, batch: Batch) -> Tensor:
        """Classify a batch of point clouds."""
        edge_index = batched_knn_graph(batch.points, batch.batch, self.config.k)
        x = Tensor(batch.points)
        outputs: list[Tensor] = []
        for conv in self.full_convs:
            x = conv(x, edge_index)
            outputs.append(x)
        for conv in self.simple_convs:
            x = conv(x, edge_index)
            outputs.append(x)
        combined = concatenate(outputs, axis=1) if len(outputs) > 1 else outputs[0]
        return self.head(combined, batch.batch, batch.num_graphs)

    def count_knn_constructions(self) -> int:
        """The simplified model builds its graph exactly once per forward pass."""
        return 1
