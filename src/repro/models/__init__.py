"""GNN models: DGCNN, manually optimised baselines, and dense GCN layers."""

from repro.models.baselines import GraphReuseDGCNN, SimplifiedDGCNN, SimplifiedDGCNNConfig
from repro.models.classifier import ClassificationHead, model_size_mb
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.models.edgeconv import EdgeConv
from repro.models.gcn import DenseGCN, DenseGCNLayer

__all__ = [
    "DGCNN",
    "DGCNNConfig",
    "GraphReuseDGCNN",
    "SimplifiedDGCNN",
    "SimplifiedDGCNNConfig",
    "EdgeConv",
    "ClassificationHead",
    "model_size_mb",
    "DenseGCN",
    "DenseGCNLayer",
]
