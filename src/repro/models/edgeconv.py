"""EdgeConv layer (Wang et al., DGCNN).

EdgeConv builds per-edge messages ``[x_i, x_j - x_i]`` (centre feature and
relative neighbour feature), transforms them with a shared MLP and reduces
them per centre node with a max aggregator.  The message type and
aggregator are configurable because the HGNAS design space treats them as
searchable *functions* (Table I).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edge_index import validate_edge_index
from repro.graph.fused import fused_edgeconv, fused_kernels_enabled, supports_fused
from repro.graph.message import MESSAGE_TYPES, build_messages, message_dim
from repro.graph.scatter import AGGREGATORS, scatter
from repro.nn.layers import MLP, Module
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.obs.metrics import get_metrics

__all__ = ["EdgeConv"]


class EdgeConv(Module):
    """A single EdgeConv block: message -> shared MLP -> aggregation."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden_dims: tuple[int, ...] = (),
        aggregator: str = "max",
        message_type: str = "target_rel",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if aggregator not in AGGREGATORS:
            raise ValueError(f"unknown aggregator '{aggregator}', expected one of {sorted(AGGREGATORS)}")
        if message_type not in MESSAGE_TYPES:
            raise ValueError(f"unknown message type '{message_type}'")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.aggregator = aggregator
        self.message_type = message_type
        msg_dim = message_dim(message_type, in_dim)
        self.mlp = MLP(
            [msg_dim, *hidden_dims, out_dim],
            activation="leaky_relu",
            final_activation=True,
            rng=rng,
        )

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        """Apply the layer.

        Args:
            x: Node features of shape ``(N, in_dim)``.
            edge_index: Edge index of shape ``(2, E)``.

        Returns:
            Aggregated node features of shape ``(N, out_dim)``.
        """
        if x.shape[1] != self.in_dim:
            raise ValueError(f"expected input dim {self.in_dim}, got {x.shape[1]}")
        # Validate the caller's edge index exactly once per forward; both
        # execution paths below then skip their redundant range scans.
        edge_index = validate_edge_index(edge_index, x.shape[0])
        # Inference dispatches to the fused CSR/reduceat kernel, which skips
        # materializing the (E, F) message tensor through the MLP.  Training
        # keeps the materialized path so its floats stay unchanged.
        if (
            not is_grad_enabled()
            and fused_kernels_enabled()
            and supports_fused(self.message_type, self.mlp)
        ):
            return fused_edgeconv(
                x,
                edge_index,
                self.mlp,
                message_type=self.message_type,
                aggregator=self.aggregator,
                num_nodes=x.shape[0],
                validated=True,
            )
        get_metrics().count("graph.materialized.dispatch")
        messages = build_messages(x, edge_index, self.message_type, validated=True)
        transformed = self.mlp(messages)
        return scatter(transformed, edge_index[1], x.shape[0], self.aggregator, validated=True)

    def __repr__(self) -> str:
        return (
            f"EdgeConv(in={self.in_dim}, out={self.out_dim}, "
            f"message={self.message_type}, aggr={self.aggregator})"
        )
