"""Dense GCN layers used by the hardware performance predictor.

The architecture graphs fed to the predictor contain only a few dozen
nodes, so a dense formulation ``act(A_hat X W + b)`` is the simplest and
fastest representation.  The paper's predictor uses *sum* aggregation, which
corresponds to ``A_hat = A + I``; symmetric GCN normalisation is available
as an option.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.dtype import as_float_array
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["DenseGCNLayer", "DenseGCN"]


class DenseGCNLayer(Module):
    """One dense graph-convolution layer ``act(A x W + b)``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if activation not in ("relu", "leaky_relu", "none"):
            raise ValueError(f"unsupported activation '{activation}'")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, adj: np.ndarray) -> Tensor:
        """Apply the layer.

        Args:
            x: Node features ``(N, in_dim)``, or a padded batch
                ``(B, M, in_dim)``.
            adj: Dense aggregation operator ``(N, N)`` (e.g. ``A + I``), or a
                stacked batch ``(B, M, M)`` applied graph-by-graph.
        """
        adj = as_float_array(adj)
        if adj.ndim == 3:
            if x.ndim != 3 or adj.shape != (x.shape[0], x.shape[1], x.shape[1]):
                raise ValueError(
                    f"batched adjacency shape {adj.shape} incompatible with features {x.shape}"
                )
        elif adj.shape != (x.shape[0], x.shape[0]):
            raise ValueError(f"adjacency shape {adj.shape} incompatible with {x.shape[0]} nodes")
        aggregated = Tensor(adj) @ x
        out = self.linear(aggregated)
        if self.activation == "relu":
            return F.relu(out)
        if self.activation == "leaky_relu":
            return F.leaky_relu(out, 0.2)
        return out


class DenseGCN(Module):
    """A stack of dense GCN layers."""

    def __init__(
        self,
        dims: tuple[int, ...],
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("DenseGCN requires at least input and output dimensions")
        self.dims = tuple(dims)
        self.layers: list[DenseGCNLayer] = []
        for i in range(len(dims) - 1):
            layer = DenseGCNLayer(dims[i], dims[i + 1], activation=activation, rng=rng)
            self.add_module(f"gcn{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor, adj: np.ndarray) -> Tensor:
        for layer in self.layers:
            x = layer(x, adj)
        return x
