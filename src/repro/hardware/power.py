"""Power and energy accounting.

The paper highlights that an HGNAS model on the 7.5 W Jetson TX2 matches
DGCNN's latency on the 350 W RTX3080, a 47x power-efficiency improvement;
these helpers compute that kind of comparison from the latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.hardware.workload import Workload

__all__ = ["EnergyReport", "estimate_energy", "power_efficiency_ratio"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy cost of one inference."""

    device: str
    workload: str
    latency_ms: float
    power_watts: float

    @property
    def energy_mj(self) -> float:
        """Energy per inference in millijoules."""
        return self.latency_ms * self.power_watts

    @property
    def inferences_per_joule(self) -> float:
        """Throughput per joule of energy."""
        return 1000.0 / self.energy_mj if self.energy_mj > 0 else float("inf")


def estimate_energy(workload: Workload, device: DeviceSpec) -> EnergyReport:
    """Estimate per-inference energy of a workload on a device."""
    latency = estimate_latency(workload, device).total_ms
    return EnergyReport(
        device=device.name,
        workload=workload.name,
        latency_ms=latency,
        power_watts=device.power_watts,
    )


def power_efficiency_ratio(
    workload_a: Workload,
    device_a: DeviceSpec,
    workload_b: Workload,
    device_b: DeviceSpec,
) -> float:
    """Ratio of power draw between two deployments (``device_b / device_a``).

    The paper's headline comparison is HGNAS-on-TX2 versus DGCNN-on-RTX3080:
    similar latency at a 47x lower power budget.
    """
    _ = workload_a, workload_b  # latencies are reported separately; power ratio is device-level
    return device_b.power_watts / device_a.power_watts
