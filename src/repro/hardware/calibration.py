"""Calibration of per-device cost coefficients against the paper's data.

The paper reports, for each of the four edge platforms, the end-to-end
DGCNN latency at 1024 points (Table II), its execution-time breakdown by
operation category (Fig. 3) and its peak memory usage (Table II).  Those
twelve numbers pin down the per-device coefficients of the analytical
latency/memory model:

* ``ns_per_flop`` from the *combine* share (dense MLP work),
* ``ns_per_irregular_byte`` from the *aggregate* share (gather/scatter),
* ``ns_per_knn_pair_dim`` from the *sample* share (pairwise-distance KNN),
* ``ms_per_op_overhead`` from the *others* share (framework dispatch),
* ``memory_scale`` from the peak-memory measurement given a documented
  per-device baseline footprint.

The resulting coefficients are physically plausible (e.g. ~10 TFLOP/s of
effective dense throughput for the RTX3080 and ~4 GFLOP/s for the Raspberry
Pi) and, by construction, reproduce the paper's DGCNN measurements exactly;
all other architectures, point counts and devices are then *predictions* of
the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cost_model import lower_workload
from repro.hardware.reference_workloads import dgcnn_workload

__all__ = [
    "CalibrationTarget",
    "PAPER_TARGETS",
    "calibrate_coefficients",
    "calibrate_backend_target",
]


@dataclass(frozen=True)
class CalibrationTarget:
    """Published measurements and physical constants for one device.

    ``backend`` records which compute backend produced the timings:
    ``"analytic"`` for the paper-derived targets (no kernel ran at all), or
    a :mod:`repro.backends` name for targets built by
    :func:`calibrate_backend_target` from measured host kernels.
    """

    name: str
    display_name: str
    dgcnn_latency_ms: float
    breakdown: dict[str, float]
    dgcnn_peak_memory_mb: float
    base_memory_mb: float
    available_memory_mb: float
    power_watts: float
    measurement_noise: float
    measurement_round_trip_s: float
    backend: str = "analytic"

    def __post_init__(self) -> None:
        total = sum(self.breakdown.values())
        if abs(total - 1.0) > 1e-2:
            raise ValueError(f"breakdown fractions for {self.name} sum to {total}, expected 1.0")
        for key in ("sample", "aggregate", "combine", "others"):
            if key not in self.breakdown:
                raise ValueError(f"breakdown for {self.name} is missing '{key}'")
        if self.dgcnn_peak_memory_mb <= self.base_memory_mb:
            raise ValueError(f"{self.name}: DGCNN peak memory must exceed the base footprint")


#: Paper measurements (Table II latency/memory, Fig. 3 breakdowns) plus
#: documented physical constants per device.  ``base_memory_mb`` is the
#: framework-resident footprint (CUDA context / PyTorch runtime / OS share)
#: chosen so that the searched lightweight models land near the paper's
#: reported peak-memory numbers; ``available_memory_mb`` is the usable
#: memory before the paper-observed out-of-memory point.
PAPER_TARGETS: dict[str, CalibrationTarget] = {
    "rtx3080": CalibrationTarget(
        name="rtx3080",
        display_name="Nvidia RTX3080",
        dgcnn_latency_ms=51.8,
        breakdown={"sample": 0.8744, "aggregate": 0.0176, "combine": 0.0085, "others": 0.0995},
        dgcnn_peak_memory_mb=144.0,
        base_memory_mb=15.0,
        available_memory_mb=10_240.0,
        power_watts=350.0,
        measurement_noise=0.03,
        measurement_round_trip_s=5.0,
    ),
    "i7-8700k": CalibrationTarget(
        name="i7-8700k",
        display_name="Intel i7-8700K",
        dgcnn_latency_ms=234.2,
        breakdown={"sample": 0.3313, "aggregate": 0.5326, "combine": 0.0542, "others": 0.0819},
        dgcnn_peak_memory_mb=643.0,
        base_memory_mb=420.0,
        available_memory_mb=32_768.0,
        power_watts=95.0,
        measurement_noise=0.04,
        measurement_round_trip_s=8.0,
    ),
    "jetson-tx2": CalibrationTarget(
        name="jetson-tx2",
        display_name="Jetson TX2",
        dgcnn_latency_ms=270.4,
        breakdown={"sample": 0.5088, "aggregate": 0.1170, "combine": 0.0817, "others": 0.2925},
        dgcnn_peak_memory_mb=145.0,
        base_memory_mb=15.0,
        available_memory_mb=8_192.0,
        power_watts=7.5,
        measurement_noise=0.05,
        measurement_round_trip_s=30.0,
    ),
    "raspberry-pi": CalibrationTarget(
        name="raspberry-pi",
        display_name="Raspberry Pi 3B+",
        dgcnn_latency_ms=4139.1,
        breakdown={"sample": 0.2246, "aggregate": 0.3355, "combine": 0.2732, "others": 0.1666},
        dgcnn_peak_memory_mb=457.8,
        base_memory_mb=250.0,
        available_memory_mb=520.0,
        power_watts=5.0,
        measurement_noise=0.15,
        measurement_round_trip_s=90.0,
    ),
}

#: The reference workload used for calibration: DGCNN at the paper's default
#: 1024 points with k=20 and the original layer widths.
_REFERENCE_NUM_POINTS = 1024


def calibrate_coefficients(target: CalibrationTarget) -> dict[str, float]:
    """Solve the device coefficients from one calibration target.

    Returns a dictionary with keys ``ns_per_knn_pair_dim``,
    ``ns_per_random_edge``, ``ns_per_irregular_byte``, ``ns_per_flop``,
    ``ms_per_op_overhead`` and ``memory_scale``.
    """
    quantities = lower_workload(dgcnn_workload(num_points=_REFERENCE_NUM_POINTS))
    by_category_flops = quantities.total_by_category("flops")
    by_category_knn = quantities.total_by_category("knn_pair_dims")
    by_category_irr = quantities.total_by_category("irregular_bytes")
    total_op_count = quantities.total("op_count")
    total_working_set_mb = quantities.total_working_set_bytes / 2**20

    sample_ms = target.dgcnn_latency_ms * target.breakdown["sample"]
    aggregate_ms = target.dgcnn_latency_ms * target.breakdown["aggregate"]
    combine_ms = target.dgcnn_latency_ms * target.breakdown["combine"]
    others_ms = target.dgcnn_latency_ms * target.breakdown["others"]

    # Dense throughput from the combine share.
    ns_per_flop = combine_ms * 1e6 / by_category_flops["combine"]
    # Irregular-access cost from the aggregate share (minus its small
    # message-construction FLOP contribution).
    aggregate_flop_ms = by_category_flops["aggregate"] * ns_per_flop * 1e-6
    ns_per_irregular_byte = max(aggregate_ms - aggregate_flop_ms, 1e-6) * 1e6 / by_category_irr["aggregate"]
    # KNN cost from the sample share (minus its distance-computation FLOPs,
    # which the flop coefficient already accounts for).
    sample_flop_ms = by_category_flops["sample"] * ns_per_flop * 1e-6
    ns_per_knn_pair_dim = max(sample_ms - sample_flop_ms, 1e-6) * 1e6 / by_category_knn["sample"]
    # Framework dispatch overhead from the others share.
    ms_per_op_overhead = others_ms / total_op_count
    # Random neighbour sampling is not part of DGCNN; model it as touching a
    # few dozen bytes of irregular memory per generated edge.
    ns_per_random_edge = 50.0 * ns_per_irregular_byte
    # Activation-memory multiplier from the peak-memory measurement.
    memory_scale = (target.dgcnn_peak_memory_mb - target.base_memory_mb) / total_working_set_mb

    return {
        "ns_per_knn_pair_dim": ns_per_knn_pair_dim,
        "ns_per_random_edge": ns_per_random_edge,
        "ns_per_irregular_byte": ns_per_irregular_byte,
        "ns_per_flop": ns_per_flop,
        "ms_per_op_overhead": ms_per_op_overhead,
        "memory_scale": memory_scale,
    }


def calibrate_backend_target(
    backend: str,
    name: str | None = None,
    num_points: int = 256,
    k: int = 10,
    feature_dim: int = 64,
    repeats: int = 3,
    seed: int = 0,
    power_watts: float = 65.0,
    measurement_noise: float = 0.05,
    measurement_round_trip_s: float = 1.0,
) -> CalibrationTarget:
    """Build a :class:`CalibrationTarget` by timing a real compute backend.

    Unlike :data:`PAPER_TARGETS`, whose numbers come from the paper, this
    runs the actual kernel primitives of the named :mod:`repro.backends`
    backend on this host: KNN graph construction for the *sample* share, a
    fused message-pass for *aggregate*, a dense matmul through the backend
    for *combine*, and dispatch of tiny kernels for *others*.  Each phase is
    timed best-of-``repeats``, so the breakdown fractions sum to exactly 1.0
    by construction, and the resulting target records which backend produced
    its timings in :attr:`CalibrationTarget.backend`.

    The memory figures are estimated from the working set the micro-workload
    touches (this is a latency calibration, not a memory profiler), and the
    power/noise/round-trip constants describe the measurement host, so they
    are caller-supplied knobs with laptop-class defaults.
    """
    import time

    import numpy as np

    # Local imports: hardware/ sits below graph/ and backends/ in the layer
    # order, so the kernel dependencies stay out of module import time.
    from repro.backends import get_backend, use_backend
    from repro.graph.fused import fused_aggregate
    from repro.graph.knn import knn_graph
    from repro.nn.tensor import Tensor, no_grad

    backend_obj = get_backend(backend)
    rng = np.random.default_rng(seed)
    points = rng.standard_normal((num_points, 3)).astype(np.float32)
    features = rng.standard_normal((num_points, feature_dim)).astype(np.float32)
    weight_a = rng.standard_normal((num_points, feature_dim)).astype(np.float32)
    weight_b = rng.standard_normal((feature_dim, feature_dim)).astype(np.float32)

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1e3  # ms

    with use_backend(backend_obj.name), no_grad():
        edge_index = knn_graph(points, k=k)
        feature_tensor = Tensor(features)
        sample_ms = best_of(lambda: knn_graph(points, k=k))
        aggregate_ms = best_of(
            lambda: fused_aggregate(feature_tensor, edge_index, "source_pos", "max", num_points)
        )
        combine_ms = best_of(lambda: backend_obj.matmul(weight_a, weight_b))
        # Dispatch overhead: many tiny kernels, so per-call cost dominates.
        tiny = np.zeros((4, 4), dtype=np.float32)
        index = np.zeros(4, dtype=np.int64)
        others_ms = best_of(lambda: [backend_obj.gather(tiny, index) for _ in range(100)])

    total_ms = sample_ms + aggregate_ms + combine_ms + others_ms
    breakdown = {
        "sample": sample_ms / total_ms,
        "aggregate": aggregate_ms / total_ms,
        "combine": combine_ms / total_ms,
        "others": others_ms / total_ms,
    }
    # Working set of the micro-workload: features, messages and weights.
    working_mb = (
        features.nbytes + weight_a.nbytes + weight_b.nbytes + edge_index.shape[1] * feature_dim * 4
    ) / 2**20
    base_memory_mb = 50.0
    return CalibrationTarget(
        name=name or f"{backend_obj.name}-host",
        display_name=f"Measured host ({backend_obj.name} backend)",
        dgcnn_latency_ms=total_ms,
        breakdown=breakdown,
        dgcnn_peak_memory_mb=base_memory_mb + max(working_mb, 1.0),
        base_memory_mb=base_memory_mb,
        available_memory_mb=4096.0,
        power_watts=power_watts,
        measurement_noise=measurement_noise,
        measurement_round_trip_s=measurement_round_trip_s,
        backend=backend_obj.name,
    )
