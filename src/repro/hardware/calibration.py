"""Calibration of per-device cost coefficients against the paper's data.

The paper reports, for each of the four edge platforms, the end-to-end
DGCNN latency at 1024 points (Table II), its execution-time breakdown by
operation category (Fig. 3) and its peak memory usage (Table II).  Those
twelve numbers pin down the per-device coefficients of the analytical
latency/memory model:

* ``ns_per_flop`` from the *combine* share (dense MLP work),
* ``ns_per_irregular_byte`` from the *aggregate* share (gather/scatter),
* ``ns_per_knn_pair_dim`` from the *sample* share (pairwise-distance KNN),
* ``ms_per_op_overhead`` from the *others* share (framework dispatch),
* ``memory_scale`` from the peak-memory measurement given a documented
  per-device baseline footprint.

The resulting coefficients are physically plausible (e.g. ~10 TFLOP/s of
effective dense throughput for the RTX3080 and ~4 GFLOP/s for the Raspberry
Pi) and, by construction, reproduce the paper's DGCNN measurements exactly;
all other architectures, point counts and devices are then *predictions* of
the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cost_model import lower_workload
from repro.hardware.reference_workloads import dgcnn_workload

__all__ = ["CalibrationTarget", "PAPER_TARGETS", "calibrate_coefficients"]


@dataclass(frozen=True)
class CalibrationTarget:
    """Published measurements and physical constants for one device."""

    name: str
    display_name: str
    dgcnn_latency_ms: float
    breakdown: dict[str, float]
    dgcnn_peak_memory_mb: float
    base_memory_mb: float
    available_memory_mb: float
    power_watts: float
    measurement_noise: float
    measurement_round_trip_s: float

    def __post_init__(self) -> None:
        total = sum(self.breakdown.values())
        if abs(total - 1.0) > 1e-2:
            raise ValueError(f"breakdown fractions for {self.name} sum to {total}, expected 1.0")
        for key in ("sample", "aggregate", "combine", "others"):
            if key not in self.breakdown:
                raise ValueError(f"breakdown for {self.name} is missing '{key}'")
        if self.dgcnn_peak_memory_mb <= self.base_memory_mb:
            raise ValueError(f"{self.name}: DGCNN peak memory must exceed the base footprint")


#: Paper measurements (Table II latency/memory, Fig. 3 breakdowns) plus
#: documented physical constants per device.  ``base_memory_mb`` is the
#: framework-resident footprint (CUDA context / PyTorch runtime / OS share)
#: chosen so that the searched lightweight models land near the paper's
#: reported peak-memory numbers; ``available_memory_mb`` is the usable
#: memory before the paper-observed out-of-memory point.
PAPER_TARGETS: dict[str, CalibrationTarget] = {
    "rtx3080": CalibrationTarget(
        name="rtx3080",
        display_name="Nvidia RTX3080",
        dgcnn_latency_ms=51.8,
        breakdown={"sample": 0.8744, "aggregate": 0.0176, "combine": 0.0085, "others": 0.0995},
        dgcnn_peak_memory_mb=144.0,
        base_memory_mb=15.0,
        available_memory_mb=10_240.0,
        power_watts=350.0,
        measurement_noise=0.03,
        measurement_round_trip_s=5.0,
    ),
    "i7-8700k": CalibrationTarget(
        name="i7-8700k",
        display_name="Intel i7-8700K",
        dgcnn_latency_ms=234.2,
        breakdown={"sample": 0.3313, "aggregate": 0.5326, "combine": 0.0542, "others": 0.0819},
        dgcnn_peak_memory_mb=643.0,
        base_memory_mb=420.0,
        available_memory_mb=32_768.0,
        power_watts=95.0,
        measurement_noise=0.04,
        measurement_round_trip_s=8.0,
    ),
    "jetson-tx2": CalibrationTarget(
        name="jetson-tx2",
        display_name="Jetson TX2",
        dgcnn_latency_ms=270.4,
        breakdown={"sample": 0.5088, "aggregate": 0.1170, "combine": 0.0817, "others": 0.2925},
        dgcnn_peak_memory_mb=145.0,
        base_memory_mb=15.0,
        available_memory_mb=8_192.0,
        power_watts=7.5,
        measurement_noise=0.05,
        measurement_round_trip_s=30.0,
    ),
    "raspberry-pi": CalibrationTarget(
        name="raspberry-pi",
        display_name="Raspberry Pi 3B+",
        dgcnn_latency_ms=4139.1,
        breakdown={"sample": 0.2246, "aggregate": 0.3355, "combine": 0.2732, "others": 0.1666},
        dgcnn_peak_memory_mb=457.8,
        base_memory_mb=250.0,
        available_memory_mb=520.0,
        power_watts=5.0,
        measurement_noise=0.15,
        measurement_round_trip_s=90.0,
    ),
}

#: The reference workload used for calibration: DGCNN at the paper's default
#: 1024 points with k=20 and the original layer widths.
_REFERENCE_NUM_POINTS = 1024


def calibrate_coefficients(target: CalibrationTarget) -> dict[str, float]:
    """Solve the device coefficients from one calibration target.

    Returns a dictionary with keys ``ns_per_knn_pair_dim``,
    ``ns_per_random_edge``, ``ns_per_irregular_byte``, ``ns_per_flop``,
    ``ms_per_op_overhead`` and ``memory_scale``.
    """
    quantities = lower_workload(dgcnn_workload(num_points=_REFERENCE_NUM_POINTS))
    by_category_flops = quantities.total_by_category("flops")
    by_category_knn = quantities.total_by_category("knn_pair_dims")
    by_category_irr = quantities.total_by_category("irregular_bytes")
    total_op_count = quantities.total("op_count")
    total_working_set_mb = quantities.total_working_set_bytes / 2**20

    sample_ms = target.dgcnn_latency_ms * target.breakdown["sample"]
    aggregate_ms = target.dgcnn_latency_ms * target.breakdown["aggregate"]
    combine_ms = target.dgcnn_latency_ms * target.breakdown["combine"]
    others_ms = target.dgcnn_latency_ms * target.breakdown["others"]

    # Dense throughput from the combine share.
    ns_per_flop = combine_ms * 1e6 / by_category_flops["combine"]
    # Irregular-access cost from the aggregate share (minus its small
    # message-construction FLOP contribution).
    aggregate_flop_ms = by_category_flops["aggregate"] * ns_per_flop * 1e-6
    ns_per_irregular_byte = max(aggregate_ms - aggregate_flop_ms, 1e-6) * 1e6 / by_category_irr["aggregate"]
    # KNN cost from the sample share (minus its distance-computation FLOPs,
    # which the flop coefficient already accounts for).
    sample_flop_ms = by_category_flops["sample"] * ns_per_flop * 1e-6
    ns_per_knn_pair_dim = max(sample_ms - sample_flop_ms, 1e-6) * 1e6 / by_category_knn["sample"]
    # Framework dispatch overhead from the others share.
    ms_per_op_overhead = others_ms / total_op_count
    # Random neighbour sampling is not part of DGCNN; model it as touching a
    # few dozen bytes of irregular memory per generated edge.
    ns_per_random_edge = 50.0 * ns_per_irregular_byte
    # Activation-memory multiplier from the peak-memory measurement.
    memory_scale = (target.dgcnn_peak_memory_mb - target.base_memory_mb) / total_working_set_mb

    return {
        "ns_per_knn_pair_dim": ns_per_knn_pair_dim,
        "ns_per_random_edge": ns_per_random_edge,
        "ns_per_irregular_byte": ns_per_irregular_byte,
        "ns_per_flop": ns_per_flop,
        "ms_per_op_overhead": ms_per_op_overhead,
        "memory_scale": memory_scale,
    }
