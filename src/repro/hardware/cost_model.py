"""Lowering of workload operations into hardware resource quantities.

Every :class:`~repro.hardware.workload.OpDescriptor` is mapped to an
:class:`OpQuantities` record describing how much of each hardware resource
the op consumes:

* ``knn_pair_dims`` — pairwise-distance work of KNN graph construction,
  ``N^2 * D`` (DGCNN materialises a dense distance matrix and top-k's it).
* ``random_edges`` — index generations for random neighbour sampling.
* ``irregular_bytes`` — gather/scatter traffic of message aggregation
  (reads of neighbour features plus the reduction writes).
* ``flops`` — dense multiply-accumulate work of combines / MLPs.
* ``regular_bytes`` — streaming traffic of dense ops (used by the memory
  model, not the latency model, which treats dense ops as compute bound).
* ``working_set_bytes`` — transient activation footprint of the op.
* ``op_count`` — kernel-launch / framework-dispatch count.

The quantities are device independent; latency and memory are obtained by
multiplying with per-device calibrated coefficients (see
:mod:`repro.hardware.device` and :mod:`repro.hardware.latency`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.workload import OpDescriptor, Workload

__all__ = ["OpQuantities", "WorkloadQuantities", "lower_op", "lower_workload", "BYTES_PER_ELEMENT"]

#: Storage width of activations on the modelled devices (float32).
BYTES_PER_ELEMENT = 4


@dataclass
class OpQuantities:
    """Resource quantities consumed by a single operation."""

    category: str
    knn_pair_dims: float = 0.0
    random_edges: float = 0.0
    irregular_bytes: float = 0.0
    flops: float = 0.0
    regular_bytes: float = 0.0
    working_set_bytes: float = 0.0
    op_count: float = 1.0
    name: str = ""


@dataclass
class WorkloadQuantities:
    """Aggregated quantities for a full workload."""

    per_op: list[OpQuantities] = field(default_factory=list)

    def total(self, attribute: str) -> float:
        """Sum an attribute across all ops."""
        return float(sum(getattr(q, attribute) for q in self.per_op))

    def total_by_category(self, attribute: str) -> dict[str, float]:
        """Sum an attribute per profiling category."""
        totals = {"sample": 0.0, "aggregate": 0.0, "combine": 0.0, "others": 0.0}
        for q in self.per_op:
            totals[q.category] += getattr(q, attribute)
        return totals

    @property
    def peak_working_set_bytes(self) -> float:
        """Largest transient working set over the workload."""
        return max((q.working_set_bytes for q in self.per_op), default=0.0)

    @property
    def total_working_set_bytes(self) -> float:
        """Sum of all transient working sets (upper bound on allocator pressure)."""
        return self.total("working_set_bytes")


def _knn_quantities(op: OpDescriptor) -> OpQuantities:
    n = op.num_points
    dim = max(op.in_dim, 1)
    k = max(op.num_edges // max(n, 1), 1)
    pair_dims = float(n) * n * dim
    # Distance matrix + top-k selection working set.
    working = n * n * BYTES_PER_ELEMENT + n * k * 8
    return OpQuantities(
        category=op.category,
        knn_pair_dims=pair_dims,
        flops=2.0 * pair_dims,
        regular_bytes=2.0 * n * n * BYTES_PER_ELEMENT,
        working_set_bytes=float(working),
        name=op.name or "knn_sample",
    )


def _random_sample_quantities(op: OpDescriptor) -> OpQuantities:
    edges = float(max(op.num_edges, op.num_points))
    return OpQuantities(
        category=op.category,
        random_edges=edges,
        irregular_bytes=edges * 12.0,
        working_set_bytes=edges * 8.0,
        name=op.name or "random_sample",
    )


def _aggregate_quantities(op: OpDescriptor) -> OpQuantities:
    edges = float(max(op.num_edges, 1))
    msg_dim = max(op.message_dim, op.in_dim, 1)
    out_dim = max(op.out_dim, op.in_dim, 1)
    gather_bytes = edges * msg_dim * BYTES_PER_ELEMENT
    scatter_bytes = edges * out_dim * BYTES_PER_ELEMENT
    message_flops = edges * msg_dim * 3.0  # subtraction / concatenation / norm work
    working = (gather_bytes + scatter_bytes) * 2.0
    return OpQuantities(
        category=op.category,
        irregular_bytes=gather_bytes + scatter_bytes,
        flops=message_flops,
        regular_bytes=gather_bytes,
        working_set_bytes=working,
        name=op.name or "aggregate",
    )


def _combine_quantities(op: OpDescriptor) -> OpQuantities:
    rows = float(max(op.num_edges, op.num_points))
    in_dim = max(op.in_dim, 1)
    out_dim = max(op.out_dim, 1)
    flops = 2.0 * rows * in_dim * out_dim
    stream = rows * (in_dim + out_dim) * BYTES_PER_ELEMENT
    return OpQuantities(
        category=op.category,
        flops=flops,
        regular_bytes=stream,
        working_set_bytes=stream,
        name=op.name or "combine",
    )


def _connect_quantities(op: OpDescriptor) -> OpQuantities:
    rows = float(op.num_points)
    dim = max(op.out_dim, op.in_dim, 1)
    flops = rows * dim if op.kind == "connect_skip" else 0.0
    return OpQuantities(
        category=op.category,
        flops=flops,
        regular_bytes=2.0 * rows * dim * BYTES_PER_ELEMENT if op.kind == "connect_skip" else 0.0,
        working_set_bytes=rows * dim * BYTES_PER_ELEMENT,
        op_count=1.0 if op.kind == "connect_skip" else 0.25,
        name=op.name or op.kind,
    )


def _pooling_quantities(op: OpDescriptor) -> OpQuantities:
    rows = float(op.num_points)
    dim = max(op.in_dim, 1)
    return OpQuantities(
        category=op.category,
        flops=rows * dim,
        regular_bytes=rows * dim * BYTES_PER_ELEMENT,
        working_set_bytes=rows * dim * BYTES_PER_ELEMENT,
        name=op.name or "pooling",
    )


def _classifier_quantities(op: OpDescriptor) -> OpQuantities:
    in_dim = max(op.in_dim, 1)
    out_dim = max(op.out_dim, 1)
    hidden = max(int(math.sqrt(in_dim * out_dim)), out_dim)
    flops = 2.0 * (in_dim * hidden + hidden * out_dim)
    return OpQuantities(
        category=op.category,
        flops=flops,
        regular_bytes=(in_dim + hidden + out_dim) * BYTES_PER_ELEMENT,
        working_set_bytes=(in_dim + hidden + out_dim) * BYTES_PER_ELEMENT,
        op_count=3.0,
        name=op.name or "classifier",
    )


_LOWERING = {
    "knn_sample": _knn_quantities,
    "random_sample": _random_sample_quantities,
    "aggregate": _aggregate_quantities,
    "combine": _combine_quantities,
    "connect_skip": _connect_quantities,
    "connect_identity": _connect_quantities,
    "pooling": _pooling_quantities,
    "classifier": _classifier_quantities,
}


def lower_op(op: OpDescriptor) -> OpQuantities:
    """Lower a single op descriptor into resource quantities."""
    return _LOWERING[op.kind](op)


def lower_workload(workload: Workload) -> WorkloadQuantities:
    """Lower every op of a workload."""
    return WorkloadQuantities(per_op=[lower_op(op) for op in workload])
