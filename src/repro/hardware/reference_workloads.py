"""Workload factories for the reference models (DGCNN and manual baselines).

These produce :class:`~repro.hardware.workload.Workload` descriptions of the
*paper-scale* models (1024 points, 64/64/128/256 EdgeConv widths) so the
hardware model can be calibrated against, and compared with, the latency and
memory numbers reported in the paper — independently of the scaled-down
runnable models used for accuracy experiments.
"""

from __future__ import annotations

from repro.hardware.workload import OpDescriptor, Workload

__all__ = [
    "dgcnn_workload",
    "graph_reuse_dgcnn_workload",
    "simplified_dgcnn_workload",
    "PAPER_DGCNN_LAYER_DIMS",
    "PAPER_DGCNN_K",
    "PAPER_NUM_CLASSES",
]

#: EdgeConv output widths of the original DGCNN classifier.
PAPER_DGCNN_LAYER_DIMS = (64, 64, 128, 256)
#: Neighbourhood size used by DGCNN.
PAPER_DGCNN_K = 20
#: ModelNet40 class count.
PAPER_NUM_CLASSES = 40
#: Width of DGCNN's shared embedding layer.
_EMBED_DIM = 1024


def _edgeconv_block(
    workload: Workload,
    layer: int,
    num_points: int,
    k: int,
    in_dim: int,
    out_dim: int,
    build_graph: bool,
    sampler: str = "knn_sample",
) -> None:
    """Append the ops of one EdgeConv layer (sample, edge MLP, aggregation)."""
    edges = num_points * k
    if build_graph:
        workload.add(
            OpDescriptor(
                kind=sampler,
                num_points=num_points,
                num_edges=edges,
                in_dim=in_dim,
                name=f"layer{layer}.{sampler}",
            )
        )
    message_dim = 2 * in_dim
    workload.add(
        OpDescriptor(
            kind="combine",
            num_points=num_points,
            num_edges=edges,
            in_dim=message_dim,
            out_dim=out_dim,
            name=f"layer{layer}.edge_mlp",
        )
    )
    workload.add(
        OpDescriptor(
            kind="aggregate",
            num_points=num_points,
            num_edges=edges,
            in_dim=in_dim,
            out_dim=out_dim,
            message_dim=message_dim,
            name=f"layer{layer}.aggregate",
        )
    )


def _head(workload: Workload, num_points: int, feature_dim: int, num_classes: int) -> None:
    """Append DGCNN's shared embedding, pooling and classifier."""
    workload.add(
        OpDescriptor(
            kind="combine",
            num_points=num_points,
            in_dim=feature_dim,
            out_dim=_EMBED_DIM,
            name="embedding",
        )
    )
    workload.add(
        OpDescriptor(kind="pooling", num_points=num_points, in_dim=_EMBED_DIM, name="global_pool")
    )
    workload.add(
        OpDescriptor(
            kind="classifier",
            num_points=num_points,
            in_dim=2 * _EMBED_DIM,
            out_dim=num_classes,
            name="classifier",
        )
    )


def dgcnn_workload(
    num_points: int = 1024,
    k: int = PAPER_DGCNN_K,
    layer_dims: tuple[int, ...] = PAPER_DGCNN_LAYER_DIMS,
    num_classes: int = PAPER_NUM_CLASSES,
    dynamic: bool = True,
) -> Workload:
    """Workload of the original (dynamic-graph) DGCNN.

    Every layer rebuilds a KNN graph in its input feature space, which is
    exactly the redundancy the paper's Observation 1 targets.
    """
    workload = Workload(num_points=num_points, name=f"dgcnn_{num_points}")
    dims = [3, *layer_dims]
    for layer in range(len(layer_dims)):
        _edgeconv_block(
            workload,
            layer,
            num_points,
            k,
            dims[layer],
            dims[layer + 1],
            build_graph=dynamic or layer == 0,
        )
    _head(workload, num_points, int(sum(layer_dims)), num_classes)
    return workload


def graph_reuse_dgcnn_workload(
    num_points: int = 1024,
    k: int = PAPER_DGCNN_K,
    layer_dims: tuple[int, ...] = PAPER_DGCNN_LAYER_DIMS,
    num_classes: int = PAPER_NUM_CLASSES,
    rebuild_layers: tuple[int, ...] = (0, 2),
) -> Workload:
    """Workload of the Li et al. [6] variant: sampled results reused across layers.

    Li et al. eliminate part of DGCNN's redundant sampling; their released
    configuration still rebuilds the graph periodically (here layers 0 and
    2 by default), which keeps the modelled speedups in the 1.1x-2.5x range
    the paper reports for this baseline.
    """
    workload = Workload(num_points=num_points, name=f"graph_reuse_dgcnn_{num_points}")
    dims = [3, *layer_dims]
    for layer in range(len(layer_dims)):
        _edgeconv_block(
            workload,
            layer,
            num_points,
            k,
            dims[layer],
            dims[layer + 1],
            build_graph=layer in rebuild_layers,
        )
    _head(workload, num_points, int(sum(layer_dims)), num_classes)
    return workload


def simplified_dgcnn_workload(
    num_points: int = 1024,
    k: int = PAPER_DGCNN_K,
    num_classes: int = PAPER_NUM_CLASSES,
) -> Workload:
    """Workload of the Tailor et al. [7] variant.

    The front two layers keep the full (dynamic-graph) EdgeConv; the last
    two layers are simplified blocks with single-feature messages (half the
    message width), mirroring the architectural simplification described in
    the paper.
    """
    workload = Workload(num_points=num_points, name=f"simplified_dgcnn_{num_points}")
    dims = [3, 64, 64]
    for layer in range(2):
        _edgeconv_block(
            workload,
            layer,
            num_points,
            k,
            dims[layer],
            dims[layer + 1],
            build_graph=True,
        )
    edges = num_points * k
    simple_dims = [64, 128, 256]
    for layer in range(2, 4):
        in_dim = simple_dims[layer - 2]
        out_dim = simple_dims[layer - 1]
        workload.add(
            OpDescriptor(
                kind="aggregate",
                num_points=num_points,
                num_edges=edges,
                in_dim=in_dim,
                out_dim=in_dim,
                message_dim=in_dim,
                name=f"layer{layer}.simple_aggregate",
            )
        )
        workload.add(
            OpDescriptor(
                kind="combine",
                num_points=num_points,
                in_dim=in_dim,
                out_dim=out_dim,
                name=f"layer{layer}.node_mlp",
            )
        )
    _head(workload, num_points, 64 + 64 + 128 + 256, num_classes)
    return workload
