"""Edge-device specifications.

Each :class:`DeviceSpec` bundles the calibrated cost coefficients (see
:mod:`repro.hardware.calibration`) with the device's memory budget, power
draw and measurement characteristics.  The four devices of the paper are
available from :func:`get_device`; custom devices can be constructed
directly for extension studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.calibration import PAPER_TARGETS, CalibrationTarget, calibrate_coefficients

__all__ = ["DeviceSpec", "get_device", "list_devices", "all_devices", "DEVICE_ALIASES"]


@dataclass(frozen=True)
class DeviceSpec:
    """A modelled edge device.

    Attributes:
        name: Canonical identifier (e.g. ``"rtx3080"``).
        display_name: Human-readable name used in reports.
        ns_per_knn_pair_dim: Time per pairwise-distance element of KNN.
        ns_per_random_edge: Time per randomly sampled edge.
        ns_per_irregular_byte: Time per byte of gather/scatter traffic.
        ns_per_flop: Time per dense multiply-accumulate.
        ms_per_op_overhead: Kernel-launch / framework dispatch time per op.
        base_memory_mb: Resident framework footprint.
        memory_scale: Multiplier from modelled working-set to allocator peak.
        available_memory_mb: Usable memory before out-of-memory.
        power_watts: Typical board power during inference.
        measurement_noise: Relative std-dev of on-device latency measurements.
        measurement_round_trip_s: Wall-clock cost of one on-device measurement
            (deploy, run, report) used by the search-ablation experiments.
    """

    name: str
    display_name: str
    ns_per_knn_pair_dim: float
    ns_per_random_edge: float
    ns_per_irregular_byte: float
    ns_per_flop: float
    ms_per_op_overhead: float
    base_memory_mb: float
    memory_scale: float
    available_memory_mb: float
    power_watts: float
    measurement_noise: float
    measurement_round_trip_s: float

    def __post_init__(self) -> None:
        for field_name in (
            "ns_per_knn_pair_dim",
            "ns_per_random_edge",
            "ns_per_irregular_byte",
            "ns_per_flop",
            "ms_per_op_overhead",
            "base_memory_mb",
            "memory_scale",
            "available_memory_mb",
            "power_watts",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"DeviceSpec.{field_name} must be positive")
        if not 0 <= self.measurement_noise < 1:
            raise ValueError("measurement_noise must be in [0, 1)")

    def with_overrides(self, **overrides: float) -> "DeviceSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **overrides)


def _build_device(target: CalibrationTarget) -> DeviceSpec:
    coefficients = calibrate_coefficients(target)
    return DeviceSpec(
        name=target.name,
        display_name=target.display_name,
        base_memory_mb=target.base_memory_mb,
        available_memory_mb=target.available_memory_mb,
        power_watts=target.power_watts,
        measurement_noise=target.measurement_noise,
        measurement_round_trip_s=target.measurement_round_trip_s,
        **coefficients,
    )


_DEVICE_CACHE: dict[str, DeviceSpec] = {}

#: Accepted aliases for each canonical device name.
DEVICE_ALIASES = {
    "rtx3080": "rtx3080",
    "rtx-3080": "rtx3080",
    "nvidia rtx3080": "rtx3080",
    "gpu": "rtx3080",
    "i7-8700k": "i7-8700k",
    "i7": "i7-8700k",
    "intel i7-8700k": "i7-8700k",
    "cpu": "i7-8700k",
    "jetson-tx2": "jetson-tx2",
    "tx2": "jetson-tx2",
    "jetson tx2": "jetson-tx2",
    "raspberry-pi": "raspberry-pi",
    "raspberry pi 3b+": "raspberry-pi",
    "pi": "raspberry-pi",
    "raspberrypi": "raspberry-pi",
}


def get_device(name: str) -> DeviceSpec:
    """Return the calibrated :class:`DeviceSpec` for ``name`` (aliases allowed)."""
    key = DEVICE_ALIASES.get(name.strip().lower())
    if key is None:
        raise KeyError(f"unknown device '{name}'; known devices: {list_devices()}")
    if key not in _DEVICE_CACHE:
        _DEVICE_CACHE[key] = _build_device(PAPER_TARGETS[key])
    return _DEVICE_CACHE[key]


def list_devices() -> list[str]:
    """Canonical names of the modelled devices."""
    return list(PAPER_TARGETS.keys())


def all_devices() -> list[DeviceSpec]:
    """Calibrated specs for all modelled devices, in paper order."""
    return [get_device(name) for name in list_devices()]
