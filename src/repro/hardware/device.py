"""Edge-device specifications and the pluggable device registry.

Each :class:`DeviceSpec` bundles the calibrated cost coefficients (see
:mod:`repro.hardware.calibration`) with the device's memory budget, power
draw and measurement characteristics.  The four devices of the paper are
pre-registered; additional devices — a built :class:`DeviceSpec` or a
:class:`~repro.hardware.calibration.CalibrationTarget` that is calibrated
lazily on first use — join the same namespace through
:func:`register_device`, after which every consumer (:func:`get_device`,
experiment sweeps, the ``repro`` CLI, :class:`repro.workspace.Workspace`)
sees them by name or alias.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.hardware.calibration import PAPER_TARGETS, CalibrationTarget, calibrate_coefficients

__all__ = [
    "DeviceSpec",
    "register_device",
    "unregister_device",
    "get_device",
    "list_devices",
    "all_devices",
    "DEVICE_ALIASES",
]


@dataclass(frozen=True)
class DeviceSpec:
    """A modelled edge device.

    Attributes:
        name: Canonical identifier (e.g. ``"rtx3080"``).
        display_name: Human-readable name used in reports.
        ns_per_knn_pair_dim: Time per pairwise-distance element of KNN.
        ns_per_random_edge: Time per randomly sampled edge.
        ns_per_irregular_byte: Time per byte of gather/scatter traffic.
        ns_per_flop: Time per dense multiply-accumulate.
        ms_per_op_overhead: Kernel-launch / framework dispatch time per op.
        base_memory_mb: Resident framework footprint.
        memory_scale: Multiplier from modelled working-set to allocator peak.
        available_memory_mb: Usable memory before out-of-memory.
        power_watts: Typical board power during inference.
        measurement_noise: Relative std-dev of on-device latency measurements.
        measurement_round_trip_s: Wall-clock cost of one on-device measurement
            (deploy, run, report) used by the search-ablation experiments.
    """

    name: str
    display_name: str
    ns_per_knn_pair_dim: float
    ns_per_random_edge: float
    ns_per_irregular_byte: float
    ns_per_flop: float
    ms_per_op_overhead: float
    base_memory_mb: float
    memory_scale: float
    available_memory_mb: float
    power_watts: float
    measurement_noise: float
    measurement_round_trip_s: float

    def __post_init__(self) -> None:
        for field_name in (
            "ns_per_knn_pair_dim",
            "ns_per_random_edge",
            "ns_per_irregular_byte",
            "ns_per_flop",
            "ms_per_op_overhead",
            "base_memory_mb",
            "memory_scale",
            "available_memory_mb",
            "power_watts",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"DeviceSpec.{field_name} must be positive")
        if not 0 <= self.measurement_noise < 1:
            raise ValueError("measurement_noise must be in [0, 1)")

    def with_overrides(self, **overrides: float) -> "DeviceSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **overrides)


def _build_device(target: CalibrationTarget) -> DeviceSpec:
    coefficients = calibrate_coefficients(target)
    return DeviceSpec(
        name=target.name,
        display_name=target.display_name,
        base_memory_mb=target.base_memory_mb,
        available_memory_mb=target.available_memory_mb,
        power_watts=target.power_watts,
        measurement_noise=target.measurement_noise,
        measurement_round_trip_s=target.measurement_round_trip_s,
        **coefficients,
    )


#: Canonical name -> registered entry.  A :class:`CalibrationTarget` entry is
#: calibrated into a :class:`DeviceSpec` lazily on first :func:`get_device`.
_DEVICE_REGISTRY: dict[str, DeviceSpec | CalibrationTarget] = {}
_DEVICE_CACHE: dict[str, DeviceSpec] = {}

#: Accepted aliases (lower-case) -> canonical device name.  Kept importable
#: for back compatibility; extend it through :func:`register_device` rather
#: than writing to it directly.
DEVICE_ALIASES: dict[str, str] = {}


def register_device(
    device: DeviceSpec | CalibrationTarget,
    aliases: Iterable[str] = (),
    replace: bool = False,
) -> str:
    """Register a device under its canonical name (plus optional aliases).

    Args:
        device: A ready :class:`DeviceSpec`, or a
            :class:`~repro.hardware.calibration.CalibrationTarget` whose cost
            coefficients are calibrated on first use.
        aliases: Extra lookup names (case-insensitive) for :func:`get_device`.
        replace: Allow overwriting an existing device or stealing an alias.

    Returns:
        The canonical (lower-case) name the device was registered under.
    """
    name = device.name.strip().lower()
    if not name:
        raise ValueError("device name must be non-empty")
    if name in _DEVICE_REGISTRY and not replace:
        raise ValueError(f"device '{name}' already registered (pass replace=True)")
    alias_keys = {name} | {alias.strip().lower() for alias in aliases}
    for alias in alias_keys:
        owner = DEVICE_ALIASES.get(alias)
        if owner is not None and owner != name and not replace:
            raise ValueError(f"alias '{alias}' already maps to device '{owner}' (pass replace=True)")
    _DEVICE_REGISTRY[name] = device
    _DEVICE_CACHE.pop(name, None)
    for alias in alias_keys:
        DEVICE_ALIASES[alias] = name
    return name


def unregister_device(name: str) -> None:
    """Remove a registered device and every alias pointing at it."""
    key = DEVICE_ALIASES.get(name.strip().lower(), name.strip().lower())
    if key not in _DEVICE_REGISTRY:
        raise KeyError(f"unknown device '{name}'; known devices: {list_devices()}")
    del _DEVICE_REGISTRY[key]
    _DEVICE_CACHE.pop(key, None)
    for alias in [alias for alias, target in DEVICE_ALIASES.items() if target == key]:
        del DEVICE_ALIASES[alias]


def get_device(name: str) -> DeviceSpec:
    """Return the calibrated :class:`DeviceSpec` for ``name`` (aliases allowed)."""
    key = DEVICE_ALIASES.get(name.strip().lower())
    if key is None:
        raise KeyError(f"unknown device '{name}'; known devices: {list_devices()}")
    if key not in _DEVICE_CACHE:
        entry = _DEVICE_REGISTRY[key]
        _DEVICE_CACHE[key] = entry if isinstance(entry, DeviceSpec) else _build_device(entry)
    return _DEVICE_CACHE[key]


def list_devices() -> list[str]:
    """Canonical names of the registered devices, in registration order."""
    return list(_DEVICE_REGISTRY)


def all_devices() -> list[DeviceSpec]:
    """Calibrated specs for all registered devices, paper devices first."""
    return [get_device(name) for name in list_devices()]


_PAPER_ALIASES: dict[str, tuple[str, ...]] = {
    "rtx3080": ("rtx-3080", "nvidia rtx3080", "gpu"),
    "i7-8700k": ("i7", "intel i7-8700k", "cpu"),
    "jetson-tx2": ("tx2", "jetson tx2"),
    "raspberry-pi": ("raspberry pi 3b+", "pi", "raspberrypi"),
}

for _target in PAPER_TARGETS.values():
    register_device(_target, aliases=_PAPER_ALIASES[_target.name])
