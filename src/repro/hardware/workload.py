"""Device-independent workload representation.

A :class:`Workload` is an ordered list of :class:`OpDescriptor` records
describing what a GNN inference executes: graph sampling, message
aggregation, dense combines, skip connections and the classifier head.
The cost model (:mod:`repro.hardware.cost_model`) lowers descriptors into
resource quantities (KNN pair-dims, irregular bytes, FLOPs, ...), and the
latency/memory models combine those quantities with per-device calibrated
coefficients.

Architectures from the NAS design space lower themselves to this IR via
:meth:`repro.nas.architecture.Architecture.to_workload`, and the reference
models (DGCNN and the manual baselines) have factory functions in
:mod:`repro.hardware.reference_workloads` — so every latency/memory number
in the experiments flows through the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["OpDescriptor", "Workload", "OP_KINDS", "OP_CATEGORY"]

#: Recognised operation kinds.
OP_KINDS = (
    "knn_sample",
    "random_sample",
    "aggregate",
    "combine",
    "connect_skip",
    "connect_identity",
    "pooling",
    "classifier",
)

#: Profiling category of each op kind (matches the paper's Fig. 3 legend).
OP_CATEGORY = {
    "knn_sample": "sample",
    "random_sample": "sample",
    "aggregate": "aggregate",
    "combine": "combine",
    "connect_skip": "others",
    "connect_identity": "others",
    "pooling": "others",
    "classifier": "combine",
}


@dataclass(frozen=True)
class OpDescriptor:
    """One executed operation.

    Attributes:
        kind: One of :data:`OP_KINDS`.
        num_points: Number of points (graph nodes) the op processes.
        num_edges: Number of edges involved (0 for dense ops).
        in_dim: Input feature width.
        out_dim: Output feature width.
        message_dim: Per-edge message width (aggregate ops only).
        name: Free-form label used in reports.
    """

    kind: str
    num_points: int
    num_edges: int = 0
    in_dim: int = 0
    out_dim: int = 0
    message_dim: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind '{self.kind}', expected one of {OP_KINDS}")
        if self.num_points <= 0:
            raise ValueError(f"num_points must be positive, got {self.num_points}")
        if self.num_edges < 0 or self.in_dim < 0 or self.out_dim < 0 or self.message_dim < 0:
            raise ValueError("op dimensions must be non-negative")

    @property
    def category(self) -> str:
        """Profiling category ('sample', 'aggregate', 'combine' or 'others')."""
        return OP_CATEGORY[self.kind]


@dataclass
class Workload:
    """An ordered list of operations plus cloud-level metadata."""

    ops: list[OpDescriptor] = field(default_factory=list)
    num_points: int = 1024
    name: str = "workload"

    def __post_init__(self) -> None:
        if self.num_points <= 0:
            raise ValueError(f"num_points must be positive, got {self.num_points}")

    def add(self, op: OpDescriptor) -> "Workload":
        """Append an operation (returns self for chaining)."""
        self.ops.append(op)
        return self

    def __iter__(self) -> Iterator[OpDescriptor]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def count(self, kind: str) -> int:
        """Number of ops of the given kind."""
        return sum(1 for op in self.ops if op.kind == kind)

    def by_category(self) -> dict[str, list[OpDescriptor]]:
        """Group ops by profiling category."""
        groups: dict[str, list[OpDescriptor]] = {"sample": [], "aggregate": [], "combine": [], "others": []}
        for op in self.ops:
            groups[op.category].append(op)
        return groups
