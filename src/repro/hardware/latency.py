"""Analytical latency model.

Latency of an operation on a device is a linear combination of the op's
resource quantities (see :mod:`repro.hardware.cost_model`) with the
device's calibrated coefficients, plus a per-op dispatch overhead.  The
per-category breakdown mirrors the paper's Fig. 3: resource time is
attributed to the op's category while dispatch overhead is attributed to
"others" (framework time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cost_model import OpQuantities, lower_workload
from repro.hardware.device import DeviceSpec
from repro.hardware.workload import Workload

__all__ = ["OpLatency", "LatencyReport", "estimate_latency"]


@dataclass(frozen=True)
class OpLatency:
    """Latency contribution of one op (milliseconds)."""

    name: str
    category: str
    resource_ms: float
    overhead_ms: float

    @property
    def total_ms(self) -> float:
        return self.resource_ms + self.overhead_ms


@dataclass
class LatencyReport:
    """Per-op and per-category latency of a workload on one device."""

    device: str
    workload: str
    ops: list[OpLatency] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        """End-to-end inference latency in milliseconds."""
        return float(sum(op.total_ms for op in self.ops))

    @property
    def total_s(self) -> float:
        """End-to-end inference latency in seconds."""
        return self.total_ms / 1e3

    def category_ms(self) -> dict[str, float]:
        """Latency per profiling category (overhead counted as 'others')."""
        totals = {"sample": 0.0, "aggregate": 0.0, "combine": 0.0, "others": 0.0}
        for op in self.ops:
            totals[op.category] += op.resource_ms
            totals["others"] += op.overhead_ms
        return totals

    def category_fractions(self) -> dict[str, float]:
        """Fraction of total latency per category (sums to 1)."""
        totals = self.category_ms()
        grand = sum(totals.values())
        if grand <= 0:
            return {key: 0.0 for key in totals}
        return {key: value / grand for key, value in totals.items()}


#: Reference cloud size at which the per-op dispatch overhead was calibrated.
_OVERHEAD_REFERENCE_POINTS = 1024
#: Fraction of the dispatch overhead that is independent of cloud size.
_OVERHEAD_FIXED_FRACTION = 0.25


def _op_resource_ms(quantities: OpQuantities, device: DeviceSpec) -> float:
    nanoseconds = (
        quantities.knn_pair_dims * device.ns_per_knn_pair_dim
        + quantities.random_edges * device.ns_per_random_edge
        + quantities.irregular_bytes * device.ns_per_irregular_byte
        + quantities.flops * device.ns_per_flop
    )
    return nanoseconds * 1e-6


def _overhead_scale(num_points: int) -> float:
    """Dispatch/framework overhead grows mildly with the cloud size.

    Part of the "others" time (tensor reshapes, host-device copies, python
    dispatch over larger tensors) scales with the input, part is fixed.  The
    scale equals 1 at the 1024-point calibration size.
    """
    variable = 1.0 - _OVERHEAD_FIXED_FRACTION
    return _OVERHEAD_FIXED_FRACTION + variable * (num_points / _OVERHEAD_REFERENCE_POINTS)


def estimate_latency(workload: Workload, device: DeviceSpec) -> LatencyReport:
    """Estimate the inference latency of ``workload`` on ``device``.

    Args:
        workload: Device-independent workload description.
        device: Calibrated device spec.

    Returns:
        A :class:`LatencyReport` with per-op, per-category and total times.
    """
    report = LatencyReport(device=device.name, workload=workload.name)
    overhead_scale = _overhead_scale(workload.num_points)
    for quantities in lower_workload(workload).per_op:
        report.ops.append(
            OpLatency(
                name=quantities.name,
                category=quantities.category,
                resource_ms=_op_resource_ms(quantities, device),
                overhead_ms=quantities.op_count * device.ms_per_op_overhead * overhead_scale,
            )
        )
    return report
