"""Execution-time profiling of workloads (the paper's Fig. 3 experiment)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.hardware.memory import estimate_peak_memory
from repro.hardware.workload import Workload
from repro.obs.metrics import get_metrics

__all__ = ["ProfileResult", "profile_workload", "profile_breakdown"]

CATEGORIES = ("sample", "aggregate", "combine", "others")


@dataclass(frozen=True)
class ProfileResult:
    """Full profile of one workload on one device."""

    device: str
    workload: str
    total_latency_ms: float
    category_ms: dict[str, float]
    category_fractions: dict[str, float]
    peak_memory_mb: float
    out_of_memory: bool

    def dominant_category(self) -> str:
        """Category with the largest share of execution time."""
        return max(self.category_ms, key=self.category_ms.get)


def profile_workload(workload: Workload, device: DeviceSpec) -> ProfileResult:
    """Profile latency breakdown and peak memory of a workload on a device."""
    get_metrics().count("hardware.profile.calls")
    latency = estimate_latency(workload, device)
    memory = estimate_peak_memory(workload, device)
    return ProfileResult(
        device=device.name,
        workload=workload.name,
        total_latency_ms=latency.total_ms,
        category_ms=latency.category_ms(),
        category_fractions=latency.category_fractions(),
        peak_memory_mb=memory.peak_mb,
        out_of_memory=memory.out_of_memory,
    )


def profile_breakdown(workload: Workload, devices: list[DeviceSpec]) -> dict[str, ProfileResult]:
    """Profile the same workload on several devices (Fig. 3)."""
    return {device.name: profile_workload(workload, device) for device in devices}
