"""Peak-memory model and out-of-memory detection.

Peak memory of an inference is modelled as the device's resident framework
footprint plus a calibrated multiple of the workload's total transient
working set (the multiplier absorbs allocator caching and fragmentation,
which is why the same model occupies very different amounts of memory on
different runtimes — exactly what Table II of the paper shows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cost_model import lower_workload
from repro.hardware.device import DeviceSpec
from repro.hardware.workload import Workload

__all__ = ["MemoryReport", "estimate_peak_memory", "is_out_of_memory"]


@dataclass(frozen=True)
class MemoryReport:
    """Peak-memory estimate for a workload on one device."""

    device: str
    workload: str
    base_mb: float
    activation_mb: float
    available_mb: float

    @property
    def peak_mb(self) -> float:
        """Estimated peak resident memory in MB."""
        return self.base_mb + self.activation_mb

    @property
    def out_of_memory(self) -> bool:
        """Whether the workload exceeds the device's usable memory."""
        return self.peak_mb > self.available_mb

    @property
    def utilisation(self) -> float:
        """Fraction of the usable memory consumed (may exceed 1)."""
        return self.peak_mb / self.available_mb


def estimate_peak_memory(workload: Workload, device: DeviceSpec) -> MemoryReport:
    """Estimate peak memory usage of ``workload`` on ``device``."""
    quantities = lower_workload(workload)
    activation_mb = device.memory_scale * quantities.total_working_set_bytes / 2**20
    return MemoryReport(
        device=device.name,
        workload=workload.name,
        base_mb=device.base_memory_mb,
        activation_mb=activation_mb,
        available_mb=device.available_memory_mb,
    )


def is_out_of_memory(workload: Workload, device: DeviceSpec) -> bool:
    """Convenience wrapper returning only the OOM verdict."""
    return estimate_peak_memory(workload, device).out_of_memory
