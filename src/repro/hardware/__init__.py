"""Analytical edge-device hardware models (latency, memory, power, profiling).

These models stand in for the paper's physical RTX3080 / i7-8700K /
Jetson TX2 / Raspberry Pi 3B+ test-bed.  Coefficients are calibrated so
DGCNN at 1024 points reproduces the paper's measured latency, execution
breakdown and peak memory on every device (see
:mod:`repro.hardware.calibration`); everything else is a prediction of the
model.
"""

from repro.hardware.calibration import PAPER_TARGETS, CalibrationTarget, calibrate_coefficients
from repro.hardware.cost_model import (
    BYTES_PER_ELEMENT,
    OpQuantities,
    WorkloadQuantities,
    lower_op,
    lower_workload,
)
from repro.hardware.device import (
    DEVICE_ALIASES,
    DeviceSpec,
    all_devices,
    get_device,
    list_devices,
    register_device,
    unregister_device,
)
from repro.hardware.latency import LatencyReport, OpLatency, estimate_latency
from repro.hardware.measurement import DeviceMeasurement, MeasurementSample
from repro.hardware.memory import MemoryReport, estimate_peak_memory, is_out_of_memory
from repro.hardware.power import EnergyReport, estimate_energy, power_efficiency_ratio
from repro.hardware.profiler import ProfileResult, profile_breakdown, profile_workload
from repro.hardware.reference_workloads import (
    PAPER_DGCNN_K,
    PAPER_DGCNN_LAYER_DIMS,
    PAPER_NUM_CLASSES,
    dgcnn_workload,
    graph_reuse_dgcnn_workload,
    simplified_dgcnn_workload,
)
from repro.hardware.workload import OP_CATEGORY, OP_KINDS, OpDescriptor, Workload

__all__ = [
    "PAPER_TARGETS",
    "CalibrationTarget",
    "calibrate_coefficients",
    "BYTES_PER_ELEMENT",
    "OpQuantities",
    "WorkloadQuantities",
    "lower_op",
    "lower_workload",
    "DEVICE_ALIASES",
    "DeviceSpec",
    "all_devices",
    "get_device",
    "list_devices",
    "register_device",
    "unregister_device",
    "LatencyReport",
    "OpLatency",
    "estimate_latency",
    "DeviceMeasurement",
    "MeasurementSample",
    "MemoryReport",
    "estimate_peak_memory",
    "is_out_of_memory",
    "EnergyReport",
    "estimate_energy",
    "power_efficiency_ratio",
    "ProfileResult",
    "profile_breakdown",
    "profile_workload",
    "OP_CATEGORY",
    "OP_KINDS",
    "OpDescriptor",
    "Workload",
    "dgcnn_workload",
    "graph_reuse_dgcnn_workload",
    "simplified_dgcnn_workload",
    "PAPER_DGCNN_K",
    "PAPER_DGCNN_LAYER_DIMS",
    "PAPER_NUM_CLASSES",
]
