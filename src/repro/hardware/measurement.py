"""Simulated on-device measurement.

During a hardware-aware search there are two ways to obtain the latency of
a candidate architecture: query the GNN predictor (milliseconds) or deploy
the model on the real device and measure it (seconds to minutes per
candidate, plus measurement noise).  :class:`DeviceMeasurement` emulates the
latter: it returns the analytical latency perturbed by device-specific
multiplicative noise and advances a virtual clock by the measurement round
trip, so the predictor-vs-measurement ablation (Fig. 9a) can be reproduced
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_latency
from repro.hardware.memory import estimate_peak_memory
from repro.hardware.workload import Workload
from repro.utils.timer import VirtualClock

__all__ = ["MeasurementSample", "DeviceMeasurement"]


@dataclass(frozen=True)
class MeasurementSample:
    """One measured data point."""

    latency_ms: float
    peak_memory_mb: float
    out_of_memory: bool
    wall_clock_s: float


@dataclass
class DeviceMeasurement:
    """Noisy, slow latency oracle emulating real on-device measurement.

    Attributes:
        device: Device being "measured".
        rng: Random generator for the measurement noise.
        clock: Virtual clock advanced by each measurement's round trip.
        num_runs: Number of repeated runs averaged per measurement (the
            paper averages 10 runs); averaging reduces the effective noise.
    """

    device: DeviceSpec
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    clock: VirtualClock = field(default_factory=VirtualClock)
    num_runs: int = 10

    def __post_init__(self) -> None:
        if self.num_runs <= 0:
            raise ValueError("num_runs must be positive")

    @property
    def effective_noise(self) -> float:
        """Relative noise of the averaged measurement."""
        return self.device.measurement_noise / np.sqrt(self.num_runs)

    def measure(self, workload: Workload) -> MeasurementSample:
        """Measure a workload: returns noisy latency and advances the clock."""
        latency = estimate_latency(workload, self.device).total_ms
        memory = estimate_peak_memory(workload, self.device)
        noise = 1.0 + self.rng.normal(0.0, self.effective_noise)
        noisy_latency = max(latency * noise, 1e-6)
        self.clock.advance(self.device.measurement_round_trip_s)
        return MeasurementSample(
            latency_ms=float(noisy_latency),
            peak_memory_mb=memory.peak_mb,
            out_of_memory=memory.out_of_memory,
            wall_clock_s=self.clock.now,
        )

    def measure_latency_ms(self, workload: Workload) -> float:
        """Shortcut returning only the noisy latency."""
        return self.measure(workload).latency_ms
