"""``numpy-blocked``: a cache-blocked/strided variant of the reference backend.

Two primitives are reorganized for cache locality; everything else inherits
the reference implementation:

* ``matmul`` splits the shared (K) dimension into blocks and accumulates
  partial products, so each ``A``-panel / ``B``-panel pair fits hot caches
  on wide contractions.  The accumulation order differs from one fused BLAS
  call, so results are *allclose* to — not bit-identical with — the
  reference (exactly the contract the equivalence tests pin).
* ``segment_reduce`` processes the feature axis in column blocks, keeping
  the per-block working set (``E_chunk × block``) cache-resident during the
  reduction sweep.  Per-column arithmetic is unchanged, so this primitive
  stays bit-identical to the reference.

The block sizes are deliberately small enough that the repo's test graphs
exercise the blocked paths (a threshold above every test problem would make
the "variant" an untested alias of the reference).
"""

from __future__ import annotations

import numpy as np

from repro.backends.numpy_backend import NumpyBackend

__all__ = ["NumpyBlockedBackend"]


class NumpyBlockedBackend(NumpyBackend):
    """Cache-blocked numpy kernels (K-blocked matmul, column-blocked reduce)."""

    name = "numpy-blocked"
    description = "cache-blocked numpy kernels (K-blocked matmul, column-blocked segment reduce)"

    #: Contraction block for ``matmul``; contractions at or below this width
    #: go straight to one BLAS call.
    matmul_k_block: int = 128
    #: Feature-axis block for ``segment_reduce``; narrower inputs reduce in
    #: one sweep.
    reduce_col_block: int = 32

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] <= self.matmul_k_block:
            return a @ b
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.result_type(a, b))
        for k0 in range(0, a.shape[1], self.matmul_k_block):
            k1 = min(k0 + self.matmul_k_block, a.shape[1])
            out += a[:, k0:k1] @ b[k0:k1, :]
        return out

    def segment_reduce(
        self,
        values: np.ndarray,
        seg_starts: np.ndarray,
        seg_counts: np.ndarray,
        aggregator: str,
    ) -> np.ndarray:
        width = values.shape[1]
        if width <= self.reduce_col_block:
            return super().segment_reduce(values, seg_starts, seg_counts, aggregator)
        num_segments = int(seg_counts.shape[0])
        out = np.empty((num_segments, width), dtype=values.dtype)
        for c0 in range(0, width, self.reduce_col_block):
            c1 = min(c0 + self.reduce_col_block, width)
            out[:, c0:c1] = super().segment_reduce(
                np.ascontiguousarray(values[:, c0:c1]), seg_starts, seg_counts, aggregator
            )
        return out
