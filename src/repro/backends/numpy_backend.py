"""The reference numpy backend (and the ``materialized`` policy variant).

:class:`NumpyBackend` is the always-available reference every other backend
is equivalence-tested against.  Its primitives are the PR-5 kernels moved
here **verbatim** — same numpy calls in the same order — so dispatching
through the registry is bit-identical to the pre-registry direct-call code:

* ``segment_reduce`` keeps the uniform-degree reshape fast path (a reshaped
  axis reduction is SIMD-vectorized, unlike ``ufunc.reduceat``) with the
  ragged ``reduceat`` fallback;
* ``scatter_add`` / ``scatter_extreme`` are the unbuffered ``ufunc.at``
  accumulations of :mod:`repro.graph.scatter`;
* ``matmul`` / ``gather`` are plain ``@`` / fancy indexing, which BLAS and
  numpy already run at full throughput.

:class:`MaterializedBackend` shares all of the above but turns
``fused_dispatch`` off: models take the materialized
gather → message → MLP → scatter path instead of the fused CSR kernels.
It replaces the old ``set_fused_kernels(False)`` boolean toggle as a
first-class policy choice (A/B benchmarks, debugging the fused path).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ComputeBackend

__all__ = ["NumpyBackend", "MaterializedBackend"]

#: Aggregator name -> reducing ufunc (``mean`` reduces like ``sum``; the
#: caller divides by the segment counts afterwards).
_REDUCERS = {"sum": np.add, "mean": np.add, "max": np.maximum, "min": np.minimum}

_EXTREME_REDUCERS = {"max": np.maximum, "min": np.minimum}


class NumpyBackend(ComputeBackend):
    """Pure-numpy reference primitives (bit-identical to the PR-5 kernels)."""

    name = "numpy"
    description = "pure-numpy reference kernels (reduceat + uniform-degree reshape)"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def gather(self, x: np.ndarray, index: np.ndarray) -> np.ndarray:
        return x[index]

    def scatter_add(self, out: np.ndarray, index: np.ndarray, values: np.ndarray) -> None:
        np.add.at(out, index, values)

    def scatter_extreme(
        self, out: np.ndarray, index: np.ndarray, values: np.ndarray, mode: str
    ) -> None:
        try:
            reducer = _EXTREME_REDUCERS[mode]
        except KeyError as exc:
            raise ValueError(f"unknown extreme mode '{mode}', expected 'max' or 'min'") from exc
        reducer.at(out, index, values)

    def segment_reduce(
        self,
        values: np.ndarray,
        seg_starts: np.ndarray,
        seg_counts: np.ndarray,
        aggregator: str,
    ) -> np.ndarray:
        try:
            reducer = _REDUCERS[aggregator]
        except KeyError as exc:
            raise ValueError(f"unknown aggregator '{aggregator}'") from exc
        degree = int(seg_counts[0]) if seg_counts.size else 0
        if degree and np.all(seg_counts == degree):
            # Uniform degree (the KNN/random-graph common case): a reshaped
            # axis reduction is SIMD-vectorized, unlike ufunc.reduceat.
            stacked = values.reshape(seg_counts.size, degree, values.shape[1])
            if aggregator in ("sum", "mean"):
                return stacked.sum(axis=1)
            if aggregator == "max":
                return stacked.max(axis=1)
            return stacked.min(axis=1)
        return reducer.reduceat(values, seg_starts, axis=0)


class MaterializedBackend(NumpyBackend):
    """Reference primitives with fused-kernel auto-dispatch disabled."""

    name = "materialized"
    description = "numpy primitives, fused CSR dispatch off (materialized message passing)"
    fused_dispatch = False
