"""The :class:`ComputeBackend` contract.

A backend owns the five low-level kernel primitives the whole stack's hot
path is built from — dense matmul, index gather, in-place scatter
accumulation (sum and max/min), and contiguous segment reduction.  The
fused CSR kernels (:mod:`repro.graph.fused`), the scatter aggregations
(:mod:`repro.graph.scatter`), message construction
(:mod:`repro.graph.message`) and the ``Linear`` matmul entry point
(:mod:`repro.nn.functional`) all dispatch through the *active* backend
(:func:`repro.backends.active_backend`) instead of calling numpy directly,
so swapping the execution substrate (blocked numpy, numba, a GPU array
library) never touches a call site again.

This module must stay import-light: backends are imported by the autograd
engine and the graph kernels, so nothing here may import from
``repro.nn`` / ``repro.graph`` (only numpy and the standard library).

Contract notes
--------------

* Primitives receive and return plain ``np.ndarray`` objects; autograd
  wiring stays in the call sites.
* ``scatter_add`` / ``scatter_extreme`` mutate ``out`` in place (ufunc
  ``.at`` semantics: *unbuffered*, so repeated indices accumulate).
* ``segment_reduce`` reduces contiguous segments of ``values`` described
  by ``seg_starts``/``seg_counts`` (``reduceat`` semantics over non-empty
  segments); ``aggregator`` is one of ``sum``/``mean``/``max``/``min``,
  where ``mean`` reduces like ``sum`` — the caller divides by the counts.
* ``fused_dispatch`` controls whether the models' no-grad forward passes
  auto-dispatch to the fused CSR kernels; the ``materialized`` reference
  backend sets it to ``False`` to reproduce the pre-fusion execution path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ComputeBackend"]


class ComputeBackend:
    """Abstract kernel-primitive provider; concrete backends subclass this."""

    #: Registry key (lower-case; may contain dashes, e.g. ``numpy-blocked``).
    name: str = "abstract"
    #: One-line human description shown by ``repro backends``.
    description: str = ""
    #: Whether models auto-dispatch to the fused CSR kernels in no-grad mode.
    fused_dispatch: bool = True

    @property
    def metric_name(self) -> str:
        """The backend name as a metric/span-safe segment (dashes -> underscores)."""
        return self.name.replace("-", "_")

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current environment.

        Optional backends (numba, GPU libraries) override this to probe for
        their dependency; only available backends are registered.
        """
        return True

    # ------------------------------------------------------------------ #
    # Kernel primitives
    # ------------------------------------------------------------------ #
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense matrix product ``a @ b``."""
        raise NotImplementedError

    def gather(self, x: np.ndarray, index: np.ndarray) -> np.ndarray:
        """Row gather ``x[index]``."""
        raise NotImplementedError

    def scatter_add(self, out: np.ndarray, index: np.ndarray, values: np.ndarray) -> None:
        """In-place unbuffered accumulation ``out[index] += values``."""
        raise NotImplementedError

    def scatter_extreme(
        self, out: np.ndarray, index: np.ndarray, values: np.ndarray, mode: str
    ) -> None:
        """In-place unbuffered ``out[index] = max/min(out[index], values)``."""
        raise NotImplementedError

    def segment_reduce(
        self,
        values: np.ndarray,
        seg_starts: np.ndarray,
        seg_counts: np.ndarray,
        aggregator: str,
    ) -> np.ndarray:
        """Reduce contiguous segments of ``values`` to ``(num_segments, F)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
