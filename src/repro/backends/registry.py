"""The string-keyed compute-backend registry and the active-backend policy.

Mirrors the device / latency-evaluator registries of
:mod:`repro.hardware.device` and :mod:`repro.nas.latency_eval`: backends
register under a canonical lower-case name, consumers look them up by name,
and :func:`use_backend` scopes the *active* backend the kernels dispatch to
— orthogonal to the dtype policy (``default_dtype`` × ``use_backend``
compose freely).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.backends.base import ComputeBackend

__all__ = [
    "register_backend",
    "unregister_backend",
    "get_backend",
    "list_backends",
    "active_backend",
    "active_backend_name",
    "set_active_backend",
    "use_backend",
]

#: The always-available reference backend every equivalence test pins to.
_REFERENCE_BACKEND = "numpy"

#: Canonical name -> backend instance, in registration order.
_BACKEND_REGISTRY: dict[str, ComputeBackend] = {}

_ACTIVE_BACKEND = _REFERENCE_BACKEND


def register_backend(backend: ComputeBackend, replace: bool = False) -> str:
    """Register ``backend`` under its canonical (lower-case) name.

    Args:
        backend: A :class:`~repro.backends.base.ComputeBackend` instance.
        replace: Allow overwriting an already-registered name.

    Returns:
        The canonical name the backend was registered under.
    """
    name = backend.name.strip().lower()
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _BACKEND_REGISTRY and not replace:
        raise ValueError(f"backend '{name}' already registered (pass replace=True)")
    _BACKEND_REGISTRY[name] = backend
    return name


def unregister_backend(name: str) -> None:
    """Remove a registered backend (the ``numpy`` reference cannot be removed)."""
    global _ACTIVE_BACKEND
    key = name.strip().lower()
    if key == _REFERENCE_BACKEND:
        raise ValueError("the 'numpy' reference backend cannot be unregistered")
    if key not in _BACKEND_REGISTRY:
        raise KeyError(f"unknown backend '{name}'; registered: {list_backends()}")
    del _BACKEND_REGISTRY[key]
    if _ACTIVE_BACKEND == key:
        _ACTIVE_BACKEND = _REFERENCE_BACKEND


def get_backend(name: str) -> ComputeBackend:
    """Return the registered backend called ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if key not in _BACKEND_REGISTRY:
        raise KeyError(f"unknown backend '{name}'; registered: {list_backends()}")
    return _BACKEND_REGISTRY[key]


def list_backends() -> list[str]:
    """Canonical names of the registered backends, in registration order."""
    return list(_BACKEND_REGISTRY)


def active_backend() -> ComputeBackend:
    """The backend the kernel primitives currently dispatch to."""
    return _BACKEND_REGISTRY[_ACTIVE_BACKEND]


def active_backend_name() -> str:
    """Canonical name of the active backend."""
    return _ACTIVE_BACKEND


def set_active_backend(name: str) -> str:
    """Make ``name`` the process-wide active backend; returns the canonical name."""
    global _ACTIVE_BACKEND
    backend = get_backend(name)
    _ACTIVE_BACKEND = backend.name.strip().lower()
    return _ACTIVE_BACKEND


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[ComputeBackend]:
    """Scope the active compute backend (nestable, exception-safe)::

        with use_backend("numpy-blocked"):
            ...  # fused kernels / scatter / Linear dispatch to the blocked variant
    """
    global _ACTIVE_BACKEND
    backend = get_backend(name)
    previous = _ACTIVE_BACKEND
    _ACTIVE_BACKEND = backend.name.strip().lower()
    try:
        yield backend
    finally:
        _ACTIVE_BACKEND = previous
