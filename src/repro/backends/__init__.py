"""Pluggable compute backends behind the dtype policy.

The hot path of the whole stack — the fused CSR message-passing kernels,
the scatter aggregations, message gathers and the ``Linear`` matmuls —
dispatches through a string-keyed :class:`~repro.backends.base.ComputeBackend`
registry instead of calling numpy directly.  The registry mirrors the
device and latency-evaluator registries: register under a canonical name,
look up by name, scope the *active* backend with a context manager::

    from repro.backends import use_backend

    with use_backend("numpy-blocked"):
        logits = model(batch)          # kernels run cache-blocked

    with default_dtype("float64"), use_backend("numpy"):
        ...                            # dtype x backend compose orthogonally

Shipped backends:

* ``numpy`` — the always-available reference (the PR-5 kernels verbatim;
  bit-identical to the pre-registry code and the target every equivalence
  test pins other backends to).
* ``numpy-blocked`` — cache-blocked matmul and column-blocked segment
  reduction (allclose to the reference).
* ``materialized`` — reference primitives with fused-kernel auto-dispatch
  disabled; replaces the old ``set_fused_kernels(False)`` boolean toggle.
* ``numba`` — JIT-compiled scatter/segment loops, registered only when the
  optional ``numba`` package is importable.

This package imports nothing from ``repro.nn``/``repro.graph`` (they import
*it*), so it is safe at the very bottom of the dependency graph.
"""

from __future__ import annotations

from repro.backends.base import ComputeBackend
from repro.backends.blocked import NumpyBlockedBackend
from repro.backends.numba_backend import NumbaBackend
from repro.backends.numpy_backend import MaterializedBackend, NumpyBackend
from repro.backends.registry import (
    active_backend,
    active_backend_name,
    get_backend,
    list_backends,
    register_backend,
    set_active_backend,
    unregister_backend,
    use_backend,
)

__all__ = [
    "ComputeBackend",
    "NumpyBackend",
    "NumpyBlockedBackend",
    "MaterializedBackend",
    "NumbaBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "list_backends",
    "active_backend",
    "active_backend_name",
    "set_active_backend",
    "use_backend",
    "backend_status",
]

#: Optional backends probed (and registered) only when their dependency is
#: importable; unavailable ones still show up in ``backend_status()``.
_OPTIONAL_BACKENDS: tuple[type[ComputeBackend], ...] = (NumbaBackend,)

register_backend(NumpyBackend())
register_backend(NumpyBlockedBackend())
register_backend(MaterializedBackend())
for _optional in _OPTIONAL_BACKENDS:
    if _optional.is_available():
        register_backend(_optional())


def backend_status() -> list[dict[str, object]]:
    """Name/description/availability of every known backend (for the CLI).

    Registered backends are available by definition; optional backends whose
    dependency is missing are listed as unavailable so ``repro backends``
    shows what *could* be enabled.
    """
    rows: list[dict[str, object]] = []
    active = active_backend_name()
    for name in list_backends():
        backend = get_backend(name)
        rows.append(
            {
                "name": name,
                "available": True,
                "active": name == active,
                "fused_dispatch": backend.fused_dispatch,
                "description": backend.description,
            }
        )
    registered = set(list_backends())
    for cls in _OPTIONAL_BACKENDS:
        if cls.name not in registered:
            rows.append(
                {
                    "name": cls.name,
                    "available": False,
                    "active": False,
                    "fused_dispatch": cls.fused_dispatch,
                    "description": cls.description,
                }
            )
    return rows
