"""Optional numba backend: JIT-compiled scatter and segment-reduction loops.

Registered by :mod:`repro.backends` **only when numba is importable** — the
baked toolchain of the CI/container image does not ship it, so everything
here is import-guarded and the class never instantiates without the
dependency.  ``matmul``/``gather`` inherit the reference implementations
(BLAS and fancy indexing are already optimal); the irregular-access
primitives — the ones ``np.ufunc.at`` executes an order of magnitude below
memory bandwidth — compile to fused native loops on first use.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.backends.numpy_backend import NumpyBackend

__all__ = ["NumbaBackend"]


class NumbaBackend(NumpyBackend):
    """Numba-jitted scatter/segment kernels (requires the ``numba`` package)."""

    name = "numba"
    description = "numba-jitted scatter and segment-reduction loops (optional dependency)"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("numba") is not None

    def __init__(self) -> None:
        if not self.is_available():
            raise RuntimeError("the numba backend requires the 'numba' package")
        self._kernels: dict | None = None

    def _compiled(self) -> dict:
        """Compile the jitted kernels lazily (first dispatch pays the JIT cost)."""
        if self._kernels is not None:
            return self._kernels
        import numba

        @numba.njit(cache=True)
        def scatter_add(out, index, values):  # pragma: no cover - needs numba
            for e in range(index.shape[0]):
                row = index[e]
                for f in range(values.shape[1]):
                    out[row, f] += values[e, f]

        @numba.njit(cache=True)
        def scatter_extreme(out, index, values, use_max):  # pragma: no cover - needs numba
            for e in range(index.shape[0]):
                row = index[e]
                for f in range(values.shape[1]):
                    v = values[e, f]
                    if use_max:
                        if v > out[row, f]:
                            out[row, f] = v
                    elif v < out[row, f]:
                        out[row, f] = v

        @numba.njit(cache=True)
        def segment_reduce(values, seg_starts, seg_ends, mode, out):  # pragma: no cover
            # mode: 0 = sum/mean, 1 = max, 2 = min
            for s in range(seg_starts.shape[0]):
                start, end = seg_starts[s], seg_ends[s]
                for f in range(values.shape[1]):
                    acc = values[start, f]
                    for e in range(start + 1, end):
                        v = values[e, f]
                        if mode == 0:
                            acc += v
                        elif mode == 1:
                            acc = v if v > acc else acc
                        else:
                            acc = v if v < acc else acc
                    out[s, f] = acc

        self._kernels = {
            "scatter_add": scatter_add,
            "scatter_extreme": scatter_extreme,
            "segment_reduce": segment_reduce,
        }
        return self._kernels

    def scatter_add(self, out: np.ndarray, index: np.ndarray, values: np.ndarray) -> None:
        if out.ndim != 2 or values.ndim != 2:
            super().scatter_add(out, index, values)
            return
        self._compiled()["scatter_add"](out, np.ascontiguousarray(index), values)

    def scatter_extreme(
        self, out: np.ndarray, index: np.ndarray, values: np.ndarray, mode: str
    ) -> None:
        if mode not in ("max", "min"):
            raise ValueError(f"unknown extreme mode '{mode}', expected 'max' or 'min'")
        if out.ndim != 2 or values.ndim != 2:
            super().scatter_extreme(out, index, values, mode)
            return
        self._compiled()["scatter_extreme"](
            out, np.ascontiguousarray(index), values, mode == "max"
        )

    def segment_reduce(
        self,
        values: np.ndarray,
        seg_starts: np.ndarray,
        seg_counts: np.ndarray,
        aggregator: str,
    ) -> np.ndarray:
        if aggregator not in ("sum", "mean", "max", "min"):
            raise ValueError(f"unknown aggregator '{aggregator}'")
        num_segments = int(seg_counts.shape[0])
        out = np.empty((num_segments, values.shape[1]), dtype=values.dtype)
        if num_segments == 0:
            return out
        starts = np.ascontiguousarray(seg_starts, dtype=np.int64)
        ends = starts + np.ascontiguousarray(seg_counts, dtype=np.int64)
        mode = 0 if aggregator in ("sum", "mean") else (1 if aggregator == "max" else 2)
        self._compiled()["segment_reduce"](np.ascontiguousarray(values), starts, ends, mode, out)
        return out
