"""AST lint rule framework: violations, waivers and the rule protocol.

A :class:`LintRule` inspects one module's AST and yields
:class:`LintViolation` records.  Rules never mutate anything and never
import the module under inspection — everything is derived from the source
text and its parse tree, so linting broken or import-cycled code still
works.

Waivers are inline comments of the form::

    some_call(validated=True)  # repro-lint: allow[unvalidated-index] edge index is pre-validated by the shared builder

or a standalone comment on the line directly above the flagged one.  A
waiver must carry a reason; a bare ``allow[rule]`` with no justification is
itself reported (``waiver-missing-reason``), so suppressions stay auditable.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["LintViolation", "LintContext", "LintRule", "parse_waivers"]

_WAIVER_PATTERN = re.compile(r"#\s*repro-lint:\s*allow\[(?P<rule>[a-z0-9-]+)\]\s*(?P<reason>.*)")


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Waiver:
    """A parsed ``repro-lint: allow[...]`` comment."""

    rule: str
    line: int
    reason: str


def parse_waivers(source: str) -> list[Waiver]:
    """Extract every waiver comment from ``source`` (line numbers 1-based)."""
    waivers: list[Waiver] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _WAIVER_PATTERN.search(text)
        if match:
            waivers.append(Waiver(rule=match.group("rule"), line=lineno, reason=match.group("reason").strip()))
    return waivers


@dataclass
class LintContext:
    """Everything a rule may inspect about one module.

    Attributes:
        path: Absolute path of the file.
        root: The source root the lint run was scoped to (used to compute
            the module's dotted name and to resolve lazy-export targets).
        source: Raw file contents.
        tree: Parsed AST.
        module: Dotted module name relative to ``root`` (e.g.
            ``repro.nn.dtype``), or the bare filename stem when the file
            lies outside ``root``.
        waivers: Parsed waiver comments, by line.
    """

    path: pathlib.Path
    root: pathlib.Path
    source: str
    tree: ast.Module
    module: str
    waivers: list[Waiver] = field(default_factory=list)

    @classmethod
    def for_file(cls, path: pathlib.Path, root: pathlib.Path) -> "LintContext":
        """Parse ``path`` into a lint context (raises ``SyntaxError`` on bad source)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relative = path.resolve().relative_to(root.resolve())
            parts = list(relative.parts)
            if parts[-1] == "__init__.py":
                parts = parts[:-1]
            else:
                parts[-1] = pathlib.Path(parts[-1]).stem
            module = ".".join([root.name, *parts]) if parts else root.name
        except ValueError:
            module = path.stem
        return cls(
            path=path,
            root=root,
            source=source,
            tree=tree,
            module=module,
            waivers=parse_waivers(source),
        )

    def is_waived(self, rule: str, line: int) -> bool:
        """True when ``rule`` is waived for ``line`` (same line or the one above)."""
        return any(
            waiver.rule == rule and waiver.line in (line, line - 1) and waiver.reason
            for waiver in self.waivers
        )

    def violation(self, rule: str, node: ast.AST, message: str) -> LintViolation:
        """Build a violation anchored at ``node``."""
        return LintViolation(
            rule=rule,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class LintRule:
    """Base class for lint rules.

    Subclasses set :attr:`name`/:attr:`description` and implement
    :meth:`check`.  :meth:`run` applies waiver filtering and also reports
    waivers that are missing a reason, so rules themselves never deal with
    suppression mechanics.
    """

    #: Stable kebab-case rule identifier (used in CLI filters and waivers).
    name = "abstract-rule"
    #: One-line summary shown by ``repro lint --list-rules``.
    description = ""

    def check(self, context: LintContext) -> Iterable[LintViolation]:
        """Yield raw violations for one module (waivers not yet applied)."""
        raise NotImplementedError

    def run(self, context: LintContext) -> Iterator[LintViolation]:
        """Apply :meth:`check` under waiver filtering."""
        for violation in self.check(context):
            if not context.is_waived(self.name, violation.line):
                yield violation
        for waiver in context.waivers:
            if waiver.rule == self.name and not waiver.reason:
                yield LintViolation(
                    rule=self.name,
                    path=str(context.path),
                    line=waiver.line,
                    col=0,
                    message=f"waiver for [{self.name}] has no reason; justify the suppression",
                )
