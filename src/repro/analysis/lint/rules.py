"""The repo-invariant lint rules.

Each rule pins one convention that earlier PRs established by hand:

* ``dtype-literal`` — the float32 compute policy (PR 5) is owned by
  :mod:`repro.nn.dtype`; stray ``np.float64`` / ``dtype=float`` literals
  elsewhere silently re-introduce float64 compute or upcasts.
* ``rng-discipline`` — randomness flows through seeded
  ``np.random.Generator`` objects (see :mod:`repro.utils.random`); the
  module-global ``np.random.*`` API breaks reproducibility.
* ``obs-metric-naming`` — metric and span names follow the
  ``layer.component.name`` convention (PR 6) so ``repro report`` output
  stays groupable.
* ``lazy-export-sync`` — ``_LAZY_EXPORTS`` tables in ``__init__.py`` files
  must name attributes that actually exist in their target modules;
  a stale entry only explodes when somebody touches the name.
* ``unvalidated-index`` — the ``validated=True`` fast path of the scatter /
  fused kernels skips bounds checking; it is only sound in functions that
  obtained the edge index from a validating builder.
* ``backend-primitive`` — segment reductions (``reduceat``) and unbuffered
  scatter accumulation (``np.add.at`` and friends) are compute-backend
  primitives (PR 8) owned by :mod:`repro.backends`; raw call sites elsewhere
  bypass backend dispatch and silently pin the numpy implementation.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Iterator

from repro.analysis.lint.base import LintContext, LintRule, LintViolation

__all__ = [
    "DtypeLiteralRule",
    "RngDisciplineRule",
    "ObsMetricNamingRule",
    "LazyExportSyncRule",
    "UnvalidatedIndexRule",
    "BackendPrimitiveRule",
    "ALL_RULES",
]

_NAME_RE_METRIC = r"[a-z][a-z0-9_]*"


def _attribute_chain(node: ast.AST) -> str:
    """Dotted rendering of a Name/Attribute chain (``''`` for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class DtypeLiteralRule(LintRule):
    """No ``np.float64`` / ``dtype=float`` literals outside the policy module."""

    name = "dtype-literal"
    description = (
        "float64/dtype=float literals are only allowed in repro/nn/dtype.py "
        "(use WIDE_DTYPE or the dtype policy helpers)"
    )

    _EXEMPT_MODULES = {"repro.nn.dtype"}

    def check(self, context: LintContext) -> Iterator[LintViolation]:
        if context.module in self._EXEMPT_MODULES:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and node.attr == "float64":
                chain = _attribute_chain(node)
                if chain in ("np.float64", "numpy.float64"):
                    yield context.violation(
                        self.name,
                        node,
                        f"{chain} literal; import WIDE_DTYPE (or a policy helper) "
                        "from repro.nn.dtype instead",
                    )
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                if isinstance(node.value, ast.Name) and node.value.id == "float":
                    yield context.violation(
                        self.name,
                        node.value,
                        "dtype=float is platform float64; use the repro.nn.dtype policy",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "astype"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "float"
                ):
                    yield context.violation(
                        self.name,
                        node,
                        "astype(float) upcasts to float64; use the repro.nn.dtype policy",
                    )


class RngDisciplineRule(LintRule):
    """No module-global ``np.random.*`` calls; use seeded generators."""

    name = "rng-discipline"
    description = (
        "module-global np.random.* RNG is forbidden; construct seeded "
        "generators via repro.utils.random"
    )

    _EXEMPT_MODULES = {"repro.utils.random"}
    #: Names of numpy.random that construct/annotate generators (allowed).
    _ALLOWED = {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def check(self, context: LintContext) -> Iterator[LintViolation]:
        if context.module in self._EXEMPT_MODULES:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute):
                chain = _attribute_chain(node)
                parts = chain.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in self._ALLOWED
                ):
                    yield context.violation(
                        self.name,
                        node,
                        f"{chain} uses the module-global RNG; take an explicit seeded "
                        "np.random.Generator (see repro.utils.random)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name != "*" and alias.name not in self._ALLOWED:
                        yield context.violation(
                            self.name,
                            node,
                            f"importing '{alias.name}' from numpy.random bypasses seeded "
                            "generators; use repro.utils.random",
                        )


class ObsMetricNamingRule(LintRule):
    """Metric/span name literals follow the ``layer.component.name`` convention."""

    name = "obs-metric-naming"
    description = (
        "metric names must be 3-4 lowercase dot-separated segments, span names 2-4 "
        "(layer.component.name)"
    )

    _METRIC_METHODS = {"count", "set_gauge", "observe", "gauge", "histogram"}
    _SPAN_METHODS = {"span"}
    _ALLOWED_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789._")

    @staticmethod
    def _looks_like(receiver: ast.AST, substring: str, factory: str) -> bool:
        """Heuristic receiver classification: ``*metrics*`` names or ``get_metrics()`` calls."""
        if isinstance(receiver, ast.Call):
            chain = _attribute_chain(receiver.func)
            return chain.split(".")[-1] == factory
        chain = _attribute_chain(receiver)
        return substring in chain.split(".")[-1].lower() if chain else False

    def _segment_count_ok(self, name: str, low: int, high: int) -> bool:
        segments = name.split(".")
        if not low <= len(segments) <= high:
            return False
        return all(re.fullmatch(_NAME_RE_METRIC, segment) for segment in segments)

    def _check_name(
        self, context: LintContext, node: ast.AST, kind: str, low: int, high: int
    ) -> Iterator[LintViolation]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if not self._segment_count_ok(node.value, low, high):
                yield context.violation(
                    self.name,
                    node,
                    f"{kind} name '{node.value}' does not match the layer.component.name "
                    f"convention ({low}-{high} lowercase dot-separated segments)",
                )
        elif isinstance(node, ast.JoinedStr):
            for fragment in node.values:
                if isinstance(fragment, ast.Constant) and isinstance(fragment.value, str):
                    if not set(fragment.value) <= self._ALLOWED_CHARS:
                        yield context.violation(
                            self.name,
                            node,
                            f"{kind} name fragment '{fragment.value}' contains characters "
                            "outside [a-z0-9_.]",
                        )

    def check(self, context: LintContext) -> Iterator[LintViolation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "trace_span":
                yield from self._check_name(context, node.args[0], "span", 2, 4)
            elif isinstance(func, ast.Attribute):
                if func.attr in self._METRIC_METHODS and self._looks_like(
                    func.value, "metrics", "get_metrics"
                ):
                    yield from self._check_name(context, node.args[0], "metric", 3, 4)
                elif func.attr in self._SPAN_METHODS and self._looks_like(
                    func.value, "tracer", "get_tracer"
                ):
                    yield from self._check_name(context, node.args[0], "span", 2, 4)


class LazyExportSyncRule(LintRule):
    """``_LAZY_EXPORTS`` entries must resolve to real attributes of their targets."""

    name = "lazy-export-sync"
    description = (
        "_LAZY_EXPORTS tables in __init__.py files must name attributes that exist "
        "in the target modules"
    )

    def check(self, context: LintContext) -> Iterator[LintViolation]:
        if context.path.name != "__init__.py":
            return
        for node in context.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "_LAZY_EXPORTS" not in targets or not isinstance(node.value, ast.Dict):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    continue
                yield from self._check_entry(context, key, key.value, value.value)

    def _check_entry(
        self, context: LintContext, node: ast.AST, attribute: str, target: str
    ) -> Iterator[LintViolation]:
        module_path = self._resolve_module(context, target)
        if module_path is None:
            yield context.violation(
                self.name,
                node,
                f"lazy export '{attribute}' points at unresolvable module '{target}'",
            )
            return
        if attribute not in self._module_names(module_path):
            yield context.violation(
                self.name,
                node,
                f"lazy export '{attribute}' is not defined in '{target}' ({module_path})",
            )

    @staticmethod
    def _resolve_module(context: LintContext, target: str) -> pathlib.Path | None:
        parts = target.split(".")
        if parts[0] != context.root.name:
            return None
        base = context.root.parent.joinpath(*parts)
        if base.with_suffix(".py").is_file():
            return base.with_suffix(".py")
        if (base / "__init__.py").is_file():
            return base / "__init__.py"
        return None

    @staticmethod
    def _module_names(path: pathlib.Path) -> set[str]:
        """Names bound (or lazily re-exported) at the top level of ``path``."""
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            return set()
        names: set[str] = set()

        def bind_target(target: ast.AST) -> None:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    bind_target(element)

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    bind_target(target)
                # A nested _LAZY_EXPORTS table re-exports its keys.
                if (
                    any(isinstance(t, ast.Name) and t.id == "_LAZY_EXPORTS" for t in node.targets)
                    and isinstance(node.value, ast.Dict)
                ):
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            names.add(key.value)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
        return names


class UnvalidatedIndexRule(LintRule):
    """``validated=True`` only in functions that validate (or build) the index."""

    name = "unvalidated-index"
    description = (
        "passing validated=True to scatter/message/fused ops requires the enclosing "
        "function to call a validating builder (validate_index, *_graph, ...)"
    )

    #: Kernels whose ``validated=True`` skips bounds checks.
    _GUARDED_CALLEES = {
        "scatter",
        "scatter_sum",
        "scatter_mean",
        "scatter_max",
        "scatter_min",
        "build_messages",
        "fused_aggregate",
        "fused_edgeconv",
    }
    #: Calls that establish index validity within the same function.
    _VALIDATORS = {
        "validate_index",
        "validate_edge_index",
        "_pool_batch",
        "_build_graph",
        "batched_knn_graph",
        "batched_random_graph",
        "knn_graph",
        "random_graph",
    }
    #: The kernels' own modules (they implement the contract, not consume it).
    _EXEMPT_MODULES = {"repro.graph.scatter", "repro.graph.fused", "repro.graph.message"}

    def check(self, context: LintContext) -> Iterator[LintViolation]:
        if context.module in self._EXEMPT_MODULES:
            return
        yield from self._walk(context, context.tree, enclosing_calls=None)

    def _walk(
        self,
        context: LintContext,
        node: ast.AST,
        enclosing_calls: set[str] | None,
    ) -> Iterator[LintViolation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                calls = {
                    name
                    for call in ast.walk(child)
                    if isinstance(call, ast.Call)
                    for name in [self._callee_name(call)]
                    if name
                }
                yield from self._walk(context, child, calls)
                continue
            if isinstance(child, ast.Call):
                yield from self._check_call(context, child, enclosing_calls)
            yield from self._walk(context, child, enclosing_calls)

    @staticmethod
    def _callee_name(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    def _check_call(
        self,
        context: LintContext,
        call: ast.Call,
        enclosing_calls: set[str] | None,
    ) -> Iterator[LintViolation]:
        callee = self._callee_name(call)
        if callee not in self._GUARDED_CALLEES:
            return
        passes_validated = any(
            keyword.arg == "validated"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in call.keywords
        )
        if not passes_validated:
            return
        if enclosing_calls is None or not (enclosing_calls & self._VALIDATORS):
            yield context.violation(
                self.name,
                call,
                f"{callee}(validated=True) in a function that never validates the "
                "index; call validate_index/validate_edge_index or a graph builder, "
                "or waive with a justification",
            )


class BackendPrimitiveRule(LintRule):
    """Kernel primitives (``reduceat`` / ufunc ``.at``) live in ``repro.backends``."""

    name = "backend-primitive"
    description = (
        "reduceat / ufunc .at calls outside repro.backends bypass compute-backend "
        "dispatch; route through repro.backends.active_backend()"
    )

    #: Ufunc receivers whose unbuffered ``.at`` form is a scatter primitive.
    _UFUNC_NAMES = {"add", "maximum", "minimum", "subtract", "multiply", "divide", "reducer"}
    _EXEMPT_PREFIX = "repro.backends"

    def check(self, context: LintContext) -> Iterator[LintViolation]:
        if context.module == self._EXEMPT_PREFIX or context.module.startswith(
            self._EXEMPT_PREFIX + "."
        ):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            attribute = node.func.attr
            if attribute == "reduceat":
                chain = _attribute_chain(node.func) or "<expr>.reduceat"
                yield context.violation(
                    self.name,
                    node,
                    f"{chain} is a segment-reduction primitive; call "
                    "active_backend().segment_reduce so alternative backends apply",
                )
            elif attribute == "at" and self._is_ufunc_receiver(node.func.value):
                chain = _attribute_chain(node.func) or "<expr>.at"
                yield context.violation(
                    self.name,
                    node,
                    f"{chain} is an unbuffered scatter primitive; call "
                    "active_backend().scatter_add/scatter_extreme so alternative backends apply",
                )

    def _is_ufunc_receiver(self, receiver: ast.AST) -> bool:
        chain = _attribute_chain(receiver)
        if not chain:
            return False
        parts = chain.split(".")
        if parts[0] in ("np", "numpy"):
            return True
        return parts[-1] in self._UFUNC_NAMES


#: Default rule set, in reporting order.
ALL_RULES: tuple[type[LintRule], ...] = (
    DtypeLiteralRule,
    RngDisciplineRule,
    ObsMetricNamingRule,
    LazyExportSyncRule,
    UnvalidatedIndexRule,
    BackendPrimitiveRule,
)
