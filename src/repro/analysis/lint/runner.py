"""Lint runner: file discovery, rule dispatch and report formatting."""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from repro.analysis.lint.base import LintContext, LintRule, LintViolation
from repro.analysis.lint.rules import ALL_RULES

__all__ = ["default_lint_root", "iter_python_files", "lint_paths", "format_violations"]


def default_lint_root() -> pathlib.Path:
    """The ``repro`` package directory (the default lint scope)."""
    return pathlib.Path(__file__).resolve().parents[2]


def iter_python_files(paths: Iterable[pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` file list."""
    files: set[pathlib.Path] = set()
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise ValueError(f"not a Python file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: Sequence[pathlib.Path | str] | None = None,
    rules: Sequence[LintRule] | None = None,
    root: pathlib.Path | None = None,
) -> list[LintViolation]:
    """Lint ``paths`` (default: the installed ``repro`` package) with ``rules``.

    Args:
        paths: Files and/or directories to lint.
        rules: Rule instances to apply (default: one of each in
            :data:`~repro.analysis.lint.rules.ALL_RULES`).
        root: Source root used for module-name resolution; defaults to the
            ``repro`` package directory.

    Returns:
        Violations sorted by (path, line, rule).  Unparseable files are
        reported as a violation of the pseudo-rule ``syntax-error`` rather
        than raising, so one broken file cannot hide findings in others.
    """
    root = root or default_lint_root()
    active = list(rules) if rules is not None else [rule() for rule in ALL_RULES]
    files = iter_python_files([pathlib.Path(p) for p in paths] if paths else [root])
    violations: list[LintViolation] = []
    for path in files:
        try:
            context = LintContext.for_file(path, root)
        except SyntaxError as error:
            violations.append(
                LintViolation(
                    rule="syntax-error",
                    path=str(path),
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"cannot parse file: {error.msg}",
                )
            )
            continue
        for rule in active:
            violations.extend(rule.run(context))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def format_violations(violations: Sequence[LintViolation]) -> str:
    """Render violations one per line plus a summary count."""
    if not violations:
        return "no lint violations"
    lines = [violation.format() for violation in violations]
    lines.append(f"{len(violations)} violation(s)")
    return "\n".join(lines)
