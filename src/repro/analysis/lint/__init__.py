"""Repo-invariant AST linter (``repro lint``).

See :mod:`repro.analysis.lint.rules` for the invariant catalogue and
:mod:`repro.analysis.lint.base` for the rule/waiver framework.
"""

from repro.analysis.lint.base import LintContext, LintRule, LintViolation, parse_waivers
from repro.analysis.lint.rules import (
    ALL_RULES,
    BackendPrimitiveRule,
    DtypeLiteralRule,
    LazyExportSyncRule,
    ObsMetricNamingRule,
    RngDisciplineRule,
    UnvalidatedIndexRule,
)
from repro.analysis.lint.runner import (
    default_lint_root,
    format_violations,
    iter_python_files,
    lint_paths,
)

__all__ = [
    "LintContext",
    "LintRule",
    "LintViolation",
    "parse_waivers",
    "ALL_RULES",
    "BackendPrimitiveRule",
    "DtypeLiteralRule",
    "LazyExportSyncRule",
    "ObsMetricNamingRule",
    "RngDisciplineRule",
    "UnvalidatedIndexRule",
    "default_lint_root",
    "format_violations",
    "iter_python_files",
    "lint_paths",
]
