"""Symbolic shape/dtype propagation over architecture genotypes.

The abstract interpreter mirrors the execution semantics of
:meth:`repro.nas.architecture.Architecture.effective_ops` — the single
source of truth both the supernet and :class:`~repro.nas.derived.DerivedModel`
execute — but works on *shapes only*: a point cloud is the symbolic tensor
``(N, C)`` with ``N`` points and ``C`` feature channels, an edge set is
``(N * k_eff, M)`` messages, and every operation is a transfer function on
``C``.  Running it costs microseconds, so evolutionary search and the
serving front end can reject malformed candidates without paying for a
forward pass or a predictor query.

The distilled result is a :class:`StaticSignature`: everything the serving
engine needs to validate a request against a deployed model in O(1) —
expected feature width, minimum cloud size (KNN sampling cannot build a
self-loop-free graph over a single point), classifier width and the compute
dtype the deployment was created under.  Signatures serialise to plain
dictionaries so they survive :class:`~repro.serving.registry.ModelRegistry`
round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.defaults import DEFAULTS
from repro.graph.message import message_dim
from repro.nas.architecture import Architecture
from repro.nn.dtype import get_default_dtype

__all__ = ["OpShape", "StaticSignature", "trace_architecture", "infer_signature"]

#: Signature serialisation format tag (bump on incompatible changes).
SIGNATURE_FORMAT = "repro.analysis.signature/v1"


@dataclass(frozen=True)
class OpShape:
    """Shape transfer of one effective operation.

    ``in_dim``/``out_dim`` are the feature widths entering and leaving the
    operation; node count ``N`` and neighbourhood size ``k`` stay symbolic
    (every operation in the space is pointwise in ``N``).
    """

    position: int
    kind: str  # 'sample' | 'aggregate' | 'combine' | 'connect_skip'
    in_dim: int
    out_dim: int
    detail: str = ""

    def describe(self) -> str:
        """Human-readable transfer, e.g. ``pos3 aggregate(max/target_rel): (N, 3) -> (N, 6)``."""
        label = f"{self.kind}({self.detail})" if self.detail else self.kind
        return f"pos{self.position} {label}: (N, {self.in_dim}) -> (N, {self.out_dim})"


@dataclass(frozen=True)
class StaticSignature:
    """Statically inferred I/O contract of a deployed architecture.

    Attributes:
        input_dim: Expected per-point feature width of a request cloud.
        output_dim: Feature width entering the classifier head.
        num_classes: Logit width of the classifier.
        k: Neighbourhood size the model samples with.
        embed_dim: Classifier-head embedding width.
        min_points: Smallest cloud the model can execute (2 when any
            sample op builds a KNN graph, else 1).
        uses_knn: Whether any effective sample op is KNN-based.
        uses_random: Whether any effective sample op is random sampling.
        num_aggregates: Message-passing rounds actually executed.
        dtype: Compute dtype policy at deployment time (e.g. ``"float32"``).
        op_shapes: The per-op shape trace (informational; not serialised
            field-by-field beyond its rendered form).
    """

    input_dim: int
    output_dim: int
    num_classes: int
    k: int
    embed_dim: int
    min_points: int
    uses_knn: bool
    uses_random: bool
    num_aggregates: int
    dtype: str
    op_shapes: tuple[OpShape, ...] = field(default=(), compare=False)

    def validate_request(self, num_points: int, feature_dim: int) -> list[str]:
        """O(1) request admission check against this signature.

        Returns a list of human-readable problems (empty when the request
        is servable).
        """
        problems: list[str] = []
        if feature_dim != self.input_dim:
            problems.append(
                f"expected {self.input_dim}-D point features, got {feature_dim}-D"
            )
        if num_points < self.min_points:
            reason = " (KNN sampling needs a neighbour per point)" if self.uses_knn else ""
            problems.append(
                f"cloud has {num_points} point(s) but the model requires at least "
                f"{self.min_points}{reason}"
            )
        return problems

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible form (used in registry deployment metadata)."""
        return {
            "format": SIGNATURE_FORMAT,
            "input_dim": self.input_dim,
            "output_dim": self.output_dim,
            "num_classes": self.num_classes,
            "k": self.k,
            "embed_dim": self.embed_dim,
            "min_points": self.min_points,
            "uses_knn": self.uses_knn,
            "uses_random": self.uses_random,
            "num_aggregates": self.num_aggregates,
            "dtype": self.dtype,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "StaticSignature":
        """Rebuild a signature serialised with :meth:`to_dict`."""
        if data.get("format") != SIGNATURE_FORMAT:
            raise ValueError(f"unrecognised signature format {data.get('format')!r}")
        return cls(
            input_dim=int(data["input_dim"]),  # type: ignore[call-overload]
            output_dim=int(data["output_dim"]),  # type: ignore[call-overload]
            num_classes=int(data["num_classes"]),  # type: ignore[call-overload]
            k=int(data["k"]),  # type: ignore[call-overload]
            embed_dim=int(data["embed_dim"]),  # type: ignore[call-overload]
            min_points=int(data["min_points"]),  # type: ignore[call-overload]
            uses_knn=bool(data["uses_knn"]),
            uses_random=bool(data["uses_random"]),
            num_aggregates=int(data["num_aggregates"]),  # type: ignore[call-overload]
            dtype=str(data["dtype"]),
        )

    def describe(self) -> str:
        """Multi-line human-readable rendering (used by ``repro check``)."""
        lines = [
            f"input   : (N >= {self.min_points}, {self.input_dim}) [{self.dtype}]",
            f"features: (N, {self.output_dim}) after {self.num_aggregates} aggregate(s)",
            f"logits  : (B, {self.num_classes})  k={self.k}  embed_dim={self.embed_dim}",
        ]
        if self.op_shapes:
            lines.append("trace   :")
            lines.extend(f"  {op.describe()}" for op in self.op_shapes)
        return "\n".join(lines)


def trace_architecture(architecture: Architecture) -> list[OpShape]:
    """Propagate symbolic shapes through the architecture's effective ops.

    Mirrors :meth:`Architecture.effective_ops` exactly (it *is* driven by
    it), re-deriving each output width from the half's function set so a
    genotype whose cached ``EffectiveOp`` dims were tampered with is caught
    as a channel mismatch by :func:`repro.analysis.validate.validate_architecture`.
    """
    shapes: list[OpShape] = []
    for op in architecture.effective_ops():
        if op.kind == "sample":
            detail = op.sample_method
            out_dim = op.in_dim
        elif op.kind == "aggregate":
            detail = f"{op.aggregator}/{op.message_type}"
            out_dim = message_dim(op.message_type, op.in_dim)
        elif op.kind == "combine":
            detail = str(op.combine_dim)
            out_dim = op.combine_dim
        elif op.kind == "connect_skip":
            detail = "skip"
            out_dim = op.in_dim + architecture.input_dim
        else:  # pragma: no cover - effective ops are exhaustive
            raise ValueError(f"unhandled effective op kind '{op.kind}'")
        shapes.append(
            OpShape(position=op.position, kind=op.kind, in_dim=op.in_dim, out_dim=out_dim, detail=detail)
        )
    return shapes


def infer_signature(
    architecture: Architecture,
    num_classes: int,
    k: int | None = None,
    embed_dim: int | None = None,
) -> StaticSignature:
    """Infer the :class:`StaticSignature` of a deployment of ``architecture``.

    Args:
        architecture: The genotype being deployed.
        num_classes: Classifier output classes.
        k: Neighbourhood size (defaults to the shared inference defaults).
        embed_dim: Classifier-head embedding width (same default source).
    """
    scenario = DEFAULTS.resolve(k=k, embed_dim=embed_dim)
    shapes = trace_architecture(architecture)
    sample_methods = {
        op.detail for op in shapes if op.kind == "sample"
    }
    uses_knn = "knn" in sample_methods
    return StaticSignature(
        input_dim=architecture.input_dim,
        output_dim=shapes[-1].out_dim if shapes else architecture.input_dim,
        num_classes=num_classes,
        k=scenario.k,
        embed_dim=scenario.embed_dim,
        min_points=2 if uses_knn else 1,
        uses_knn=uses_knn,
        uses_random="random" in sample_methods,
        num_aggregates=sum(1 for op in shapes if op.kind == "aggregate"),
        dtype=str(get_default_dtype()),
        op_shapes=tuple(shapes),
    )
