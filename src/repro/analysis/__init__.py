"""Static analysis: architecture shape checking and repo-invariant linting.

Two cooperating passes:

* :mod:`repro.analysis.shapes` / :mod:`repro.analysis.validate` — a
  symbolic shape/dtype abstract interpreter over design-space genotypes.
  It rejects malformed candidates (channel mismatches, out-of-space ops,
  degenerate ``k`` vs. point count) *without running them*, distils each
  architecture into a :class:`StaticSignature` used for O(1) request
  validation in serving, and backs the ``repro check`` CLI.
* :mod:`repro.analysis.lint` — an AST rule framework enforcing the repo's
  cross-cutting invariants (dtype policy, RNG discipline, obs naming,
  lazy-export sync, validated-index fast paths) behind ``repro lint``.
"""

from repro.analysis.shapes import OpShape, StaticSignature, infer_signature, trace_architecture
from repro.analysis.validate import (
    Diagnostic,
    ValidationReport,
    check_model_consistency,
    validate_architecture,
    validate_genotype,
)

__all__ = [
    "OpShape",
    "StaticSignature",
    "infer_signature",
    "trace_architecture",
    "Diagnostic",
    "ValidationReport",
    "check_model_consistency",
    "validate_architecture",
    "validate_genotype",
]
