"""Static genotype/deployment validation with structured diagnostics.

:func:`validate_genotype` accepts either a serialised genotype dictionary
or an :class:`~repro.nas.architecture.Architecture` and produces a
:class:`ValidationReport`: a list of :class:`Diagnostic` records plus the
inferred :class:`~repro.analysis.shapes.StaticSignature` when the genotype
is structurally sound.  The checks are calibrated against the *actual*
runtime semantics of :class:`~repro.nas.derived.DerivedModel` — every
``error`` diagnostic corresponds to a construction or forward pass that
provably raises, and anything the runtime tolerates (e.g. ``k`` larger
than the cloud, which the KNN builder clamps) is at most a ``warning``.
That calibration is what lets evolutionary search reject candidates
pre-scoring without ever discarding a genotype that would actually run
(no false rejects) and lets the serving layer refuse requests that would
fail deep inside a batch (no false accepts).

Consumers:

* :class:`~repro.nas.evolution.EvolutionarySearch` — ``validate=`` hook
  rejecting invalid mutants before fitness scoring.
* :meth:`ModelRegistry.register <repro.serving.registry.ModelRegistry.register>`
  / :meth:`Workspace.deploy <repro.workspace.pipeline.Workspace.deploy>` —
  refuse inconsistent deployments.
* ``repro check`` — the CLI front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.defaults import DEFAULTS
from repro.nas.architecture import Architecture
from repro.nas.ops import FUNCTION_FIELDS, OperationType
from repro.analysis.shapes import StaticSignature, infer_signature

__all__ = [
    "Diagnostic",
    "ValidationReport",
    "validate_genotype",
    "validate_architecture",
    "check_model_consistency",
]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static checker.

    Attributes:
        severity: ``"error"`` (the genotype/scenario cannot execute) or
            ``"warning"`` (it executes, but something is degenerate).
        code: Stable machine-readable identifier, e.g. ``knn-single-point``.
        message: Human-readable explanation.
        position: Supernet position the finding refers to (-1 when global).
    """

    severity: str
    code: str
    message: str
    position: int = -1

    def format(self) -> str:
        where = f" [pos {self.position}]" if self.position >= 0 else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of statically checking one genotype under a scenario."""

    diagnostics: tuple[Diagnostic, ...] = ()
    signature: StaticSignature | None = None
    architecture: Architecture | None = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        """True when no ``error``-severity diagnostic was produced."""
        return all(diag.severity != "error" for diag in self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    def format(self) -> str:
        """Render all diagnostics, one per line (empty string when clean)."""
        return "\n".join(diag.format() for diag in self.diagnostics)


def _error(code: str, message: str, position: int = -1) -> Diagnostic:
    return Diagnostic("error", code, message, position)


def _warning(code: str, message: str, position: int = -1) -> Diagnostic:
    return Diagnostic("warning", code, message, position)


def _check_structure(data: dict[str, object]) -> list[Diagnostic]:
    """Structural checks on a genotype dict, mirroring ``Architecture.from_dict``.

    Every condition flagged here as an error raises in ``from_dict`` (or in
    the ``FunctionSet``/``Architecture`` constructors it calls); keeping
    the two in lockstep is covered by the agreement property test.
    """
    diags: list[Diagnostic] = []
    for key in ("operations", "upper_functions", "lower_functions"):
        if key not in data:
            diags.append(_error("missing-field", f"genotype dict is missing '{key}'"))
    if diags:
        return diags

    operations = data["operations"]
    if not isinstance(operations, (list, tuple)):
        return [_error("bad-operations", "'operations' must be a list of operation values")]
    if not operations:
        return [_error("empty-operations", "an architecture needs at least one position")]
    known_ops = {op.value for op in OperationType}
    for position, op in enumerate(operations):
        if op not in known_ops and not isinstance(op, OperationType):
            diags.append(
                _error(
                    "unknown-operation",
                    f"'{op}' is not in the design space {sorted(known_ops)}",
                    position,
                )
            )

    for half in ("upper_functions", "lower_functions"):
        functions = data[half]
        if not isinstance(functions, dict):
            diags.append(_error("bad-functions", f"'{half}' must be a function-set dict"))
            continue
        for name, candidates in FUNCTION_FIELDS.items():
            if name not in functions:
                diags.append(_error("missing-function", f"'{half}' is missing '{name}'"))
                continue
            value = functions[name]
            if name == "combine_dim":
                try:
                    value = int(value)  # type: ignore[call-overload]
                except (TypeError, ValueError):
                    value = None
            else:
                value = str(value)
            if value not in candidates:
                diags.append(
                    _error(
                        "out-of-space-function",
                        f"{half}.{name}={functions[name]!r} is not one of {candidates}",
                    )
                )

    input_dim = data.get("input_dim", 3)
    try:
        input_dim = int(input_dim)  # type: ignore[call-overload]
    except (TypeError, ValueError):
        diags.append(_error("bad-input-dim", f"input_dim={data.get('input_dim')!r} is not an integer"))
    else:
        if input_dim <= 0:
            diags.append(_error("bad-input-dim", f"input_dim must be positive, got {input_dim}"))
    return diags


def _check_scenario(
    architecture: Architecture,
    num_points: int | None,
    k: int,
    num_classes: int,
    embed_dim: int,
) -> list[Diagnostic]:
    """Deployment-scenario checks against the resolved effective ops."""
    diags: list[Diagnostic] = []
    if k <= 0:
        diags.append(_error("bad-k", f"neighbourhood size k must be positive, got {k}"))
    if num_points is not None and num_points <= 0:
        diags.append(_error("bad-num-points", f"num_points must be positive, got {num_points}"))
    if num_classes <= 1:
        diags.append(_error("bad-num-classes", f"num_classes must be > 1, got {num_classes}"))
    if embed_dim <= 1:
        # The classification head builds hidden layers (embed_dim, embed_dim // 2):
        # embed_dim == 1 yields a zero-width Linear, which raises at construction.
        diags.append(
            _error("bad-embed-dim", f"embed_dim must be > 1 (head hidden width embed_dim // 2), got {embed_dim}")
        )
    if diags:
        return diags

    effective = architecture.effective_ops()
    samples = [op for op in effective if op.kind == "sample"]
    aggregates = [op for op in effective if op.kind == "aggregate"]

    if num_points is not None:
        for op in samples:
            if op.sample_method == "knn" and num_points < 2:
                diags.append(
                    _error(
                        "knn-single-point",
                        "KNN sampling cannot build a self-loop-free neighbour list "
                        f"over a single point (num_points={num_points})",
                        op.position,
                    )
                )
        if samples and k >= num_points and num_points >= 2:
            # knn_indices / random_graph clamp k to num_points - 1: legal, but
            # the deployed graph is denser than the searched scenario assumed.
            diags.append(
                _warning(
                    "k-clamped",
                    f"k={k} >= num_points={num_points}; graph builders clamp to "
                    f"k={num_points - 1}, so profiled latency overestimates this deployment",
                )
            )

    if not aggregates:
        diags.append(
            _warning(
                "no-aggregate",
                "architecture performs no message passing (no effective aggregate op); "
                "it degenerates to a pointwise MLP",
            )
        )

    # Dead trailing samples: present in the genotype, dropped during resolution.
    executed_sample_positions = {op.position for op in samples}
    for position, operation in enumerate(architecture.operations):
        if operation is OperationType.SAMPLE and position not in executed_sample_positions:
            later = [op.position for op in effective if op.position >= position and op.kind == "sample"]
            if not later:
                diags.append(
                    _warning(
                        "dead-sample",
                        "sample op is never followed by an aggregate; the graph it "
                        "builds is discarded",
                        position,
                    )
                )
    return diags


def validate_architecture(
    architecture: Architecture,
    *,
    num_points: int | None = None,
    k: int | None = None,
    num_classes: int | None = None,
    embed_dim: int | None = None,
) -> ValidationReport:
    """Statically validate an already-constructed :class:`Architecture`.

    Scenario parameters default to the shared inference defaults; pass
    ``num_points`` to additionally check graph-construction feasibility for
    a concrete cloud size (leave ``None`` to keep ``N`` symbolic).
    """
    scenario = DEFAULTS.resolve(k=k, num_classes=num_classes, embed_dim=embed_dim)
    diags = _check_scenario(
        architecture, num_points, scenario.k, scenario.num_classes, scenario.embed_dim
    )
    signature: StaticSignature | None = None
    if all(d.severity != "error" for d in diags):
        signature = infer_signature(
            architecture, scenario.num_classes, k=scenario.k, embed_dim=scenario.embed_dim
        )
    return ValidationReport(diagnostics=tuple(diags), signature=signature, architecture=architecture)


def validate_genotype(
    genotype: dict[str, object] | Architecture,
    *,
    num_points: int | None = None,
    k: int | None = None,
    num_classes: int | None = None,
    embed_dim: int | None = None,
) -> ValidationReport:
    """Statically validate a genotype dict (or architecture) end to end.

    Structural problems (unknown operations, out-of-space function values,
    malformed fields) are reported without constructing the architecture;
    a structurally sound genotype is then checked against the deployment
    scenario exactly like :func:`validate_architecture`.
    """
    if isinstance(genotype, Architecture):
        return validate_architecture(
            genotype, num_points=num_points, k=k, num_classes=num_classes, embed_dim=embed_dim
        )
    structural = _check_structure(genotype)
    if any(d.severity == "error" for d in structural):
        return ValidationReport(diagnostics=tuple(structural))
    architecture = Architecture.from_dict(genotype)
    report = validate_architecture(
        architecture, num_points=num_points, k=k, num_classes=num_classes, embed_dim=embed_dim
    )
    return ValidationReport(
        diagnostics=tuple(structural) + report.diagnostics,
        signature=report.signature,
        architecture=architecture,
    )


def check_model_consistency(
    model: object,
    architecture: Architecture,
    num_classes: int,
    k: int,
) -> list[Diagnostic]:
    """Cross-check an instantiated model against its claimed genotype.

    Verifies the facts the static signature asserts: the model's
    neighbourhood size, each combine projection's in/out widths against the
    traced shapes, and the classifier head's input width and class count.
    Used by the registry to refuse deployments whose executable disagrees
    with the architecture they are registered under (e.g. a model built
    from a different genotype, or trained weights loaded into the wrong
    skeleton).
    """
    diags: list[Diagnostic] = []
    model_k = getattr(model, "k", None)
    if model_k is not None and model_k != k:
        diags.append(
            _error("k-mismatch", f"model was built with k={model_k} but is deployed with k={k}")
        )
    combines = getattr(model, "combines", None)
    if isinstance(combines, dict):
        # DerivedModel keys its combine layers by *effective-op index*.
        traced = {
            index: op
            for index, op in enumerate(architecture.effective_ops())
            if op.kind == "combine"
        }
        if set(combines) != set(traced):
            diags.append(
                _error(
                    "combine-mismatch",
                    f"model has combine layers at effective ops {sorted(combines)} but the "
                    f"architecture traces combines at {sorted(traced)}",
                )
            )
        else:
            for index, op in traced.items():
                layer = combines[index]
                in_features = getattr(layer, "in_features", op.in_dim)
                out_features = getattr(layer, "out_features", op.out_dim)
                if (in_features, out_features) != (op.in_dim, op.out_dim):
                    diags.append(
                        _error(
                            "channel-mismatch",
                            f"combine layer is ({in_features} -> {out_features}) but the "
                            f"traced shape is ({op.in_dim} -> {op.out_dim})",
                            op.position,
                        )
                    )
    head = getattr(model, "head", None)
    if head is not None:
        head_in = getattr(head, "in_dim", None)
        expected_in = architecture.output_dim()
        if head_in is not None and head_in != expected_in:
            diags.append(
                _error(
                    "head-mismatch",
                    f"classifier head consumes {head_in}-D features but the architecture "
                    f"produces {expected_in}-D",
                )
            )
        head_classes = getattr(head, "num_classes", None)
        if head_classes is not None and head_classes != num_classes:
            diags.append(
                _error(
                    "classes-mismatch",
                    f"classifier head has {head_classes} classes but the deployment "
                    f"declares {num_classes}",
                )
            )
    return diags
