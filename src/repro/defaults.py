"""Shared inference-scenario defaults (the lowest layer of the pipeline).

Historically every high-level helper re-spread its own copy of the
deployment scenario — ``measure_latency``/``profile_architecture`` assumed
``k=20`` while ``build_model``/``deploy_architecture`` assumed ``k=10`` —
so the latency a search optimised for was not the latency the deployed
model ran with.  :class:`InferenceDefaults` resolves the scenario once and
every consumer draws from it: the low-level evaluator/serving defaults
import this module directly, while pipeline users normally reach it as
:class:`repro.workspace.InferenceDefaults`.

This module lives below :mod:`repro.nas`, :mod:`repro.serving` and
:mod:`repro.workspace` on purpose: it has no repro imports, so any layer
can depend on it without cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["InferenceDefaults", "DEFAULTS"]


@dataclass(frozen=True)
class InferenceDefaults:
    """Deployment-scenario constants shared by every pipeline stage.

    Attributes:
        num_points: Points per input cloud in the deployment scenario.
        k: KNN neighbourhood size (profiling, search and serving alike).
        num_classes: Classifier classes of the modelled deployment workload.
        embed_dim: Classifier-head embedding width of derived models.
        seed: Default RNG seed for training/measurement stages.
    """

    num_points: int = 1024
    k: int = 20
    num_classes: int = 40
    embed_dim: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_points <= 0 or self.k <= 0:
            raise ValueError("num_points and k must be positive")
        if self.num_classes <= 1:
            raise ValueError("num_classes must be > 1")
        if self.embed_dim <= 0:
            raise ValueError("embed_dim must be positive")

    def resolve(self, **overrides: object) -> "InferenceDefaults":
        """Return a copy with the non-``None`` entries of ``overrides`` applied."""
        changes = {key: value for key, value in overrides.items() if value is not None}
        return dataclasses.replace(self, **changes) if changes else self

    def key_dict(self) -> dict[str, object]:
        """JSON-compatible form used in artifact-store cache keys."""
        return dataclasses.asdict(self)


#: The package-wide defaults (paper deployment scenario: 1024 points, k=20).
DEFAULTS = InferenceDefaults()
