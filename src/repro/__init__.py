"""HGNAS reproduction: hardware-aware graph neural architecture search.

This package reproduces the system described in *"Hardware-Aware Graph
Neural Network Automated Design for Edge Computing Platforms"* (HGNAS,
DAC 2023) on top of a pure-numpy substrate:

* :mod:`repro.nn` -- a small reverse-mode autograd engine with the layers,
  optimisers and losses needed to train GNNs.
* :mod:`repro.graph` -- point-cloud graph operations (KNN graphs, scatter
  aggregation, message construction).
* :mod:`repro.data` -- a synthetic ModelNet-style point-cloud classification
  dataset.
* :mod:`repro.models` -- DGCNN and the manually optimised baselines.
* :mod:`repro.hardware` -- analytical edge-device latency/memory models
  standing in for real RTX3080 / i7-8700K / Jetson TX2 / Raspberry Pi
  measurements.
* :mod:`repro.nas` -- the fine-grained design space, one-shot supernet and
  multi-stage hierarchical evolutionary search (the paper's contribution).
* :mod:`repro.predictor` -- the GNN-based hardware performance predictor.
* :mod:`repro.experiments` -- drivers that regenerate every table and figure
  of the paper's evaluation section.

The most convenient entry points live in :mod:`repro.api`.
"""

from repro.version import __version__

__all__ = ["__version__"]
