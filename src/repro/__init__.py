"""HGNAS reproduction: hardware-aware graph neural architecture search.

This package reproduces the system described in *"Hardware-Aware Graph
Neural Network Automated Design for Edge Computing Platforms"* (HGNAS,
DAC 2023) on top of a pure-numpy substrate:

* :mod:`repro.backends` -- the pluggable compute-backend registry: kernel
  primitives (segment reduction, scatter, gather, matmul) dispatch through
  the active :class:`~repro.backends.ComputeBackend` (``use_backend`` scopes
  it; ``repro backends`` lists them).
* :mod:`repro.nn` -- a small reverse-mode autograd engine with the layers,
  optimisers and losses needed to train GNNs; computes in float32 by
  default under the :mod:`repro.nn.dtype` policy (``default_dtype`` opts a
  scope into float64 for bit-exact reproduction).
* :mod:`repro.graph` -- point-cloud graph operations (KNN graphs, scatter
  aggregation, message construction).
* :mod:`repro.data` -- a synthetic ModelNet-style point-cloud classification
  dataset.
* :mod:`repro.models` -- DGCNN and the manually optimised baselines.
* :mod:`repro.hardware` -- analytical edge-device latency/memory models
  standing in for real RTX3080 / i7-8700K / Jetson TX2 / Raspberry Pi
  measurements.
* :mod:`repro.nas` -- the fine-grained design space, one-shot supernet and
  multi-stage hierarchical evolutionary search (the paper's contribution).
* :mod:`repro.predictor` -- the GNN-based hardware performance predictor.
* :mod:`repro.serving` -- the batched, cached inference-serving engine that
  deploys searched architectures behind a request API.
* :mod:`repro.obs` -- unified observability: nested span tracing, mergeable
  counters/gauges/histograms, and exporters into the artifact store
  (``repro <stage> --trace`` / ``repro report``).
* :mod:`repro.analysis` -- static analysis: the symbolic shape/dtype
  checker over genotypes (``repro check``, pre-scoring candidate rejection
  in evolution, O(1) serving request validation) and the repo-invariant
  AST linter (``repro lint``).
* :mod:`repro.workspace` -- the stateful pipeline entry point
  (:class:`~repro.workspace.Workspace`) with its content-addressed artifact
  store and the shared :class:`~repro.workspace.InferenceDefaults`.
* :mod:`repro.cli` -- the unified ``repro`` command line
  (``repro profile|predict|search|serve|devices``).
* :mod:`repro.experiments` -- drivers that regenerate every table and figure
  of the paper's evaluation section.

The high-level helpers of :mod:`repro.api`, the Workspace types and the
device/evaluator registry hooks are re-exported lazily from the package
root, so ``import repro; repro.Workspace(...)`` works without paying the
import cost of the subsystems you do not use.
"""

from importlib import import_module

from repro.version import __version__

#: Lazily re-exported high-level names -> providing module.
_LAZY_EXPORTS = {
    "profile_architecture": "repro.api",
    "measure_latency": "repro.api",
    "train_latency_predictor": "repro.api",
    "search_architecture": "repro.api",
    "build_model": "repro.api",
    "deploy_architecture": "repro.api",
    "serve": "repro.api",
    "ServeReport": "repro.api",
    "PredictorBundle": "repro.api",
    "InferenceEngine": "repro.serving",
    "EngineConfig": "repro.serving",
    "ModelRegistry": "repro.serving",
    "DeployedModel": "repro.serving",
    "Workspace": "repro.workspace",
    "InferenceDefaults": "repro.workspace",
    "ArtifactStore": "repro.workspace",
    "validate_genotype": "repro.analysis",
    "validate_architecture": "repro.analysis",
    "infer_signature": "repro.analysis",
    "StaticSignature": "repro.analysis",
    "ValidationReport": "repro.analysis",
    "lint_paths": "repro.analysis.lint",
    "get_default_dtype": "repro.nn.dtype",
    "set_default_dtype": "repro.nn.dtype",
    "default_dtype": "repro.nn.dtype",
    "use_fused_kernels": "repro.graph.fused",
    "register_backend": "repro.backends",
    "unregister_backend": "repro.backends",
    "get_backend": "repro.backends",
    "list_backends": "repro.backends",
    "active_backend": "repro.backends",
    "use_backend": "repro.backends",
    "backend_status": "repro.backends",
    "ComputeBackend": "repro.backends",
    "trace_span": "repro.obs",
    "get_tracer": "repro.obs",
    "get_metrics": "repro.obs",
    "Tracer": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "merge_snapshots": "repro.obs",
    "reset_observability": "repro.obs",
    "save_run": "repro.obs",
    "load_run": "repro.obs",
    "register_device": "repro.hardware.device",
    "unregister_device": "repro.hardware.device",
    "get_device": "repro.hardware.device",
    "list_devices": "repro.hardware.device",
    "FaultPlan": "repro.faults",
    "FaultSpec": "repro.faults",
    "use_faults": "repro.faults",
    "fault_point": "repro.faults",
    "reset_faults": "repro.faults",
    "InjectedFault": "repro.faults",
    "register_latency_evaluator": "repro.nas.latency_eval",
    "unregister_latency_evaluator": "repro.nas.latency_eval",
    "list_latency_evaluators": "repro.nas.latency_eval",
    "make_latency_evaluator": "repro.nas.latency_eval",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute '{name}'")
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache so subsequent lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
