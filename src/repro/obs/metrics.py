"""Mergeable process metrics: counters, gauges and fixed-bucket histograms.

Every metric produces a JSON-serializable :meth:`snapshot` and can
:meth:`merge` another snapshot of the same shape back in, which is the
cross-process aggregation primitive the multi-worker serving plan needs:
each worker serializes its registry snapshot, the frontend merges them into
one aggregate, and merged counts are exact because counter values and
histogram bucket counts combine by addition (merge is associative and
commutative over the counts).

Metric names follow the ``layer.component.name`` convention, e.g.
``graph.fused.dispatch``, ``nas.evolution.generations``,
``serving.request.latency_ms``.

A process-global default registry (:func:`get_metrics`) lets hot paths
record without threading a registry through every call; instrumentation
goes through :meth:`MetricsRegistry.count` / :meth:`~MetricsRegistry.observe`
so a disabled registry costs one attribute check.
"""

from __future__ import annotations

import bisect
import contextlib
from collections import deque
from typing import Callable, Iterator, Mapping, Sequence, TypeVar, cast

import numpy as np

from repro.nn.dtype import WIDE_DTYPE

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "merge_snapshots",
]

#: Default histogram buckets (upper bounds); a decade-spanning latency scale.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)

_GAUGE_AGGREGATES = ("max", "min", "sum", "last")

#: The concrete metric type a registry get-or-create call resolves to.
M = TypeVar("M", bound="Counter | Gauge | Histogram")


class Counter:
    """A monotonically increasing count; merges by addition."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def merge(self, snapshot: Mapping) -> None:
        _check_type(self.name, snapshot, "counter")
        self.value += snapshot["value"]

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value with a declared cross-process aggregate.

    ``aggregate`` defines what a merge of two snapshots means: ``max``
    (peaks, the default), ``min``, ``sum``, or ``last`` (the most recently
    merged updated value wins — only meaningful when merge order encodes
    recency).
    """

    __slots__ = ("name", "value", "updates", "aggregate")

    def __init__(self, name: str, aggregate: str = "max") -> None:
        if aggregate not in _GAUGE_AGGREGATES:
            raise ValueError(f"unknown gauge aggregate '{aggregate}', expected one of {_GAUGE_AGGREGATES}")
        self.name = name
        self.value: float | None = None
        self.updates = 0
        self.aggregate = aggregate

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value, "updates": self.updates, "aggregate": self.aggregate}

    def merge(self, snapshot: Mapping) -> None:
        _check_type(self.name, snapshot, "gauge")
        other_value = snapshot["value"]
        other_updates = int(snapshot.get("updates", 0))
        if other_updates:
            if self.value is None:
                self.value = float(other_value)
            elif self.aggregate == "max":
                self.value = max(self.value, float(other_value))
            elif self.aggregate == "min":
                self.value = min(self.value, float(other_value))
            elif self.aggregate == "sum":
                self.value += float(other_value)
            else:  # last: merge order encodes recency
                self.value = float(other_value)
        self.updates += other_updates

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value}, aggregate={self.aggregate!r})"


class Histogram:
    """A fixed-bucket histogram with optional exact rolling window.

    ``buckets`` are inclusive upper bounds; one overflow bucket is appended,
    so ``counts`` has ``len(buckets) + 1`` entries.  Bucket counts, the
    total count and the value sum merge by addition; ``min``/``max`` by the
    respective extreme — all associative, so any merge tree over worker
    snapshots yields the same aggregate.

    A non-zero ``window`` additionally keeps the most recent raw values for
    exact percentiles (rolling-window semantics, as serving telemetry needs);
    merged windows concatenate and truncate to the window size, so merged
    percentiles are exact over the retained values only.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max", "window_size", "window")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, window: int = 0) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.window_size = int(window)
        self.window: deque[float] | None = deque(maxlen=window) if window else None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self.window is not None:
            self.window.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile: exact over the window, else a bucket bound.

        Without a window the estimate is the upper bound of the bucket the
        quantile falls in (the overflow bucket reports the observed ``max``).
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.window:
            return float(np.percentile(np.asarray(self.window, dtype=WIDE_DTYPE), q))
        if not self.count:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                return bound
        return self.max if self.max is not None else self.buckets[-1]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "window_size": self.window_size,
            "window": list(self.window) if self.window is not None else None,
        }

    def merge(self, snapshot: Mapping) -> None:
        _check_type(self.name, snapshot, "histogram")
        bounds = tuple(float(b) for b in snapshot["buckets"])
        if bounds != self.buckets:
            raise ValueError(
                f"cannot merge histogram '{self.name}': bucket bounds differ "
                f"({self.buckets} vs {bounds})"
            )
        self.counts = [a + b for a, b in zip(self.counts, snapshot["counts"])]
        self.count += int(snapshot["count"])
        self.sum += float(snapshot["sum"])
        for extreme, pick in (("min", min), ("max", max)):
            other = snapshot.get(extreme)
            if other is not None:
                mine = getattr(self, extreme)
                setattr(self, extreme, float(other) if mine is None else pick(mine, float(other)))
        other_window = snapshot.get("window")
        if self.window is not None and other_window:
            self.window.extend(float(v) for v in other_window)

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


def _check_type(name: str, snapshot: Mapping, expected: str) -> None:
    actual = snapshot.get("type")
    if actual != expected:
        raise ValueError(f"cannot merge metric '{name}': snapshot type '{actual}' != '{expected}'")


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with mergeable, JSON-serializable snapshots.

    ``counter``/``gauge``/``histogram`` get-or-create (idempotent per name);
    the :meth:`count`/:meth:`observe`/:meth:`set_gauge` conveniences are the
    recording surface for instrumented hot paths and become no-ops when the
    registry is disabled.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -------------------------------------------------------------- #
    # Get-or-create
    # -------------------------------------------------------------- #
    def _get(self, name: str, kind: type[M], factory: Callable[[], M]) -> M:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric '{name}' is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return cast(M, metric)

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, aggregate: str = "max") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, aggregate=aggregate))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, window: int = 0
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets=buckets, window=window))

    # -------------------------------------------------------------- #
    # Recording conveniences (no-ops when disabled)
    # -------------------------------------------------------------- #
    def count(self, name: str, amount: float = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def observe(self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS, window: int = 0) -> None:
        if self.enabled:
            self.histogram(name, buckets=buckets, window=window).observe(value)

    def set_gauge(self, name: str, value: float, aggregate: str = "max") -> None:
        if self.enabled:
            self.gauge(name, aggregate=aggregate).set(value)

    # -------------------------------------------------------------- #
    # Snapshot / merge
    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-serializable state of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def reset(self) -> None:
        """Drop every metric (names and values)."""
        self._metrics.clear()

    def merge(self, other: "MetricsRegistry | Mapping[str, Mapping]") -> "MetricsRegistry":
        """Fold another registry (or a registry snapshot) into this one.

        Metrics unknown to this registry are adopted with the snapshot's
        type, bucket bounds and window size, so merging into a fresh
        registry reconstructs the remote one exactly.
        """
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, metric_snapshot in snapshot.items():
            kind = metric_snapshot.get("type")
            if kind not in _METRIC_TYPES:
                raise ValueError(f"metric '{name}' has unknown snapshot type '{kind}'")
            if kind == "counter":
                target = self.counter(name)
            elif kind == "gauge":
                target = self.gauge(name, aggregate=metric_snapshot.get("aggregate", "max"))
            else:
                target = self.histogram(
                    name,
                    buckets=metric_snapshot["buckets"],
                    window=int(metric_snapshot.get("window_size") or 0),
                )
            target.merge(metric_snapshot)
        return self

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Mapping]) -> "MetricsRegistry":
        """Reconstruct a registry from a :meth:`snapshot`."""
        return cls().merge(snapshot)


def merge_snapshots(*snapshots: Mapping[str, Mapping]) -> dict[str, dict]:
    """Merge registry snapshots (e.g. one per worker) into one aggregate."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global default registry instrumentation records into."""
    return _DEFAULT_REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the default registry (e.g. per test or per CLI run)."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
