"""Exporters for traces and metrics: JSONL dumps, artifact runs, formatters.

Two consumption paths:

* **Machines** — :func:`write_spans_jsonl` / :func:`write_metrics_json`
  write plain files, and :func:`save_run` persists one observability run
  (spans + metrics snapshot) into an
  :class:`~repro.workspace.store.ArtifactStore` under the ``obs`` stage.
  Rooted stores additionally get ``obs/<key>/spans.jsonl`` and
  ``obs/<key>/metrics.json`` next to the artifact's ``meta.json``, so
  external tooling can tail the span stream without parsing artifacts.
* **Humans** — :func:`format_span_tree` renders the nested span tree with
  durations and attributes, :func:`format_metrics` the metric summary, and
  :func:`format_run` a whole persisted run (what ``repro report`` prints).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.tracer import Span, Tracer, get_tracer

__all__ = [
    "OBS_STAGE",
    "span_rows",
    "write_spans_jsonl",
    "write_metrics_json",
    "format_span_tree",
    "format_metrics",
    "format_run",
    "save_run",
    "list_runs",
    "load_run",
]

#: Artifact-store stage name observability runs are persisted under.
OBS_STAGE = "obs"


def span_rows(spans: "Tracer | Iterable[Span | Mapping]") -> list[dict]:
    """Normalise a tracer / span list into JSON-serializable rows."""
    if isinstance(spans, Tracer):
        return spans.snapshot()
    return [span.to_dict() if isinstance(span, Span) else dict(span) for span in spans]


def write_spans_jsonl(path: str | pathlib.Path, spans: "Tracer | Iterable[Span | Mapping]") -> pathlib.Path:
    """Write one JSON object per span (start order) to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = span_rows(spans)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def write_metrics_json(path: str | pathlib.Path, metrics: "MetricsRegistry | Mapping") -> pathlib.Path:
    """Write a registry snapshot as pretty-printed JSON to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else dict(metrics)
    path.write_text(json.dumps(snapshot, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    return path


# ------------------------------------------------------------------ #
# Human-readable formatting
# ------------------------------------------------------------------ #
def _format_attributes(attributes: Mapping) -> str:
    if not attributes:
        return ""
    parts = []
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def format_span_tree(spans: "Tracer | Iterable[Span | Mapping]", time_unit: str = "ms") -> str:
    """Render spans as an indented tree with durations and attributes.

    Orphan spans (parent dropped by the tracer's retention cap) are
    promoted to roots rather than lost.
    """
    rows = span_rows(spans)
    if not rows:
        return "(no spans recorded)"
    scale, unit = (1e3, "ms") if time_unit == "ms" else (1.0, "s")
    by_id = {row["span_id"]: row for row in rows}
    children: dict[object, list[dict]] = {}
    roots: list[dict] = []
    for row in rows:
        parent = row.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(row)
        else:
            roots.append(row)

    lines: list[str] = []

    def render(row: dict, depth: int) -> None:
        duration = row.get("duration") or 0.0
        marker = "" if row.get("status", "ok") == "ok" else f"  !! {row.get('error')}"
        lines.append(
            f"{'  ' * depth}- {row['name']}  {duration * scale:.2f} {unit}"
            f"{_format_attributes(row.get('attributes') or {})}{marker}"
        )
        for child in children.get(row["span_id"], ()):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return "\n".join(lines)


def format_metrics(metrics: "MetricsRegistry | Mapping", percentiles: Sequence[float] = (50.0, 95.0, 99.0)) -> str:
    """Render a metrics snapshot as aligned, name-sorted summary lines."""
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else dict(metrics)
    if not snapshot:
        return "(no metrics recorded)"
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        if kind == "counter":
            value = entry["value"]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{name} = {rendered}")
        elif kind == "gauge":
            value = entry.get("value")
            rendered = "-" if value is None else f"{value:.6g}"
            lines.append(f"{name} = {rendered} ({entry.get('aggregate', 'max')} of {entry.get('updates', 0)} updates)")
        elif kind == "histogram":
            registry = MetricsRegistry.from_snapshot({name: entry})
            histogram = registry.histogram(name, buckets=entry["buckets"])
            stats = " ".join(
                f"p{p:g}={histogram.percentile(p):.4g}" for p in percentiles
            )
            lines.append(
                f"{name}: count={histogram.count} mean={histogram.mean:.4g} "
                f"min={histogram.min if histogram.min is not None else '-'} "
                f"max={histogram.max if histogram.max is not None else '-'} {stats}"
            )
        else:
            lines.append(f"{name}: (unknown metric type '{kind}')")
    return "\n".join(lines)


def format_run(meta: Mapping) -> str:
    """Render one persisted observability run (label, span tree, metrics)."""
    label = meta.get("label", "run")
    created = meta.get("created_at")
    when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created)) if created else "unknown time"
    sections = [
        f"== obs run '{label}' ({when}) ==",
        "-- spans --",
        format_span_tree(meta.get("spans") or []),
        "-- metrics --",
        format_metrics(meta.get("metrics") or {}),
    ]
    return "\n".join(sections)


# ------------------------------------------------------------------ #
# Artifact-store persistence
# ------------------------------------------------------------------ #
def save_run(
    store: Any,
    label: str,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    extra_meta: Mapping | None = None,
) -> str:
    """Persist one observability run into ``store`` under the ``obs`` stage.

    The run captures the tracer's span rows and the registry's metric
    snapshot (defaults: the process-global ones).  Returns the artifact
    key; ``load_run(store)`` with no key loads the most recent run.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    created_at = time.time()
    spans = tracer.snapshot()
    snapshot = metrics.snapshot()
    meta = {
        "label": label,
        "created_at": created_at,
        "pid": os.getpid(),
        "num_spans": len(spans),
        "dropped_spans": tracer.dropped,
        "spans": spans,
        "metrics": snapshot,
    }
    if extra_meta:
        meta.update(extra_meta)
    key = store.key_for(OBS_STAGE, {"label": label, "created_at": created_at, "pid": os.getpid()})
    artifact = store.save(OBS_STAGE, key, meta=meta)
    if artifact.path is not None:
        write_spans_jsonl(artifact.path / "spans.jsonl", spans)
        write_metrics_json(artifact.path / "metrics.json", snapshot)
    return key


def list_runs(store: Any) -> list[tuple[str, dict]]:
    """All persisted runs as ``(key, meta)``, oldest first by ``created_at``."""
    runs = []
    for key in store.keys(OBS_STAGE):
        artifact = store.load(OBS_STAGE, key)
        if artifact is not None:
            runs.append((key, artifact.meta))
    runs.sort(key=lambda item: (item[1].get("created_at") or 0.0, item[0]))
    return runs


def load_run(store: Any, key: str | None = None) -> tuple[str, dict]:
    """Load one run's ``(key, meta)``; the most recent one when ``key`` is None.

    Raises:
        KeyError: When the store holds no (matching) observability run.
    """
    if key is not None:
        artifact = store.load(OBS_STAGE, key)
        if artifact is None:
            raise KeyError(f"no observability run '{key}' in this store")
        return key, artifact.meta
    runs = list_runs(store)
    if not runs:
        raise KeyError("no observability runs in this store; run a stage with --trace first")
    return runs[-1]
