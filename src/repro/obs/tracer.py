"""Nested span tracing over a pluggable clock.

A :class:`Tracer` records where time goes as a tree of named spans.  The
clock is any zero-argument callable returning seconds: the default is
``time.perf_counter`` (wall clock, like :class:`repro.utils.timer.Timer`),
but passing ``clock=lambda: virtual_clock.now`` attributes *simulated*
search time instead — the HGNAS ablations charge supernet epochs, accuracy
evaluations and latency queries to a
:class:`~repro.utils.timer.VirtualClock`, and a virtual-clock tracer shows
exactly which stage spent it, deterministically.

Spans are recorded flat (start order) with ``parent_id`` links, which is
what the JSONL exporter wants; :func:`repro.obs.export.format_span_tree`
rebuilds the tree for humans.  Instrumented code uses the process-global
default tracer through :func:`trace_span`, which works both as a context
manager and as a decorator::

    with trace_span("workspace.search", device="jetson-tx2") as span:
        ...
        span.attributes["cache_hit"] = False

    @trace_span("predictor.train")
    def train(...): ...

Exception safety: a span whose body raises is closed with ``status="error"``
and the exception text before the exception propagates, so partial traces
of failed runs still read correctly.
"""

from __future__ import annotations

import contextlib
import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_span",
]


@dataclass
class Span:
    """One timed, named, attributed interval; nested via ``parent_id``."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while the span is open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        """JSON-serializable row (one JSONL line per span)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "status": self.status,
            "error": self.error,
        }


class Tracer:
    """Collects nested spans against a pluggable clock.

    Args:
        clock: Zero-argument callable returning seconds (default:
            ``time.perf_counter``).  Pass ``lambda: virtual_clock.now`` for
            deterministic search-time attribution.
        max_spans: Retention cap; spans beyond it are dropped (counted in
            :attr:`dropped`) so a runaway loop cannot exhaust memory.
        enabled: A disabled tracer yields detached spans and records nothing.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_spans: int = 100_000,
        enabled: bool = True,
    ) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.clock = clock if clock is not None else time.perf_counter
        self.max_spans = max_spans
        self.enabled = enabled
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_id = 0

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextlib.contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the current span for the duration of the block."""
        if not self.enabled:
            # Detached span: attribute writes in the body stay safe, nothing
            # is recorded and the clock is never consulted.
            yield Span(name=name, span_id=-1, parent_id=None, start=0.0, end=0.0)
            return
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start=self.clock(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end = self.clock()
            self._stack.pop()

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep recording into the void)."""
        self.spans = []
        self.dropped = 0
        self._stack = []
        self._next_id = 0

    def snapshot(self) -> list[dict]:
        """JSON-serializable rows of every recorded span, in start order."""
        return [span.to_dict() for span in self.spans]


class trace_span:
    """Span on the *default* tracer; context manager and decorator in one."""

    def __init__(self, name: str, **attributes: Any) -> None:
        self.name = name
        self.attributes = attributes
        self._cm: Any = None

    def __enter__(self) -> Span:
        self._cm = get_tracer().span(self.name, **self.attributes)
        return self._cm.__enter__()

    def __exit__(self, *exc_info: object) -> bool | None:
        cm, self._cm = self._cm, None
        return cm.__exit__(*exc_info)

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with get_tracer().span(self.name, **self.attributes):
                return fn(*args, **kwargs)

        return wrapper


_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global default tracer instrumentation records into."""
    return _DEFAULT_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the default tracer; returns the previous one."""
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope the default tracer (e.g. per test or per CLI run)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
