"""Unified observability: span tracing, mergeable metrics, exporters.

The stack instruments itself against two process-global singletons — a
:class:`~repro.obs.tracer.Tracer` (nested, timestamped spans; see
:func:`trace_span`) and a :class:`~repro.obs.metrics.MetricsRegistry`
(counters, gauges, fixed-bucket histograms whose snapshots serialize to
JSON and merge across processes).  :mod:`repro.obs.export` persists runs
into the workspace :class:`~repro.workspace.store.ArtifactStore` (stage
``obs``, with ``spans.jsonl``/``metrics.json`` side files) and renders
them for humans; the ``repro`` CLI exposes it all via ``--trace`` and the
``repro report`` subcommand.

Metric names follow ``layer.component.name`` (``graph.fused.dispatch``,
``nas.evolution.generations``, ``serving.request.latency_ms``).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.obs.export import (
    OBS_STAGE,
    format_metrics,
    format_run,
    format_span_tree,
    list_runs,
    load_run,
    save_run,
    span_rows,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    merge_snapshots,
    set_metrics,
    use_metrics,
)
from repro.obs.tracer import Span, Tracer, get_tracer, set_tracer, trace_span, use_tracer

__all__ = [
    "OBS_STAGE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "format_metrics",
    "format_run",
    "format_span_tree",
    "get_metrics",
    "get_tracer",
    "list_runs",
    "load_run",
    "merge_snapshots",
    "observability_disabled",
    "reset_observability",
    "save_run",
    "set_metrics",
    "set_tracer",
    "span_rows",
    "trace_span",
    "use_metrics",
    "use_tracer",
    "write_metrics_json",
    "write_spans_jsonl",
]


def reset_observability() -> None:
    """Clear the default tracer's spans and the default registry's metrics."""
    get_tracer().reset()
    get_metrics().reset()


@contextlib.contextmanager
def observability_disabled() -> Iterator[None]:
    """Turn the default tracer and registry off within a scope.

    Used by the overhead benchmark to measure the instrumented hot paths
    with recording compiled down to one boolean check per call site.
    """
    tracer, metrics = get_tracer(), get_metrics()
    previous = (tracer.enabled, metrics.enabled)
    tracer.enabled = False
    metrics.enabled = False
    try:
        yield
    finally:
        tracer.enabled, metrics.enabled = previous
