"""Legacy installation shim.

All project metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` as an editable-install fallback for offline
environments whose toolchain lacks the ``wheel`` package (PEP 517 editable
builds need it).  Everywhere else, use ``pip install -e .``.
"""

from setuptools import setup

setup()
