"""Table II — HGNAS vs DGCNN / [6] / [7] on every device."""

from repro.experiments import format_table, run_table2


def test_table2_full_comparison(benchmark, bench_scale):
    rows = benchmark.pedantic(run_table2, args=(bench_scale,), rounds=1, iterations=1)
    benchmark.extra_info["table"] = format_table(
        [
            {
                "device": r.device,
                "network": r.network,
                "size_mb": round(r.size_mb, 3),
                "oa": round(r.overall_accuracy, 3),
                "macc": round(r.balanced_accuracy, 3),
                "latency_ms": round(r.latency_ms, 1),
                "mem_mb": round(r.peak_memory_mb, 1),
                "speedup": round(r.speedup_vs_dgcnn, 2),
            }
            for r in rows
        ]
    )
    devices = {r.device for r in rows}
    assert len(devices) == 4 and len(rows) == 20
    for device in devices:
        per_device = {r.network: r for r in rows if r.device == device}
        fast = per_device["HGNAS-Fast"]
        # Who wins: HGNAS-Fast must beat both manual baselines and DGCNN on
        # latency and reduce memory on every device.
        assert fast.speedup_vs_dgcnn > per_device["[6] graph-reuse"].speedup_vs_dgcnn
        assert fast.speedup_vs_dgcnn > per_device["[7] simplified"].speedup_vs_dgcnn
        assert fast.speedup_vs_dgcnn > 2.0
        assert fast.memory_reduction_vs_dgcnn > 0.2
        # Accuracy stays in the same band as DGCNN (negligible loss at this
        # synthetic scale means: not catastrophically worse).
        assert fast.overall_accuracy > per_device["DGCNN"].overall_accuracy - 0.3
