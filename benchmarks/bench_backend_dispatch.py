"""Compute-backend registry: dispatch overhead and blocked-backend sanity.

The backend refactor routed every kernel primitive (segment reduction,
unbuffered scatter, gather, dense matmul) through
``repro.backends.active_backend()`` instead of calling numpy directly.  The
acceptance claim, quantified: on realistic kernel workloads the registry
indirection costs **less than 2%** against hand-written direct numpy calls
— the pre-refactor code shape, inlined here as the baseline.

Also records (informationally, no gate) the end-to-end derived-model
forward under the ``numpy`` and ``numpy-blocked`` backends, so regressions
in the blocked variants show up in the benchmark history.

Timings are best-of-N to suppress scheduler noise, mirroring
``bench_dtype_fused.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends import active_backend, use_backend
from repro.data.dataset import collate
from repro.data.synthetic_modelnet import make_synthetic_modelnet
from repro.nas.derived import DerivedModel
from repro.nas.presets import device_fast_architecture
from repro.nn.tensor import no_grad

MAX_OVERHEAD_FRACTION = 0.02
ROUNDS = 7
TINY_CALLS = 2000
KERNEL_CALLS = 20
NUM_EDGES = 8192
NUM_NODES = 512
FEATURE_DIM = 64


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _segment_workload(rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ragged per-target segments as produced by ``_csr_segments``."""
    targets = np.sort(rng.integers(0, NUM_NODES, size=NUM_EDGES))
    _, seg_starts, seg_counts = np.unique(targets, return_index=True, return_counts=True)
    values = rng.standard_normal((NUM_EDGES, FEATURE_DIM)).astype(np.float32)
    return values, seg_starts.astype(np.int64), seg_counts.astype(np.int64)


def test_backend_dispatch_overhead(benchmark):
    """Registry dispatch adds <2% to a realistic kernel-primitive call.

    Comparing two separately-timed runs of the full kernel drowns the
    few-microsecond dispatch cost in scheduler noise, so the overhead is
    measured where it is the dominant term: thousands of calls on a tiny
    workload, direct numpy vs the registry path.  The per-call difference is
    then gated against the per-call time of the primitive on a
    realistically-sized workload.
    """
    rng = np.random.default_rng(7)
    values, seg_starts, seg_counts = _segment_workload(rng)

    # Tiny workload: fixed per-call cost dominates the actual reduction.
    tiny_values = np.ones((8, 4), dtype=np.float32)
    tiny_starts = np.array([0, 3, 5], dtype=np.int64)
    tiny_counts = np.array([3, 2, 3], dtype=np.int64)

    def direct_tiny():
        for _ in range(TINY_CALLS):
            # repro-lint: allow[backend-primitive] dispatch-overhead baseline
            np.add.reduceat(tiny_values, tiny_starts, axis=0)

    def dispatched_tiny():
        for _ in range(TINY_CALLS):
            active_backend().segment_reduce(tiny_values, tiny_starts, tiny_counts, "sum")

    def direct_kernel():
        for _ in range(KERNEL_CALLS):
            np.add.reduceat(values, seg_starts, axis=0)  # repro-lint: allow[backend-primitive] dispatch-overhead baseline

    with use_backend("numpy"):
        direct_tiny_s = _best_of(direct_tiny)
        dispatched_tiny_s = _best_of(dispatched_tiny)
        kernel_call_s = _best_of(direct_kernel) / KERNEL_CALLS
        benchmark.pedantic(dispatched_tiny, rounds=3, iterations=1)

    overhead_per_call_s = max(0.0, dispatched_tiny_s - direct_tiny_s) / TINY_CALLS
    overhead_fraction = overhead_per_call_s / kernel_call_s
    benchmark.extra_info["dispatch_overhead_us_per_call"] = round(overhead_per_call_s * 1e6, 3)
    benchmark.extra_info["kernel_call_ms"] = round(kernel_call_s * 1e3, 3)
    benchmark.extra_info["overhead_fraction"] = round(overhead_fraction, 5)

    assert overhead_fraction <= MAX_OVERHEAD_FRACTION, (
        f"registry dispatch adds {100 * overhead_fraction:.2f}% per segment-reduce call "
        f"({overhead_per_call_s * 1e6:.2f}us on a {kernel_call_s * 1e3:.2f}ms kernel); "
        f"the budget is {100 * MAX_OVERHEAD_FRACTION:.0f}%"
    )


def test_backend_forward_equivalence_timings(benchmark):
    """Derived-model forward: numpy vs numpy-blocked timings + allclose logits."""
    _, val_set = make_synthetic_modelnet(num_classes=4, samples_per_class=4, num_points=128, seed=0)
    model = DerivedModel(device_fast_architecture("jetson-tx2"), num_classes=4, k=8).eval()
    batch = collate([val_set[i] for i in range(6)])

    with no_grad():
        with use_backend("numpy"):
            logits_reference = model(batch).numpy()
            reference_s = _best_of(lambda: model(batch))
        with use_backend("numpy-blocked"):
            logits_blocked = model(batch).numpy()
            blocked_s = _best_of(lambda: model(batch))
            benchmark.pedantic(lambda: model(batch), rounds=3, iterations=1)

    np.testing.assert_allclose(logits_blocked, logits_reference, rtol=1e-4, atol=1e-4)
    benchmark.extra_info["numpy_forward_ms"] = round(reference_s * 1e3, 2)
    benchmark.extra_info["numpy_blocked_forward_ms"] = round(blocked_s * 1e3, 2)
