"""Fig. 6 — accuracy-vs-latency frontier of HGNAS against existing models."""

from repro.experiments import run_fig6


def test_fig6_accuracy_latency_frontier(benchmark, bench_scale):
    frontier = benchmark.pedantic(run_fig6, args=(bench_scale,), rounds=1, iterations=1)
    assert len(frontier) == 4
    for device, points in frontier.items():
        hgnas = [p for p in points if p.is_hgnas]
        dgcnn = next(p for p in points if p.network == "DGCNN")
        fastest_hgnas = min(hgnas, key=lambda p: p.latency_ms)
        benchmark.extra_info[device] = {
            p.network: {"latency_ms": round(p.latency_ms, 1), "accuracy": round(p.accuracy, 3)}
            for p in points
        }
        # Frontier shape: the HGNAS designs sit left of (faster than) every
        # baseline on the latency axis without collapsing in accuracy.
        assert fastest_hgnas.latency_ms < min(
            p.latency_ms for p in points if not p.is_hgnas
        )
        assert fastest_hgnas.accuracy > dgcnn.accuracy - 0.3
