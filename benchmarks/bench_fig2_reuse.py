"""Fig. 2(b) — accuracy vs latency of sampled-result reuse across DGCNN layers."""

from repro.experiments import run_fig2


def test_fig2_reuse_tradeoff(benchmark, bench_scale):
    results = benchmark.pedantic(run_fig2, args=(bench_scale,), rounds=1, iterations=1)
    by_name = {r.name: r for r in results}
    for result in results:
        benchmark.extra_info[result.name] = {
            "accuracy": round(result.accuracy, 3),
            "latency_ms": round(result.latency_ms, 1),
        }
    # Shape: reusing sampled results reduces latency substantially while the
    # accuracy stays in the same range (paper: negligible loss).
    full = by_name["rebuild-all (DGCNN)"]
    reused = by_name["rebuild-1"]
    assert reused.latency_ms < 0.75 * full.latency_ms
    assert reused.accuracy > full.accuracy - 0.25
