"""Observability overhead gate: tracing + metrics must cost <5% on hot paths.

The ``repro.obs`` instrumentation sits on the DGCNN forward path (fused
dispatch counters in ``graph.fused``, scatter counters, span bookkeeping).
This benchmark times the same fused float32 DGCNN forward as
``bench_dtype_fused.py`` twice:

* with observability fully enabled and the forward wrapped in a
  ``trace_span`` (the ``repro search --trace`` configuration), and
* with both the process tracer and metrics registry disabled via
  ``observability_disabled()`` (the default untraced configuration).

Timings are best-of-N to suppress scheduler noise; the traced/untraced
ratio must stay below ``MAX_OVERHEAD``.
"""

from __future__ import annotations

import time

from repro.data.dataset import Batch, collate
from repro.data.synthetic_modelnet import make_synthetic_modelnet
from repro.graph.fused import use_fused_kernels
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.nn.dtype import default_dtype
from repro.nn.tensor import no_grad
from repro.obs import get_metrics, get_tracer, observability_disabled, reset_observability, trace_span

MAX_OVERHEAD = 1.05
ROUNDS = 20
NUM_CLASSES = 6
NUM_POINTS = 256
EVAL_CLOUDS = 8
K = 16


def _build() -> tuple[DGCNN, Batch]:
    with default_dtype("float32"):
        _, val_set = make_synthetic_modelnet(
            num_classes=NUM_CLASSES, samples_per_class=4, num_points=NUM_POINTS, seed=0
        )
        model = DGCNN(DGCNNConfig(num_classes=NUM_CLASSES, k=K, layer_dims=(32, 32, 64)))
        batch = collate([val_set[i] for i in range(EVAL_CLOUDS)])
    return model.eval(), batch


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_tracing_overhead_under_gate(benchmark):
    """Traced fused DGCNN forward stays within 5% of the untraced forward."""
    model, batch = _build()
    reset_observability()

    def traced_forward():
        with trace_span("bench.forward"):
            model(batch)

    with no_grad(), use_fused_kernels(True):
        model(batch)  # warm caches before either timing pass
        with observability_disabled():
            untraced_s = _best_of(lambda: model(batch))
        traced_s = _best_of(traced_forward)
        benchmark.pedantic(traced_forward, rounds=3, iterations=1)

    # The traced pass actually recorded: spans landed and the fused kernels
    # bumped their dispatch counter.
    assert any(span.name == "bench.forward" for span in get_tracer().spans)
    assert get_metrics().snapshot()["graph.fused.dispatch"]["value"] > 0

    overhead = traced_s / untraced_s
    benchmark.extra_info["untraced_ms"] = round(untraced_s * 1e3, 3)
    benchmark.extra_info["traced_ms"] = round(traced_s * 1e3, 3)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    reset_observability()

    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead:.3f}x exceeds the {MAX_OVERHEAD:.2f}x gate "
        f"(traced {traced_s * 1e3:.3f} ms vs untraced {untraced_s * 1e3:.3f} ms)"
    )
