"""Batched population-evaluation fast path: speedup and exactness.

The acceptance claims of the batched evaluation path, quantified:

* scoring a population of encoded architecture graphs through one batched
  predictor forward is at least 3x faster than the sequential per-graph
  path and returns **bit-identical** floats;
* a full HGNAS search through the batched path finds the same best
  architecture (same score, same history) as the sequential search under
  the same seed.

End-to-end architecture-level numbers (encoding included, which the two
paths share) are attached as ``extra_info`` for context.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.data.synthetic_modelnet import make_synthetic_modelnet
from repro.hardware import get_device
from repro.nas import HGNAS, HGNASConfig
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.predictor.model import LatencyPredictor, PredictorConfig

POPULATION = 64
MIN_SPEEDUP = 3.0
ROUNDS = 9


def _population(num: int = POPULATION) -> tuple[list, LatencyPredictor]:
    space = DesignSpace(DesignSpaceConfig(num_positions=12))
    rng = np.random.default_rng(0)
    architectures = [space.random_architecture(rng) for _ in range(num)]
    predictor = LatencyPredictor(PredictorConfig())
    predictor.set_target_normalization(1.3, 0.8)
    return architectures, predictor


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_population_scoring_speedup(benchmark):
    """Batched population scoring: >=3x the sequential path, same floats."""
    architectures, predictor = _population()
    graphs = [predictor.encode(arch) for arch in architectures]

    sequential = np.array([predictor.predict_from_graph(graph) for graph in graphs])
    batched = predictor.predict_many_graphs(graphs)
    np.testing.assert_array_equal(batched, sequential)

    sequential_s = _best_of(lambda: [predictor.predict_from_graph(graph) for graph in graphs])
    batched_s = _best_of(lambda: predictor.predict_many_graphs(graphs))
    end_to_end_sequential_s = _best_of(
        lambda: [predictor.predict_latency_ms(arch) for arch in architectures]
    )
    end_to_end_batched_s = _best_of(lambda: predictor.predict_many(architectures))

    benchmark.pedantic(lambda: predictor.predict_many_graphs(graphs), rounds=3, iterations=1)
    benchmark.extra_info["population"] = POPULATION
    benchmark.extra_info["sequential_ms"] = round(sequential_s * 1e3, 3)
    benchmark.extra_info["batched_ms"] = round(batched_s * 1e3, 3)
    benchmark.extra_info["speedup"] = round(sequential_s / batched_s, 2)
    benchmark.extra_info["end_to_end_speedup"] = round(
        end_to_end_sequential_s / end_to_end_batched_s, 2
    )

    assert sequential_s >= MIN_SPEEDUP * batched_s, (
        f"batched population scoring only {sequential_s / batched_s:.2f}x faster"
    )


def test_search_batched_matches_sequential(benchmark):
    """Full HGNAS search: batched path reproduces the sequential result."""
    train_set, val_set = make_synthetic_modelnet(
        num_classes=4, samples_per_class=5, num_points=24, seed=0
    )
    config = HGNASConfig(
        num_positions=6,
        hidden_dim=12,
        supernet_k=4,
        num_classes=4,
        population_size=4,
        function_iterations=1,
        operation_iterations=2,
        function_epochs=1,
        operation_epochs=1,
        batch_size=6,
        eval_max_batches=1,
        paths_per_function_eval=1,
        seed=0,
    )
    predictor = LatencyPredictor(PredictorConfig(gcn_dims=(16, 24, 24), mlp_dims=(16, 8)))
    predictor.set_target_normalization(1.5, 0.7)

    def run(batched: bool):
        search = HGNAS.for_device(
            dataclasses.replace(config, batched_evaluation=batched),
            train_set,
            val_set,
            get_device("jetson-tx2"),
            latency_oracle="predictor",
            predictor=predictor,
            rng=np.random.default_rng(0),
        )
        return search.run()

    batched_result = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    sequential_result = run(False)

    benchmark.extra_info["best_score"] = round(batched_result.best_score, 6)
    benchmark.extra_info["evaluations"] = batched_result.evaluations

    assert (
        batched_result.best_architecture.key() == sequential_result.best_architecture.key()
    )
    assert batched_result.best_score == sequential_result.best_score
    assert batched_result.search_time_s == sequential_result.search_time_s
    assert [dataclasses.astuple(point) for point in batched_result.history] == [
        dataclasses.astuple(point) for point in sequential_result.history
    ]
