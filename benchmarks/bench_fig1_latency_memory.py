"""Fig. 1 — DGCNN vs HGNAS latency/memory scaling and cross-device speedups."""

from repro.experiments import run_device_comparison, run_point_sweep


def test_fig1_point_sweep_raspberry_pi(benchmark):
    """Latency & peak memory vs number of points on the Raspberry Pi."""
    rows = benchmark(run_point_sweep, "raspberry-pi")
    dgcnn = {r.num_points: r for r in rows if r.model == "DGCNN"}
    hgnas = {r.num_points: r for r in rows if r.model == "HGNAS"}
    benchmark.extra_info["dgcnn_latency_s_at_1024"] = round(dgcnn[1024].latency_ms / 1000, 3)
    benchmark.extra_info["hgnas_latency_s_at_1024"] = round(hgnas[1024].latency_ms / 1000, 3)
    benchmark.extra_info["dgcnn_oom_points"] = [p for p, r in dgcnn.items() if r.out_of_memory]
    # Paper shape: DGCNN ~4.1 s at 1024 points, OOM at 1536+; HGNAS never OOMs.
    assert 3.5 < dgcnn[1024].latency_ms / 1000 < 4.8
    assert dgcnn[1536].out_of_memory and dgcnn[2048].out_of_memory
    assert not any(r.out_of_memory for r in hgnas.values())


def test_fig1_device_comparison(benchmark):
    """Speedup and memory reduction of the HGNAS design on all four devices."""
    rows = benchmark(run_device_comparison)
    for row in rows:
        benchmark.extra_info[row["device"]] = {
            "speedup": round(row["speedup"], 2),
            "memory_reduction": round(row["memory_reduction"], 3),
        }
        # Paper reports 7.4x-10.6x; the calibrated model should at least give
        # a clear multi-x speedup and a positive memory reduction everywhere.
        assert row["speedup"] > 2.0
        assert row["memory_reduction"] > 0.0
