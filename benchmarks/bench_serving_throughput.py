"""Serving-engine throughput: sequential vs micro-batched vs batched+cached.

The serving claim of the subsystem, quantified: micro-batching amortises
the per-forward dispatch overhead so a batched engine serves the same
request stream at strictly higher throughput than one-by-one ``submit()``,
and the content-addressed caches serve repeated inputs without recomputing
— bit-identically to the uncached engine.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hardware import get_device
from repro.nas import device_fast_architecture
from repro.serving import EngineConfig, InferenceEngine, ModelRegistry

NUM_REQUESTS = 48
NUM_POINTS = 32
NUM_UNIQUE = 12
K = 8
NUM_CLASSES = 10
BATCH_SIZE = 16


def _make_engine(max_batch_size: int, cache_capacity: int) -> InferenceEngine:
    registry = ModelRegistry()
    registry.register(
        "bench",
        device_fast_architecture("jetson-tx2"),
        get_device("jetson-tx2"),
        num_classes=NUM_CLASSES,
        k=K,
    )
    return InferenceEngine(
        registry,
        EngineConfig(
            max_batch_size=max_batch_size,
            result_cache_capacity=cache_capacity,
            edge_cache_capacity=cache_capacity,
        ),
    )


def _unique_stream(count: int = NUM_REQUESTS) -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    return [rng.standard_normal((NUM_POINTS, 3)) for _ in range(count)]


def _repeated_stream() -> list[np.ndarray]:
    unique = _unique_stream(NUM_UNIQUE)
    rng = np.random.default_rng(1)
    return [unique[int(i)] for i in rng.integers(0, NUM_UNIQUE, size=NUM_REQUESTS)]


def _timed_throughput(make_run, rounds: int = 2) -> tuple[float, list]:
    """Best-of-``rounds`` requests/s (each round on a fresh engine).

    Taking the fastest round for both serving modes symmetrically filters
    transient machine-load spikes out of the comparison.
    """
    best_rps, results = 0.0, []
    for _ in range(rounds):
        run = make_run()
        start = time.perf_counter()
        round_results = run()
        elapsed = time.perf_counter() - start
        if len(round_results) / elapsed > best_rps:
            best_rps, results = len(round_results) / elapsed, round_results
    return best_rps, results


def test_batched_beats_sequential(benchmark):
    """Micro-batching must strictly out-serve one-by-one submission."""
    stream = _unique_stream()
    # Warm the process (numpy/scipy lazy initialisation) so neither
    # measurement absorbs first-call costs.
    _make_engine(max_batch_size=4, cache_capacity=0).submit_many("bench", stream[:8])

    def sequential_run():
        engine = _make_engine(max_batch_size=1, cache_capacity=0)
        return lambda: [engine.submit("bench", cloud) for cloud in stream]

    def batched_run():
        engine = _make_engine(max_batch_size=BATCH_SIZE, cache_capacity=0)
        return lambda: engine.submit_many("bench", stream)

    sequential_rps, sequential_results = _timed_throughput(sequential_run)
    batched_rps, batched_results = _timed_throughput(batched_run)
    # Benchmark timing on a fresh engine so pytest-benchmark reports the
    # batched serving path without warm-process effects from above.
    bench_engine = _make_engine(max_batch_size=BATCH_SIZE, cache_capacity=0)
    benchmark.pedantic(lambda: bench_engine.submit_many("bench", stream), rounds=1, iterations=1)

    benchmark.extra_info["sequential_rps"] = round(sequential_rps, 1)
    benchmark.extra_info["batched_rps"] = round(batched_rps, 1)
    benchmark.extra_info["speedup"] = round(batched_rps / sequential_rps, 2)

    assert len(batched_results) == len(stream)
    # Same inputs, same labels, regardless of batch composition.
    assert [r.label for r in batched_results] == [r.label for r in sequential_results]
    assert batched_rps > sequential_rps


def test_cache_hit_rate_and_bit_identity(benchmark):
    """Repeated inputs hit the caches; results match the uncached engine bit-for-bit.

    Bit-identity is asserted in the two regimes where cache state cannot
    change which batch compositions get computed (BLAS kernels are not
    bitwise stable across compositions): a single micro-batched wave, where
    in-batch deduplication is symmetric in both engines, and sequential
    warm-cache serving, where every computation is a canonical batch of one.
    """
    stream = _repeated_stream()

    # (a) One micro-batched wave: identical compute batches with cache on/off.
    cached_engine = _make_engine(max_batch_size=BATCH_SIZE, cache_capacity=256)
    cached_results = benchmark.pedantic(
        lambda: cached_engine.submit_many("bench", stream), rounds=1, iterations=1
    )
    uncached_engine = _make_engine(max_batch_size=BATCH_SIZE, cache_capacity=0)
    uncached_results = uncached_engine.submit_many("bench", stream)
    assert sum(r.from_cache for r in cached_results) > 0  # in-batch dedup served repeats
    for cached, uncached in zip(cached_results, uncached_results):
        assert np.array_equal(cached.logits, uncached.logits)

    # (b) Sequential warm-cache serving: genuine LRU hits, still bit-identical.
    seq_cached = _make_engine(max_batch_size=1, cache_capacity=256)
    seq_uncached = _make_engine(max_batch_size=1, cache_capacity=0)
    seq_cached_results = [seq_cached.submit("bench", cloud) for cloud in stream]
    seq_uncached_results = [seq_uncached.submit("bench", cloud) for cloud in stream]
    for cached, uncached in zip(seq_cached_results, seq_uncached_results):
        assert np.array_equal(cached.logits, uncached.logits)
    stats = seq_cached.cache_stats()
    assert stats["result"].hit_rate > 0
    # Cached serving must skip model executions the uncached engine performs.
    assert (
        seq_cached.telemetry.model("bench").batches
        < seq_uncached.telemetry.model("bench").batches
    )

    # (c) Warm second batched wave: throughput-only measurement (cache hits
    # at admission change batch compositions, so bits are compared above).
    warm_busy_before = cached_engine.telemetry.model("bench").busy.elapsed
    warm_results = cached_engine.submit_many("bench", stream)
    warm_busy = cached_engine.telemetry.model("bench").busy.elapsed - warm_busy_before
    assert all(r.from_cache for r in warm_results)

    benchmark.extra_info["result_cache_hit_rate_sequential"] = round(stats["result"].hit_rate, 3)
    benchmark.extra_info["dedup_served_batched"] = sum(r.from_cache for r in cached_results)
    benchmark.extra_info["warm_wave_model_busy_s"] = round(warm_busy, 6)
    benchmark.extra_info["model_batches_seq_cached"] = seq_cached.telemetry.model("bench").batches
    benchmark.extra_info["model_batches_seq_uncached"] = seq_uncached.telemetry.model("bench").batches
