"""Workspace artifact-store speedup: repeated pipeline stages must be cache hits.

The acceptance claim of the Workspace redesign, quantified: running the
same stage twice with the same configuration hits the content-addressed
artifact store on the second run — no predictor re-training, no search
re-run — and the repeated stage is at least 5x faster than the cold one.
"""

from __future__ import annotations

import time

from repro.data.synthetic_modelnet import make_synthetic_modelnet
from repro.nas import HGNASConfig, dgcnn_architecture
from repro.workspace import Workspace

PREDICTOR_SAMPLES = 120
PREDICTOR_EPOCHS = 12
MIN_SPEEDUP = 5.0


def _search_config(num_classes: int) -> HGNASConfig:
    return HGNASConfig(
        num_positions=6,
        hidden_dim=12,
        supernet_k=4,
        num_classes=num_classes,
        population_size=4,
        function_iterations=1,
        operation_iterations=2,
        function_epochs=1,
        operation_epochs=1,
        batch_size=6,
        eval_max_batches=1,
        paths_per_function_eval=1,
        seed=0,
    )


def test_predictor_stage_cache_speedup(benchmark, tmp_path):
    """Second `train_predictor` with identical inputs loads instead of training."""
    cold_ws = Workspace(device="rtx3080", root=tmp_path)
    start = time.perf_counter()
    cold = cold_ws.train_predictor(num_samples=PREDICTOR_SAMPLES, epochs=PREDICTOR_EPOCHS, seed=0)
    cold_s = time.perf_counter() - start

    # A fresh workspace over the same root: everything must come off disk.
    warm_ws = Workspace(device="rtx3080", root=tmp_path)
    start = time.perf_counter()
    warm = warm_ws.train_predictor(num_samples=PREDICTOR_SAMPLES, epochs=PREDICTOR_EPOCHS, seed=0)
    warm_s = time.perf_counter() - start

    benchmark.pedantic(
        lambda: Workspace(device="rtx3080", root=tmp_path).train_predictor(
            num_samples=PREDICTOR_SAMPLES, epochs=PREDICTOR_EPOCHS, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cold_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup"] = round(cold_s / warm_s, 1)

    assert warm_ws.store.hits >= 1
    arch = dgcnn_architecture()
    assert warm.predictor.predict_latency_ms(arch) == cold.predictor.predict_latency_ms(arch)
    assert cold_s >= MIN_SPEEDUP * warm_s, f"cached stage only {cold_s / warm_s:.1f}x faster"


def test_search_stage_cache_speedup(benchmark, tmp_path):
    """Second identical `search` returns the persisted result without re-searching."""
    train_set, val_set = make_synthetic_modelnet(num_classes=4, samples_per_class=5, num_points=24, seed=0)
    config = _search_config(train_set.num_classes)

    start = time.perf_counter()
    cold = Workspace(device="jetson-tx2", root=tmp_path).search(train_set, val_set, config=config)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = Workspace(device="jetson-tx2", root=tmp_path).search(train_set, val_set, config=config)
    warm_s = time.perf_counter() - start

    benchmark.pedantic(
        lambda: Workspace(device="jetson-tx2", root=tmp_path).search(train_set, val_set, config=config),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cold_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup"] = round(cold_s / warm_s, 1)

    assert warm.best_architecture.to_dict() == cold.best_architecture.to_dict()
    assert warm.best_score == cold.best_score
    assert cold_s >= MIN_SPEEDUP * warm_s, f"cached stage only {cold_s / warm_s:.1f}x faster"
