"""Fig. 8 — accuracy of the GNN latency predictor on each device."""

from repro.experiments import run_fig8
from repro.predictor import PredictorTrainingConfig


def test_fig8_predictor_accuracy(benchmark):
    training = PredictorTrainingConfig(epochs=120, batch_size=32, learning_rate=1e-2, seed=0)
    results = benchmark.pedantic(
        run_fig8,
        kwargs={"devices": ["rtx3080", "raspberry-pi"], "num_samples": 320, "training": training},
        rounds=1,
        iterations=1,
    )
    by_device = {r.device: r for r in results}
    for result in results:
        benchmark.extra_info[result.device] = {
            "mape": round(result.mape, 3),
            "within_10pct": round(result.bound_accuracy_10, 3),
            "within_20pct": round(result.bound_accuracy_20, 3),
            "spearman": round(result.spearman, 3),
        }
    # Shape: predictions track measurements closely in rank order everywhere,
    # and the Raspberry Pi (noisiest measurements) is the hardest device,
    # mirroring the paper's 6% vs 19% MAPE split.
    for result in results:
        assert result.spearman > 0.8
        assert result.mape < 0.6
    assert by_device["raspberry-pi"].mape >= by_device["rtx3080"].mape * 0.8
