"""Float32 compute policy + fused message-passing kernels: speedup and parity.

The acceptance claims of the dtype/fusion work, quantified:

* an end-to-end inference forward of DGCNN **and** of a searched derived
  model is at least 1.5x faster under the float32 default with the fused
  CSR/reduceat kernels than under the float64 materialized baseline (the
  seed configuration);
* the speedup does not change what the models predict: float32+fused logits
  match the float64 baseline to float32 precision and the top-1
  classification accuracy on the synthetic eval set is identical within a
  small tolerance;
* within a fixed dtype the fused path is numerically interchangeable with
  the materialized path (allclose logits), so serving results do not depend
  on which kernel executed them.

Both models run the same eval batches; timings are best-of-N to suppress
scheduler noise, mirroring ``bench_batched_eval.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.dataset import Batch, collate
from repro.data.synthetic_modelnet import make_synthetic_modelnet
from repro.graph.fused import use_fused_kernels
from repro.models.dgcnn import DGCNN, DGCNNConfig
from repro.nas.derived import DerivedModel
from repro.nas.presets import device_fast_architecture
from repro.nn.dtype import default_dtype
from repro.nn.loss import accuracy
from repro.nn.tensor import no_grad

MIN_SPEEDUP = 1.5
ROUNDS = 5
NUM_CLASSES = 6
NUM_POINTS = 256
EVAL_CLOUDS = 8
K = 16


def _build(dtype: str) -> tuple[DGCNN, DerivedModel, Batch]:
    """Models + eval batch constructed entirely under ``dtype``."""
    with default_dtype(dtype):
        _, val_set = make_synthetic_modelnet(
            num_classes=NUM_CLASSES, samples_per_class=4, num_points=NUM_POINTS, seed=0
        )
        dgcnn = DGCNN(DGCNNConfig(num_classes=NUM_CLASSES, k=K, layer_dims=(32, 32, 64)))
        derived = DerivedModel(device_fast_architecture("jetson-tx2"), num_classes=NUM_CLASSES, k=K)
        batch = collate([val_set[i] for i in range(EVAL_CLOUDS)])
    return dgcnn.eval(), derived.eval(), batch


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_float32_fused_speedup_and_parity(benchmark):
    """float32+fused inference: >=1.5x the float64 baseline, same answers."""
    dgcnn64, derived64, batch64 = _build("float64")
    dgcnn32, derived32, batch32 = _build("float32")

    with no_grad():
        # The two dtype pipelines share the seed, so the float32 weights and
        # data are rounded copies of the float64 ones.
        with use_fused_kernels(False):
            logits64_dgcnn = dgcnn64(batch64).numpy()
            logits64_derived = derived64(batch64).numpy()
            baseline_dgcnn_s = _best_of(lambda: dgcnn64(batch64))
            baseline_derived_s = _best_of(lambda: derived64(batch64))
        with use_fused_kernels(True):
            logits32_dgcnn = dgcnn32(batch32).numpy()
            logits32_derived = derived32(batch32).numpy()
            fused_dgcnn_s = _best_of(lambda: dgcnn32(batch32))
            fused_derived_s = _best_of(lambda: derived32(batch32))
            benchmark.pedantic(lambda: derived32(batch32), rounds=3, iterations=1)
            # Within one dtype, fused and materialized are interchangeable.
            with use_fused_kernels(False):
                logits32_materialized = derived32(batch32).numpy()

    assert logits32_dgcnn.dtype == np.float32 and logits64_dgcnn.dtype == np.float64
    np.testing.assert_allclose(logits32_materialized, logits32_derived, rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(logits32_dgcnn, logits64_dgcnn, rtol=5e-3, atol=5e-3)
    np.testing.assert_allclose(logits32_derived, logits64_derived, rtol=5e-3, atol=5e-3)

    labels = batch64.labels
    acc64 = accuracy(logits64_dgcnn, labels), accuracy(logits64_derived, labels)
    acc32 = accuracy(logits32_dgcnn, labels), accuracy(logits32_derived, labels)
    assert abs(acc64[0] - acc32[0]) <= 1e-9, "DGCNN top-1 accuracy diverged under float32"
    assert abs(acc64[1] - acc32[1]) <= 1e-9, "derived-model top-1 accuracy diverged under float32"

    dgcnn_speedup = baseline_dgcnn_s / fused_dgcnn_s
    derived_speedup = baseline_derived_s / fused_derived_s
    benchmark.extra_info["dgcnn_baseline_ms"] = round(baseline_dgcnn_s * 1e3, 2)
    benchmark.extra_info["dgcnn_fused_ms"] = round(fused_dgcnn_s * 1e3, 2)
    benchmark.extra_info["dgcnn_speedup"] = round(dgcnn_speedup, 2)
    benchmark.extra_info["derived_baseline_ms"] = round(baseline_derived_s * 1e3, 2)
    benchmark.extra_info["derived_fused_ms"] = round(fused_derived_s * 1e3, 2)
    benchmark.extra_info["derived_speedup"] = round(derived_speedup, 2)
    benchmark.extra_info["accuracy"] = acc32[0]

    assert dgcnn_speedup >= MIN_SPEEDUP, (
        f"float32+fused DGCNN forward only {dgcnn_speedup:.2f}x faster than float64 baseline"
    )
    assert derived_speedup >= MIN_SPEEDUP, (
        f"float32+fused derived-model forward only {derived_speedup:.2f}x faster than float64 baseline"
    )
