"""Fig. 10 — characteristics of the per-device architectures."""

from repro.experiments import run_fig10


def test_fig10_device_specific_designs(benchmark):
    reports = benchmark(run_fig10)
    by_device = {r.device: r for r in reports}
    for report in reports:
        benchmark.extra_info[report.device] = {
            "samples": report.num_samples,
            "aggregates": report.num_aggregates,
            "combines": report.num_combines,
            "speedup": round(report.speedup_vs_dgcnn, 2),
        }
    # Paper insight: designs mirror their device's bottleneck.
    # GPU-like devices (sample-bound) keep at most as many KNN ops as DGCNN's 4.
    assert by_device["rtx3080"].num_samples <= 2
    assert by_device["jetson-tx2"].num_samples <= 2
    # The Intel design holds no more aggregates than the TX2 design.
    assert by_device["i7-8700k"].num_aggregates <= by_device["jetson-tx2"].num_aggregates + 1
    # Every design is a real speedup over DGCNN on its own device.
    assert all(r.speedup_vs_dgcnn > 2.0 for r in reports)
    assert all("Classifier" in r.rendering for r in reports)
