"""Fig. 3 — execution-time breakdown of DGCNN across the four platforms."""

from repro.experiments import run_fig3


def test_fig3_execution_breakdown(benchmark):
    rows = benchmark(run_fig3)
    for row in rows:
        benchmark.extra_info[row["device"]] = {
            "sample": round(row["sample_fraction"], 3),
            "aggregate": round(row["aggregate_fraction"], 3),
            "combine": round(row["combine_fraction"], 3),
            "others": round(row["others_fraction"], 3),
        }
    by_device = {row["device"]: row for row in rows}
    # Paper shape: GPU-like devices are sample(KNN)-bound, the CPU is
    # aggregate-bound, and the Pi spreads time over all three phases.
    assert by_device["rtx3080"]["dominant_category"] == "sample"
    assert by_device["jetson-tx2"]["dominant_category"] == "sample"
    assert by_device["i7-8700k"]["dominant_category"] == "aggregate"
    pi = by_device["raspberry-pi"]
    assert min(pi["sample_fraction"], pi["aggregate_fraction"], pi["combine_fraction"]) > 0.15
    for row in rows:
        assert row["max_abs_error_vs_paper"] < 0.05
