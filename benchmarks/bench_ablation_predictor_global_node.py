"""Ablation — value of the global node in the predictor's architecture graph.

The paper (Sec. III-D) adds a globally connected node to the abstracted
architecture graph to improve connectivity and inject input-data
properties.  This ablation trains the same predictor with and without the
global node and compares validation MAPE / rank correlation.
"""

import numpy as np

from repro.hardware import get_device
from repro.nas import DesignSpace, DesignSpaceConfig
from repro.predictor import (
    LatencyPredictor,
    PredictorConfig,
    PredictorTrainingConfig,
    evaluate_predictor,
    generate_predictor_dataset,
    train_predictor,
)


def _train_variant(include_global_node: bool, num_samples: int = 240, seed: int = 0):
    rng = np.random.default_rng(seed)
    space = DesignSpace(DesignSpaceConfig(num_positions=12, k=20, num_points=1024))
    device = get_device("rtx3080")
    dataset = generate_predictor_dataset(
        space, device, num_samples, rng, include_global_node=include_global_node
    )
    train, val = dataset.split(0.75, rng)
    predictor = LatencyPredictor(
        PredictorConfig(
            gcn_dims=(32, 48, 48),
            mlp_dims=(32, 16),
            include_global_node=include_global_node,
            seed=seed,
        )
    )
    train_predictor(
        predictor, train, val, PredictorTrainingConfig(epochs=80, batch_size=32, learning_rate=1e-2)
    )
    return evaluate_predictor(predictor, val)


def test_ablation_global_node(benchmark):
    def run_both():
        return {
            "with_global_node": _train_variant(True),
            "without_global_node": _train_variant(False),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for label, metrics in results.items():
        benchmark.extra_info[label] = {
            "mape": round(metrics.mape, 3),
            "spearman": round(metrics.spearman, 3),
        }
    # Both variants must learn a usable ranking; the ablation records how much
    # the global node helps at this scale.
    assert results["with_global_node"].spearman > 0.7
    assert results["without_global_node"].spearman > 0.3
