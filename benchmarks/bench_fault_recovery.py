"""Fault-recovery gates: chaos serving and search resume, both bit-identical.

Gate 1 (serving): a 3-worker pool runs under an injected fault plan — one
worker crash, one worker stall (killed by the heartbeat supervisor) and
one corrupted shared-cache entry (quarantined and recomputed) — and must
still serve 100% of the request stream with logits bit-identical to a
fault-free run, restart the dead slots, and never hang a caller past the
request deadline.

Gate 2 (search): a multi-stage search killed at a checkpoint commit and
resumed from disk (``Workspace.search(resume=True)``) must reproduce the
uninterrupted run exactly — genotype, score, virtual-clock search time
and the full best-so-far history.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data import make_synthetic_modelnet
from repro.faults import FaultPlan, FaultSpec, InjectedFault, use_faults
from repro.hardware import get_device
from repro.nas import HGNASConfig, device_fast_architecture
from repro.serving import EngineConfig, InferenceEngine, ModelRegistry, PoolConfig, WorkerPoolEngine
from repro.workspace import Workspace

NUM_REQUESTS = 18
NUM_POINTS = 48
K = 6
NUM_CLASSES = 6
CHAOS_WALL_LIMIT_S = 30.0


def _make_registry() -> ModelRegistry:
    registry = ModelRegistry()
    registry.register(
        "bench",
        device_fast_architecture("jetson-tx2"),
        get_device("jetson-tx2"),
        num_classes=NUM_CLASSES,
        k=K,
    )
    return registry


def _unique_stream(count: int = NUM_REQUESTS, num_points: int = NUM_POINTS) -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    return [rng.standard_normal((num_points, 3)) for _ in range(count)]


def _chaos_pool_config() -> PoolConfig:
    return PoolConfig(
        workers=3,
        request_timeout_s=60.0,
        max_retries=3,  # a request may be orphaned by the crash *and* the stall
        restart_backoff_s=0.05,
        heartbeat_interval_s=0.3,
        heartbeat_timeout_s=1.0,  # the 3s stall below is killed, not waited out
        deadline_grace_s=1.0,
    )


def test_chaos_pool_serves_everything_bit_identical(benchmark, tmp_path):
    """Gate 1: crash + stall + corrupt cache entry; 100% served, bit-identical."""
    registry = _make_registry()
    stream = _unique_stream()
    # max_batch_size=1 pins every computation to a canonical batch of one,
    # the regime where bitwise comparison across serving runs is defined.
    engine_config = EngineConfig(max_batch_size=1)
    expected = [InferenceEngine(registry, engine_config).submit("bench", cloud).logits for cloud in stream]

    # Fault-free pool pass over the same root: populates the shared cache
    # tier the chaos pass will read (and have one entry of corrupted).
    with WorkerPoolEngine(registry, engine_config, _chaos_pool_config(), root=tmp_path) as pool:
        warm = pool.submit_many("bench", stream)
    for logits, result in zip(expected, warm):
        assert np.array_equal(logits, result.logits)
    cache_entries = sorted((tmp_path / "serving_cache" / "results").glob("*/*.npy"))
    assert cache_entries, "the fault-free pass must populate the shared cache"
    corrupt_key = cache_entries[0].stem
    # Garble the committed bytes directly (bit rot): whichever worker reads
    # this key must quarantine the entry and recompute.  The plan's corrupt
    # spec covers the same key for workers that carry the injector.
    cache_entries[0].write_bytes(b"\x00corrupt\x00")

    plan = FaultPlan.of(
        # Worker 1 hard-crashes on its third request (os._exit, no cleanup).
        FaultSpec(point="serving.worker.serve", action="crash", after=2, times=1, match={"worker": 1}),
        # Worker 2 wedges for 3s on its first request; the supervisor's 1s
        # heartbeat timeout kills and restarts it instead of waiting.
        FaultSpec(point="serving.worker.serve", action="delay", delay_s=3.0, times=1, match={"worker": 2}),
        # One shared-cache entry is garbled on read: quarantined + recomputed.
        FaultSpec(point="serving.diskcache.get", action="corrupt", times=1, match={"key": corrupt_key}),
    )
    with use_faults(plan):
        pool = WorkerPoolEngine(registry, engine_config, _chaos_pool_config(), root=tmp_path)
    try:
        start = time.perf_counter()
        results = benchmark.pedantic(lambda: pool.submit_many("bench", stream), rounds=1, iterations=1)
        elapsed = time.perf_counter() - start
        # 100% of the stream served, every response bit-identical.
        assert len(results) == len(stream)
        for logits, result in zip(expected, results):
            assert np.array_equal(logits, result.logits)
        # The injected faults actually happened and were recovered from.
        assert pool.worker_crashes >= 2  # the crash and the stall-kill
        assert pool.stalls >= 1
        deadline = time.monotonic() + 10.0
        while pool.restarts < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.restarts >= 2, "both dead slots must be restarted"
        # No caller waited past the request deadline (nothing hung).
        assert elapsed < CHAOS_WALL_LIMIT_S
        benchmark.extra_info["served"] = len(results)
        benchmark.extra_info["worker_crashes"] = pool.worker_crashes
        benchmark.extra_info["stalls"] = pool.stalls
        benchmark.extra_info["restarts"] = pool.restarts
        benchmark.extra_info["chaos_wall_s"] = round(elapsed, 2)
    finally:
        pool.shutdown()
    quarantined = sorted((tmp_path / "serving_cache" / "results").glob("*/*.npy.corrupt"))
    assert len(quarantined) == 1 and quarantined[0].stem.startswith(corrupt_key)


def _search_config(num_classes: int) -> HGNASConfig:
    return HGNASConfig(
        num_positions=6,
        hidden_dim=12,
        supernet_k=4,
        num_classes=num_classes,
        population_size=4,
        function_iterations=2,
        operation_iterations=2,
        function_epochs=1,
        operation_epochs=1,
        batch_size=5,
        eval_max_batches=1,
        paths_per_function_eval=1,
        seed=0,
    )


def test_search_resume_bit_identical(benchmark, tmp_path):
    """Gate 2: a search killed at a checkpoint resumes to the same result."""
    train, test = make_synthetic_modelnet(num_classes=4, samples_per_class=5, num_points=24, seed=0)
    config = _search_config(train.num_classes)

    baseline = Workspace(device="jetson-tx2", root=tmp_path / "baseline").search(train, test, config=config)

    # The error spec at the checkpoint fault point simulates a SIGKILL
    # landing right after the fourth commit; the committed entry survives.
    interrupted_root = tmp_path / "interrupted"
    plan = FaultPlan.of(FaultSpec(point="nas.search.checkpoint", action="error", after=3, times=1))
    with use_faults(plan):
        with pytest.raises(InjectedFault):
            Workspace(device="jetson-tx2", root=interrupted_root).search(train, test, config=config)

    resumed = benchmark.pedantic(
        lambda: Workspace(device="jetson-tx2", root=interrupted_root).search(
            train, test, config=config, resume=True
        ),
        rounds=1,
        iterations=1,
    )

    assert resumed.best_architecture.to_dict() == baseline.best_architecture.to_dict()
    assert resumed.best_score == baseline.best_score
    assert resumed.best_accuracy == baseline.best_accuracy
    assert resumed.best_latency_ms == baseline.best_latency_ms
    assert resumed.search_time_s == baseline.search_time_s
    assert [(p.iteration, p.best_score, p.clock_s) for p in resumed.history] == [
        (p.iteration, p.best_score, p.clock_s) for p in baseline.history
    ]
    benchmark.extra_info["best_score"] = round(baseline.best_score, 6)
    benchmark.extra_info["search_time_s"] = round(baseline.search_time_s, 3)
