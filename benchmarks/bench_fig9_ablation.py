"""Fig. 9 — search ablations: predictor vs measurement, multi- vs one-stage."""

from repro.experiments import ExperimentScale, run_fig9a, run_fig9b

_SCALE = ExperimentScale(num_classes=5, samples_per_class=5, num_points=32, train_epochs=1, batch_size=5)


def test_fig9a_predictor_vs_measurement(benchmark):
    runs = benchmark.pedantic(
        run_fig9a,
        kwargs={"devices": ("rtx3080",), "scale": _SCALE, "predictor_samples": 150},
        rounds=1,
        iterations=1,
    )
    by_label = {run.label: run for run in runs}
    for label, run in by_label.items():
        benchmark.extra_info[label] = {
            "best_score": round(run.best_score, 3),
            "search_time_s": round(run.search_time_s, 1),
        }
    # Shape (paper Fig. 9a): both reach comparable objective scores, but the
    # measurement-driven search needs much more (virtual) wall-clock time.
    assert by_label["real-time"].search_time_s > by_label["prediction"].search_time_s
    assert by_label["prediction"].best_score > by_label["real-time"].best_score - 0.3


def test_fig9b_multi_stage_vs_one_stage(benchmark):
    runs = benchmark.pedantic(run_fig9b, kwargs={"scale": _SCALE}, rounds=1, iterations=1)
    by_label = {run.label: run for run in runs}
    for label, run in by_label.items():
        benchmark.extra_info[label] = {
            "best_score": round(run.best_score, 3),
            "search_time_s": round(run.search_time_s, 1),
        }
    # Both strategies complete and return usable designs; the hierarchical
    # strategy should not be worse than the flat one by a large margin
    # (the paper shows it converging faster to higher scores).
    assert by_label["multi-stage"].best_score > 0.0
    assert by_label["multi-stage"].best_score >= by_label["one-stage"].best_score - 0.25
