"""Multi-worker serving: aggregate throughput must scale with worker count.

The tentpole claim of the process-pool engine, quantified: a concurrent
load generator (every request dispatched before any result is awaited)
drives the same unique-cloud stream through 1-worker and 4-worker pools,
and the 4-worker pool must serve it at >= 3x the aggregate throughput.
Correctness gates ride along on any machine: pool results bit-identical
to single-process serving for cached and uncached requests, and merged
fleet telemetry totals equal to the sum of the per-worker snapshots.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.hardware import get_device
from repro.nas import device_fast_architecture
from repro.serving import EngineConfig, InferenceEngine, ModelRegistry, PoolConfig, WorkerPoolEngine

NUM_REQUESTS = 32
NUM_POINTS = 192
K = 8
NUM_CLASSES = 10
SCALING_WORKERS = 4
SCALING_FLOOR = 3.0


def _make_registry() -> ModelRegistry:
    registry = ModelRegistry()
    registry.register(
        "bench",
        device_fast_architecture("jetson-tx2"),
        get_device("jetson-tx2"),
        num_classes=NUM_CLASSES,
        k=K,
    )
    return registry


def _unique_stream(count: int = NUM_REQUESTS, num_points: int = NUM_POINTS) -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    return [rng.standard_normal((num_points, 3)) for _ in range(count)]


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _concurrent_rps(pool: WorkerPoolEngine, stream: list[np.ndarray], rounds: int = 2) -> float:
    """Best-of-rounds aggregate requests/s under the concurrent generator.

    All requests are dispatched before any result is awaited, so every
    worker has queued work for the whole measurement window.  Caches are
    disabled by the caller, so every round recomputes every request.
    """
    best = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        futures = [pool.submit("bench", cloud) for cloud in stream]
        results = [future.result(timeout=120) for future in futures]
        elapsed = time.perf_counter() - start
        assert len(results) == len(stream)
        best = max(best, len(results) / elapsed)
    return best


def _nocache_config(max_batch_size: int = 8) -> EngineConfig:
    return EngineConfig(
        max_batch_size=max_batch_size, result_cache_capacity=0, edge_cache_capacity=0
    )


def test_throughput_scales_to_four_workers(benchmark):
    """Aggregate throughput at 4 workers must be >= 3x the 1-worker pool."""
    cores = _usable_cores()
    if cores < SCALING_WORKERS:
        pytest.skip(
            f"scaling gate needs >= {SCALING_WORKERS} usable cores to run "
            f"{SCALING_WORKERS} workers in parallel; this machine has {cores}"
        )
    registry = _make_registry()
    stream = _unique_stream()
    pool_kwargs = dict(shared_cache=False, request_timeout_s=120.0)

    with WorkerPoolEngine(registry, _nocache_config(), PoolConfig(workers=1, **pool_kwargs)) as pool:
        pool.submit_many("bench", stream[:4])  # warm the worker process
        single_rps = _concurrent_rps(pool, stream)

    with WorkerPoolEngine(
        registry, _nocache_config(), PoolConfig(workers=SCALING_WORKERS, **pool_kwargs)
    ) as pool:
        pool.submit_many("bench", stream[: 2 * SCALING_WORKERS])  # warm every worker
        scaled_rps = _concurrent_rps(pool, stream)
        benchmark.pedantic(
            lambda: [f.result(timeout=120) for f in [pool.submit("bench", c) for c in stream]],
            rounds=1,
            iterations=1,
        )

    scaling = scaled_rps / single_rps
    benchmark.extra_info["single_worker_rps"] = round(single_rps, 1)
    benchmark.extra_info[f"workers{SCALING_WORKERS}_rps"] = round(scaled_rps, 1)
    benchmark.extra_info["scaling"] = round(scaling, 2)
    assert scaling >= SCALING_FLOOR, (
        f"aggregate throughput scaled only {scaling:.2f}x from 1 to {SCALING_WORKERS} workers "
        f"({single_rps:.1f} -> {scaled_rps:.1f} req/s); the gate requires >= {SCALING_FLOOR}x"
    )


def test_pool_bit_identical_to_single_process(benchmark):
    """Pool results match in-process serving bit-for-bit, cached and uncached.

    max_batch_size=1 pins every computation to a canonical batch of one —
    the composition-independence regime where bitwise comparison across
    serving topologies is well-defined (BLAS kernels are not bitwise
    stable across batch shapes).
    """
    registry = _make_registry()
    stream = _unique_stream(count=16, num_points=48)
    engine = InferenceEngine(registry, EngineConfig(max_batch_size=1))
    expected = [engine.submit("bench", cloud).logits for cloud in stream]

    with WorkerPoolEngine(
        registry, EngineConfig(max_batch_size=1), PoolConfig(workers=2)
    ) as pool:
        uncached = benchmark.pedantic(
            lambda: pool.submit_many("bench", stream), rounds=1, iterations=1
        )
        # Second wave: served from the result caches (local or shared tier).
        cached = pool.submit_many("bench", stream)

    assert sum(result.from_cache for result in cached) == len(stream)
    for logits, first, second in zip(expected, uncached, cached):
        assert np.array_equal(logits, first.logits)
        assert np.array_equal(logits, second.logits)


def test_fleet_telemetry_totals_equal_worker_sums(benchmark):
    """Merged fleet totals must equal the sum of the per-worker snapshots."""
    registry = _make_registry()
    stream = _unique_stream(count=24, num_points=48)
    pool = WorkerPoolEngine(registry, _nocache_config(), PoolConfig(workers=3))
    try:
        benchmark.pedantic(lambda: pool.submit_many("bench", stream), rounds=1, iterations=1)
    finally:
        pool.shutdown()

    per_worker = [
        int(snapshot["telemetry"]["models"]["bench"]["served"]["value"])
        for snapshot in pool.worker_snapshots.values()
        if "bench" in snapshot["telemetry"]["models"]
    ]
    fleet = pool.fleet_telemetry().model("bench")
    benchmark.extra_info["per_worker_served"] = per_worker
    benchmark.extra_info["fleet_served"] = fleet.served
    assert fleet.served == sum(per_worker) == len(stream)
    assert fleet.batches == sum(
        int(snapshot["telemetry"]["models"]["bench"]["batches"]["value"])
        for snapshot in pool.worker_snapshots.values()
        if "bench" in snapshot["telemetry"]["models"]
    )
