"""Ablation — upper/lower function sharing vs an unshared function space.

Stage 1 of HGNAS shares one function set per supernet half, collapsing the
function space from ``|F|^N`` to ``|F|^2`` (paper Sec. III-C).  This bench
quantifies that reduction and verifies that the shared space still contains
hardware-efficient designs: the best-of-K random architectures drawn from
the shared space should be comparable to the unshared space's best under
the same budget, at a vastly smaller search-space size.
"""

import numpy as np

from repro.hardware import estimate_latency, get_device
from repro.nas import Architecture, DesignSpace, DesignSpaceConfig
from repro.nas.ops import random_function_set


def _best_latency(shared: bool, budget: int = 60, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    space = DesignSpace(DesignSpaceConfig(num_positions=12, k=20, num_points=1024))
    device = get_device("jetson-tx2")
    best = float("inf")
    for _ in range(budget):
        if shared:
            arch = space.random_architecture(rng)
        else:
            # Unshared: every position gets its own random function set; we
            # approximate this by resampling both halves independently per
            # candidate and randomising the operation list.
            arch = Architecture(
                operations=space.random_operations(rng),
                upper_functions=random_function_set(rng),
                lower_functions=random_function_set(rng),
            )
        latency = estimate_latency(arch.to_workload(1024, 20, 40), device).total_ms
        best = min(best, latency)
    return best


def test_ablation_function_sharing(benchmark):
    def run_both():
        return {"shared": _best_latency(True), "unshared": _best_latency(False)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    space = DesignSpace(DesignSpaceConfig(num_positions=12))
    reduction = space.function_space_size(shared=False) / space.function_space_size(shared=True)
    benchmark.extra_info["best_latency_ms"] = {k: round(v, 2) for k, v in results.items()}
    benchmark.extra_info["search_space_reduction"] = f"{reduction:.2e}x"
    # The shared space is astronomically smaller yet still contains designs of
    # comparable hardware efficiency under the same sampling budget.
    assert reduction > 1e6
    assert results["shared"] < results["unshared"] * 2.0
