"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
(laptop-friendly) scale and attaches the reproduced numbers to
``benchmark.extra_info`` so they can be inspected in the pytest-benchmark
JSON output.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Dataset/training scale used by the accuracy-bearing benchmarks."""
    return ExperimentScale(num_classes=6, samples_per_class=6, num_points=32, train_epochs=2, batch_size=6)
