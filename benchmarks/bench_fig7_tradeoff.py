"""Fig. 7 — accuracy / speedup trade-off controlled by the alpha:beta ratio."""

from repro.experiments import ExperimentScale, run_fig7


def test_fig7_alpha_beta_tradeoff(benchmark):
    scale = ExperimentScale(num_classes=5, samples_per_class=5, num_points=32, train_epochs=2, batch_size=5)
    ratios = (0.1, 1.0, 10.0)
    points = benchmark.pedantic(run_fig7, kwargs={"ratios": ratios, "scale": scale}, rounds=1, iterations=1)
    for point in points:
        benchmark.extra_info[f"ratio_{point.ratio}"] = {
            "accuracy": round(point.accuracy, 3),
            "speedup": round(point.speedup_vs_dgcnn, 2),
        }
    assert len(points) == 3
    # Shape: every searched design is faster than DGCNN, and the most
    # latency-weighted objective (smallest alpha:beta) never yields the
    # slowest design of the sweep.
    assert all(p.speedup_vs_dgcnn > 1.0 for p in points)
    slowest = min(points, key=lambda p: p.speedup_vs_dgcnn)
    assert points[0].speedup_vs_dgcnn >= slowest.speedup_vs_dgcnn
