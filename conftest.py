"""Pytest bootstrap: make ``src/`` importable even without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package).  Adding ``src/`` to ``sys.path`` here keeps the test and benchmark
suites runnable either way.
"""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent
for _path in (_ROOT / "src", _ROOT / "tests"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))
