"""Pytest bootstrap: make ``src/`` importable even without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package).  Adding ``src/`` to ``sys.path`` here keeps the test and benchmark
suites runnable either way.

``--backend NAME`` runs the whole suite under that compute backend (see
:mod:`repro.backends`); CI uses it to exercise the kernel tests under
``numpy-blocked`` in addition to the default run.
"""

import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent
for _path in (_ROOT / "src", _ROOT / "tests"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        help="run the suite with this repro compute backend active (e.g. numpy-blocked)",
    )


@pytest.fixture(autouse=True)
def _suite_backend(request):
    name = request.config.getoption("--backend")
    if name is None:
        yield
        return
    from repro.backends import use_backend

    with use_backend(name):
        yield
