"""Train the GNN hardware-performance predictor for each device (paper Fig. 8).

Run with ``python examples/train_latency_predictor.py``.  Takes a couple of
minutes; increase ``NUM_SAMPLES`` / ``EPOCHS`` for better accuracy (the paper
uses 30K samples and 250 epochs).
"""

from repro import api
from repro.experiments import format_table
from repro.hardware import list_devices
from repro.nas import dgcnn_architecture, device_fast_architecture

NUM_SAMPLES = 400
EPOCHS = 100


def main() -> None:
    rows = []
    bundles = {}
    for device in list_devices():
        print(f"Training latency predictor for {device} ({NUM_SAMPLES} sampled architectures) ...")
        bundle = api.train_latency_predictor(device, num_samples=NUM_SAMPLES, epochs=EPOCHS, seed=0)
        bundles[device] = bundle
        rows.append(
            {
                "device": device,
                "mape": round(bundle.metrics.mape, 3),
                "within_10pct": round(bundle.metrics.bound_accuracy_10, 3),
                "within_20pct": round(bundle.metrics.bound_accuracy_20, 3),
                "rank_corr": round(bundle.metrics.spearman, 3),
            }
        )
    print("\n== Predictor accuracy per device (paper Fig. 8) ==")
    print(format_table(rows))

    print("\n== Example predictions (rtx3080) ==")
    predictor = bundles["rtx3080"].predictor
    for arch in (dgcnn_architecture(), device_fast_architecture("rtx3080")):
        predicted = predictor.predict_latency_ms(arch)
        measured = api.measure_latency(arch, "rtx3080")
        print(f"{arch.name:10s} predicted {predicted:8.2f} ms   modelled {measured:8.2f} ms")


if __name__ == "__main__":
    main()
