"""Reproduce the Table II comparison: HGNAS vs DGCNN and the manual baselines.

Run with ``python examples/compare_baselines.py``.  Takes a few minutes
because every model (DGCNN, the two manual baselines and the HGNAS Acc/Fast
designs) is trained on the synthetic benchmark before being costed on every
device with the calibrated hardware model.
"""

from repro.experiments import ExperimentScale, format_table, run_table2


def main() -> None:
    scale = ExperimentScale(num_classes=8, samples_per_class=8, num_points=48, train_epochs=4, batch_size=8)
    rows = run_table2(scale)
    print("== Table II reproduction (synthetic benchmark + calibrated hardware model) ==")
    print(
        format_table(
            [
                {
                    "device": r.device,
                    "network": r.network,
                    "size_mb": round(r.size_mb, 3),
                    "OA": round(r.overall_accuracy, 3),
                    "mAcc": round(r.balanced_accuracy, 3),
                    "latency_ms": round(r.latency_ms, 1),
                    "mem_mb": round(r.peak_memory_mb, 1),
                    "speedup": f"{r.speedup_vs_dgcnn:.1f}x",
                    "mem_red": f"{r.memory_reduction_vs_dgcnn:.0%}",
                }
                for r in rows
            ]
        )
    )


if __name__ == "__main__":
    main()
