"""Profile DGCNN across devices and cloud sizes (paper Figs. 1 and 3).

Run with ``python examples/profile_dgcnn.py``.
"""

from repro.experiments import format_table, run_fig3, run_point_sweep


def main() -> None:
    print("== Execution-time breakdown of DGCNN at 1024 points (Fig. 3) ==")
    rows = [
        {
            "device": row["display_name"],
            "total_ms": round(row["total_latency_ms"], 1),
            "sample": f"{row['sample_fraction']:.1%}",
            "aggregate": f"{row['aggregate_fraction']:.1%}",
            "combine": f"{row['combine_fraction']:.1%}",
            "others": f"{row['others_fraction']:.1%}",
        }
        for row in run_fig3()
    ]
    print(format_table(rows))

    print("\n== Scaling with the number of points on the Raspberry Pi (Fig. 1) ==")
    sweep = run_point_sweep("raspberry-pi")
    rows = [
        {
            "model": row.model,
            "points": row.num_points,
            "latency_s": round(row.latency_ms / 1000, 2),
            "peak_mem_mb": round(row.peak_memory_mb, 1),
            "oom": "OOM" if row.out_of_memory else "",
        }
        for row in sweep
    ]
    print(format_table(rows))


if __name__ == "__main__":
    main()
