"""Run the full HGNAS search for a target edge device, then train the result.

This is the end-to-end workflow of the paper at laptop scale:

1. generate the synthetic point-cloud classification benchmark;
2. run the multi-stage hardware-aware search (Alg. 1) for the chosen device;
3. instantiate the winning architecture as a stand-alone model, train it and
   compare it against DGCNN on accuracy and modelled latency.

Run with ``python examples/search_edge_device.py [device]`` (default: jetson-tx2).
Takes a couple of minutes.
"""

import sys

import numpy as np

from repro import api
from repro.data import make_synthetic_modelnet
from repro.hardware import dgcnn_workload, estimate_latency, get_device
from repro.models import DGCNN, DGCNNConfig
from repro.nas import HGNASConfig, render_architecture
from repro.nas.trainer import evaluate_classifier, train_classifier


def main(device_name: str = "jetson-tx2") -> None:
    device = get_device(device_name)
    print(f"Searching an efficient GNN for {device.display_name} ...")

    train_set, test_set = make_synthetic_modelnet(num_classes=8, samples_per_class=10, num_points=48, seed=0)
    config = HGNASConfig(
        num_positions=12,
        hidden_dim=24,
        supernet_k=8,
        num_classes=train_set.num_classes,
        population_size=10,
        function_iterations=3,
        operation_iterations=6,
        function_epochs=2,
        operation_epochs=3,
        batch_size=8,
        eval_max_batches=3,
        beta=0.5,
        seed=0,
    )
    result = api.search_architecture(device, train_set, test_set, config=config)

    print("\n== Searched architecture ==")
    print(render_architecture(result.best_architecture, title=f"{device.display_name} design"))
    print(f"objective score      : {result.best_score:.3f}")
    print(f"predicted latency    : {result.best_latency_ms:.1f} ms (at 1024 points)")
    print(f"search time (virtual): {result.search_time_s / 3600:.2f} GPU-hours equivalent")

    dgcnn_latency = estimate_latency(dgcnn_workload(1024), device).total_ms
    print(f"DGCNN latency        : {dgcnn_latency:.1f} ms  -> speedup {dgcnn_latency / result.best_latency_ms:.1f}x")

    print("\nTraining the searched model and a DGCNN baseline for comparison ...")
    rng = np.random.default_rng(0)
    searched = api.build_model(result.best_architecture, num_classes=train_set.num_classes, k=8, embed_dim=48)
    train_classifier(searched, train_set, epochs=6, batch_size=8, rng=rng)
    searched_acc = evaluate_classifier(searched, test_set).overall_accuracy

    baseline = DGCNN(DGCNNConfig(num_classes=train_set.num_classes, k=8, layer_dims=(24, 24, 48), embed_dim=48))
    train_classifier(baseline, train_set, epochs=6, batch_size=8, rng=rng)
    baseline_acc = evaluate_classifier(baseline, test_set).overall_accuracy

    print(f"searched model accuracy: {searched_acc:.3f}")
    print(f"DGCNN accuracy         : {baseline_acc:.3f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "jetson-tx2")
