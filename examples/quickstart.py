"""Quickstart: profile DGCNN on every edge device and inspect an HGNAS design.

Run with ``python examples/quickstart.py`` (takes a few seconds).  The same
information is available from the CLI (``repro devices``, ``repro profile``),
and ``examples/workspace_pipeline.py`` shows the full cached pipeline.
"""

from repro.experiments import format_table
from repro.hardware import (
    all_devices,
    dgcnn_workload,
    estimate_latency,
    estimate_peak_memory,
)
from repro.nas import device_fast_architecture, render_architecture


def main() -> None:
    print("== DGCNN (1024 points) on the paper's four edge devices ==")
    rows = []
    for device in all_devices():
        workload = dgcnn_workload(1024)
        latency = estimate_latency(workload, device)
        memory = estimate_peak_memory(workload, device)
        rows.append(
            {
                "device": device.display_name,
                "latency_ms": round(latency.total_ms, 1),
                "peak_mem_mb": round(memory.peak_mb, 1),
                "dominant": max(latency.category_ms(), key=latency.category_ms().get),
            }
        )
    print(format_table(rows))

    print("\n== HGNAS design for the Raspberry Pi (Fig. 10 style) ==")
    architecture = device_fast_architecture("raspberry-pi")
    print(render_architecture(architecture))

    pi = all_devices()[-1]
    hgnas = architecture.to_workload(1024, 20, 40)
    speedup = estimate_latency(dgcnn_workload(1024), pi).total_ms / estimate_latency(hgnas, pi).total_ms
    print(f"\nSpeedup over DGCNN on {pi.display_name}: {speedup:.1f}x")


if __name__ == "__main__":
    main()
