"""Search an architecture, deploy it and serve classification traffic.

The full deployment workflow the serving subsystem enables:

1. run a (laptop-scale) HGNAS search for a target edge device;
2. train the winning architecture briefly and register it in a
   :class:`~repro.serving.registry.ModelRegistry` with a latency SLO;
3. serve a synthetic request stream — with repeated inputs, as production
   traffic has — through the batched, cached inference engine;
4. print the telemetry report (latency percentiles, throughput, cache
   hit rates).

Run with ``python examples/serve_searched_model.py [device]`` (default:
jetson-tx2).  Takes well under a minute on a laptop CPU.
"""

import sys

import numpy as np

from repro import api
from repro.data import make_synthetic_modelnet
from repro.hardware import get_device
from repro.nas import HGNASConfig, render_architecture
from repro.serving import EngineConfig

def main(device_name: str = "jetson-tx2") -> None:
    device = get_device(device_name)

    print(f"[1/3] searching an efficient GNN for {device.display_name} ...")
    train_set, test_set = make_synthetic_modelnet(num_classes=6, samples_per_class=8, num_points=32, seed=0)
    config = HGNASConfig(
        num_positions=12,
        hidden_dim=16,
        supernet_k=6,
        num_classes=train_set.num_classes,
        population_size=6,
        function_iterations=2,
        operation_iterations=3,
        function_epochs=1,
        operation_epochs=1,
        batch_size=8,
        eval_max_batches=2,
        beta=0.5,
        seed=0,
    )
    result = api.search_architecture(device, train_set, test_set, config=config)
    print(render_architecture(result.best_architecture, title=f"{device.display_name} design"))

    print("[2/3] deploying (brief training + registration) ...")
    deployed = api.deploy_architecture(
        result.best_architecture,
        device,
        num_classes=train_set.num_classes,
        name="searched",
        k=6,
        embed_dim=32,
        slo_ms=5.0 * max(result.best_latency_ms, 1.0),
        train_dataset=train_set,
        train_epochs=8,
    )
    print(f"registered '{deployed.name}' for {device.display_name} (SLO {deployed.slo_ms:.1f} ms)")

    print("[3/3] serving a test-set request stream ...")
    rng = np.random.default_rng(1)
    unique = [sample.points for sample in test_set]
    # Production-style stream: every third request repeats an earlier cloud.
    stream = []
    for index in range(60):
        if index % 3 == 2:
            stream.append(unique[int(rng.integers(0, len(unique)))])
        else:
            stream.append(unique[index % len(unique)])
    report = api.serve(deployed, stream, EngineConfig(max_batch_size=8))

    # A second burst of recurring traffic against the warm engine: repeated
    # clouds are now served straight from the result cache.
    warm_results = report.engine.submit_many(deployed.name, stream[:30])

    labels = [r.label for r in report.results]
    print(f"served {len(report.results)} + {len(warm_results)} requests; "
          f"label histogram: {np.bincount(labels, minlength=train_set.num_classes)}")
    print(report.engine.format_report())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "jetson-tx2")
