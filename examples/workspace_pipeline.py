"""The full pipeline through one Workspace, with persisted stage artifacts.

Runs profile -> train_predictor -> search -> deploy -> serve for a target
device through a single :class:`repro.workspace.Workspace`, persisting
every stage in a content-addressed artifact store.  Run it twice to see
the second run hit the store: the predictor and the search result load
from disk instead of re-training.

Run with ``python examples/workspace_pipeline.py [device]`` (default:
jetson-tx2).  Takes well under a minute cold, a second or two warm.
The equivalent CLI: ``repro predict|search|serve --root .repro-artifacts``.
"""

import sys
import time

import numpy as np

from repro.data import make_synthetic_modelnet
from repro.nas import HGNASConfig, render_architecture
from repro.workspace import Workspace

ARTIFACT_ROOT = ".repro-artifacts"


def main(device_name: str = "jetson-tx2") -> None:
    workspace = Workspace(device=device_name, root=ARTIFACT_ROOT)
    print(f"workspace for {workspace.device.display_name}, artifacts in {workspace.root}/")

    print("\n[1/4] latency predictor (cached across runs) ...")
    start = time.perf_counter()
    # num_positions matches the search config below, so the search's
    # predictor oracle reuses this artifact instead of training its own.
    bundle = workspace.train_predictor(num_samples=150, epochs=25, num_positions=8)
    print(
        f"  mape={bundle.metrics.mape:.3f} rank_corr={bundle.metrics.spearman:.3f} "
        f"({time.perf_counter() - start:.2f}s)"
    )

    print("[2/4] hardware-aware search with the predictor oracle ...")
    train_set, val_set = make_synthetic_modelnet(num_classes=6, samples_per_class=8, num_points=32, seed=0)
    config = HGNASConfig(
        num_positions=8,
        hidden_dim=16,
        supernet_k=6,
        num_classes=train_set.num_classes,
        population_size=6,
        function_iterations=2,
        operation_iterations=4,
        function_epochs=1,
        operation_epochs=1,
        batch_size=8,
        eval_max_batches=2,
        seed=0,
    )
    start = time.perf_counter()
    result = workspace.search(
        train_set, val_set, config=config, latency_oracle="predictor", predictor_num_samples=150, predictor_epochs=25
    )
    print(f"  best score {result.best_score:.3f}, latency {result.best_latency_ms:.2f} ms "
          f"({time.perf_counter() - start:.2f}s)")
    print(render_architecture(result.best_architecture, title=f"{workspace.device.display_name} design"))

    print("[3/4] deploying the winner (trained weights cached too) ...")
    deployed = workspace.deploy(
        result.best_architecture,
        num_classes=train_set.num_classes,
        name="searched",
        k=6,
        embed_dim=32,
        train_dataset=train_set,
        train_epochs=4,
    )
    print(f"  registered '{deployed.name}' (k={deployed.k}, embed_dim={deployed.embed_dim})")

    print("[4/4] serving a request stream through the warm engine ...")
    rng = np.random.default_rng(1)
    unique = [sample.points for sample in val_set]
    stream = [unique[int(rng.integers(0, len(unique)))] for _ in range(40)]
    report = workspace.serve(stream)
    print(report.engine.format_report())

    stats = workspace.cache_stats()
    print(f"\nartifact store: {stats['hits']} hits, {stats['misses']} misses — run me again for warm hits")


if __name__ == "__main__":
    main(*sys.argv[1:2])
