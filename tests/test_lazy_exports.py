"""Satellite coverage: every lazy root re-export must resolve and be dir()-visible."""

import importlib

import pytest

import repro


class TestLazyExports:
    def test_every_lazy_name_resolves(self):
        for name, module_name in repro._LAZY_EXPORTS.items():
            value = getattr(repro, name)
            assert value is getattr(importlib.import_module(module_name), name), name

    def test_every_lazy_name_in_dir_and_all(self):
        listing = dir(repro)
        for name in repro._LAZY_EXPORTS:
            assert name in listing, name
            assert name in repro.__all__, name

    def test_workspace_and_registry_names_exported(self):
        expected = {
            "Workspace",
            "InferenceDefaults",
            "ArtifactStore",
            "register_device",
            "unregister_device",
            "register_latency_evaluator",
            "list_latency_evaluators",
        }
        assert expected <= set(repro._LAZY_EXPORTS)
        from repro.workspace import Workspace

        assert repro.Workspace is Workspace

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_export

    def test_resolved_names_are_cached_in_globals(self):
        repro.Workspace
        assert "Workspace" in vars(repro)
