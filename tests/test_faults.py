"""Tests for the deterministic fault-injection harness and the recovery
paths it drives: plan semantics, activation, corrupt-store quarantine,
client-side resilience policies and checkpoint/resume of the search."""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

import repro.faults.injector as injector_module
from repro.faults import (
    ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_point,
    get_injector,
    reset_faults,
    use_faults,
)
from repro.hardware import get_device
from repro.nas import HGNAS, HGNASConfig, OracleLatencyEvaluator
from repro.nas.checkpoint import CHECKPOINT_STAGE, SearchCheckpointer
from repro.serving import CircuitBreaker, CircuitOpenError, RetryPolicy, SharedArrayCache
from repro.serving.frontend import AsyncServingFrontend, FrontendTimeoutError, request_over_tcp
from repro.workspace.store import ArtifactStore


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Every test starts and ends with no plan active and no env leakage."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_faults()
    yield
    reset_faults()


# ---------------------------------------------------------------------- #
# Plan data model
# ---------------------------------------------------------------------- #
class TestFaultSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point": "", "action": "error"},
            {"point": "p", "action": "segfault"},
            {"point": "p", "action": "error", "after": -1},
            {"point": "p", "action": "error", "times": -1},
            {"point": "p", "action": "delay", "delay_s": -0.5},
            {"point": "p", "action": "error", "probability": 0.0},
            {"point": "p", "action": "error", "probability": 1.5},
        ],
    )
    def test_invalid_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_match_requires_every_item(self):
        spec = FaultSpec(point="p", action="drop", match={"worker": 1, "model": "m"})
        assert spec.matches({"worker": 1, "model": "m", "extra": 0})
        assert not spec.matches({"worker": 1})
        assert not spec.matches({"worker": 2, "model": "m"})
        assert FaultSpec(point="p", action="drop").matches({})

    def test_plan_json_round_trip(self):
        plan = FaultPlan.of(
            FaultSpec(point="a.b", action="crash", after=3, times=1, match={"worker": 0}),
            FaultSpec(point="c.d", action="delay", delay_s=0.25, probability=0.5, seed=7),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


# ---------------------------------------------------------------------- #
# Injector semantics
# ---------------------------------------------------------------------- #
class TestFaultInjector:
    def test_after_and_times_window(self):
        injector = FaultInjector(FaultPlan.of(FaultSpec(point="p", action="drop", after=2, times=2)))
        fired = [injector.fire("p") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert injector.fired_count("p") == 2
        assert injector.history == [("p", "drop"), ("p", "drop")]

    def test_times_zero_is_unlimited(self):
        injector = FaultInjector(FaultPlan.of(FaultSpec(point="p", action="drop", times=0)))
        assert all(injector.fire("p") is not None for _ in range(5))

    def test_match_scopes_hit_counting(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(point="p", action="drop", after=1, times=1, match={"worker": 1}))
        )
        # Non-matching visits never consume the 'after' window.
        assert injector.fire("p", worker=0) is None
        assert injector.fire("p", worker=0) is None
        assert injector.fire("p", worker=1) is None  # first matching visit: skipped by after=1
        assert injector.fire("p", worker=1) is not None
        assert injector.fire("p", worker=1) is None  # times exhausted

    def test_first_matching_spec_wins_then_falls_through(self):
        injector = FaultInjector(
            FaultPlan.of(
                FaultSpec(point="p", action="drop", times=1),
                FaultSpec(point="p", action="corrupt", times=1),
            )
        )
        assert injector.fire("p").action == "drop"
        assert injector.fire("p").action == "corrupt"
        assert injector.fire("p") is None

    def test_probability_is_seeded_and_replayable(self):
        spec = FaultSpec(point="p", action="drop", times=0, probability=0.4, seed=11)
        injector_a = FaultInjector(FaultPlan.of(spec))
        injector_b = FaultInjector(FaultPlan.of(spec))
        pattern_a = [injector_a.fire("p") is not None for _ in range(40)]
        pattern_b = [injector_b.fire("p") is not None for _ in range(40)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_error_action_raises_injected_fault(self):
        injector = FaultInjector(FaultPlan.of(FaultSpec(point="p.q", action="error", message="boom")))
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("p.q")
        assert excinfo.value.point == "p.q"
        assert "boom" in str(excinfo.value)

    def test_delay_action_sleeps(self):
        injector = FaultInjector(FaultPlan.of(FaultSpec(point="p", action="delay", delay_s=0.05)))
        start = time.perf_counter()
        assert injector.fire("p").action == "delay"
        assert time.perf_counter() - start >= 0.05


# ---------------------------------------------------------------------- #
# Activation: context manager and environment
# ---------------------------------------------------------------------- #
class TestActivation:
    def test_fault_point_is_noop_without_plan(self):
        assert fault_point("anything.here", worker=3) is None

    def test_use_faults_activates_and_restores(self, monkeypatch):
        plan = FaultPlan.of(FaultSpec(point="p", action="drop", times=0))
        assert get_injector() is None
        with use_faults(plan) as injector:
            assert get_injector() is injector
            assert fault_point("p") is not None
            # Children spawned inside the context inherit the plan via env.
            assert FaultPlan.from_json(injector_module.os.environ[ENV_VAR]) == plan
        assert get_injector() is None
        assert ENV_VAR not in injector_module.os.environ

    def test_use_faults_nests(self):
        outer = FaultPlan.of(FaultSpec(point="outer", action="drop", times=0))
        inner = FaultPlan.of(FaultSpec(point="inner", action="drop", times=0))
        with use_faults(outer):
            with use_faults(inner):
                assert fault_point("inner") is not None
                assert fault_point("outer") is None
            assert fault_point("outer") is not None
            assert FaultPlan.from_json(injector_module.os.environ[ENV_VAR]) == outer

    def test_env_var_builds_injector_lazily(self, monkeypatch):
        plan = FaultPlan.of(FaultSpec(point="p", action="drop", times=2))
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        # Simulate a fresh child process: no injector, env not yet checked.
        monkeypatch.setattr(injector_module, "_INJECTOR", None)
        monkeypatch.setattr(injector_module, "_ENV_CHECKED", False)
        injector = get_injector()
        assert injector is not None and injector.plan == plan
        assert fault_point("p") is not None

    def test_reset_faults_deactivates(self, monkeypatch):
        plan = FaultPlan.of(FaultSpec(point="p", action="drop", times=0))
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        monkeypatch.setattr(injector_module, "_INJECTOR", None)
        monkeypatch.setattr(injector_module, "_ENV_CHECKED", False)
        assert fault_point("p") is not None
        reset_faults()
        # Deactivation sticks even though the env var is still set.
        assert fault_point("p") is None


# ---------------------------------------------------------------------- #
# Corrupt-entry recovery: shared cache and artifact store
# ---------------------------------------------------------------------- #
class TestSharedCacheQuarantine:
    def test_garbled_entry_reads_as_miss_and_is_quarantined(self, tmp_path):
        cache = SharedArrayCache(tmp_path)
        cache.put_if_absent("k1", np.arange(4.0))
        path = cache._path("k1")
        path.write_bytes(b"\x00not-an-npy\x00")
        assert cache.get("k1") is None
        assert cache.quarantined == 1 and cache.misses == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        # The key is free again: recompute, re-store, and read back cleanly.
        assert cache.put_if_absent("k1", np.arange(4.0))
        np.testing.assert_array_equal(cache.get("k1"), np.arange(4.0))
        assert cache.stats_dict()["quarantined"] == 1

    def test_fault_plan_drives_the_real_corruption_path(self, tmp_path):
        cache = SharedArrayCache(tmp_path)
        cache.put_if_absent("bad0", np.ones(3))
        cache.put_if_absent("good", np.full(3, 2.0))
        plan = FaultPlan.of(
            FaultSpec(point="serving.diskcache.get", action="corrupt", match={"key": "bad0"})
        )
        with use_faults(plan):
            assert cache.get("bad0") is None  # garbled in place, quarantined
            np.testing.assert_array_equal(cache.get("good"), np.full(3, 2.0))
        assert cache.quarantined == 1

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = SharedArrayCache(tmp_path)
        cache.put_if_absent("k", np.arange(100.0))
        path = cache._path("k")
        path.write_bytes(path.read_bytes()[:40])  # torn write: valid magic, short payload
        assert cache.get("k") is None
        assert cache.quarantined == 1


class TestArtifactStoreIntegrity:
    def _save_entry(self, root):
        store = ArtifactStore(root)
        store.save("stage", "key", {"value": 7}, {"w": np.arange(6.0)})
        return store._entry_dir("stage", "key")

    def test_checksum_stamped_and_verified(self, tmp_path):
        directory = self._save_entry(tmp_path)
        document = json.loads((directory / "meta.json").read_text())
        assert document["checksum"]
        # Flip bytes inside the committed arrays file; a fresh store (no
        # memory layer) must detect the mismatch and discard the entry.
        arrays_path = directory / "arrays.npz"
        blob = bytearray(arrays_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        arrays_path.write_bytes(bytes(blob))
        fresh = ArtifactStore(tmp_path)
        assert fresh.load("stage", "key") is None
        assert fresh.corrupt == 1 and fresh.stats()["corrupt"] == 1
        assert not fresh.contains("stage", "key")
        # The slot is reusable: a recompute + save round-trips again.
        fresh.save("stage", "key", {"value": 7}, {"w": np.arange(6.0)})
        np.testing.assert_array_equal(ArtifactStore(tmp_path).load("stage", "key").arrays["w"], np.arange(6.0))

    def test_fault_plan_truncates_arrays_on_load(self, tmp_path):
        self._save_entry(tmp_path)
        plan = FaultPlan.of(FaultSpec(point="workspace.store.load", action="corrupt"))
        fresh = ArtifactStore(tmp_path)
        with use_faults(plan):
            assert fresh.load("stage", "key") is None
        assert fresh.corrupt == 1

    def test_unreadable_meta_discarded(self, tmp_path):
        directory = self._save_entry(tmp_path)
        (directory / "meta.json").write_text("{not json")
        fresh = ArtifactStore(tmp_path)
        assert fresh.load("stage", "key") is None
        assert fresh.corrupt == 1


# ---------------------------------------------------------------------- #
# Client-side resilience policies
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_schedule_is_bounded_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1, multiplier=2.0, max_backoff_s=0.5)
        assert [policy.backoff(attempt) for attempt in (1, 2, 3, 4, 5)] == [0.1, 0.2, 0.4, 0.5, 0.5]

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_attempts": 0}, {"backoff_s": -1.0}, {"multiplier": 0.5}, {"max_backoff_s": -0.1}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCircuitBreaker:
    def test_state_machine(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0, clock=lambda: now[0])
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()  # still closed below the threshold
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        now[0] = 10.0
        assert breaker.state == "half-open"
        breaker.allow()  # the single probe is admitted...
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # ...concurrent requests keep failing fast
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_failed_probe_reopens_for_full_timeout(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0, clock=lambda: now[0])
        breaker.record_failure()
        now[0] = 5.0
        breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 9.9
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        now[0] = 10.0
        breaker.allow()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1.0)


# ---------------------------------------------------------------------- #
# TCP timeouts surface as typed errors, never hangs
# ---------------------------------------------------------------------- #
class TestTcpTimeouts:
    def test_read_timeout_against_mute_server(self):
        async def scenario():
            async def mute(reader, writer):
                await reader.readline()  # swallow the request, never answer

            server = await asyncio.start_server(mute, host="127.0.0.1", port=0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(FrontendTimeoutError):
                    await request_over_tcp(
                        host, port, [{"model": "m", "points": [[0.0, 0.0, 0.0]]}], read_timeout_s=0.2
                    )
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_idle_connection_told_why_then_dropped(self):
        async def scenario():
            # The idle-timeout path runs before any pool interaction, so the
            # frontend does not need a live pool behind it.
            frontend = AsyncServingFrontend(pool=None, idle_timeout_s=0.1)
            host, port = await frontend.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                message = json.loads(line)
                assert message["ok"] is False
                assert message["error"] == "FrontendTimeoutError"
                writer.close()
            finally:
                await frontend.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------- #
# Search checkpointing and resume
# ---------------------------------------------------------------------- #
class TestSearchCheckpointer:
    def test_cadence(self, tmp_path):
        checkpointer = SearchCheckpointer(ArtifactStore(tmp_path), "key", every=3)
        assert [epoch for epoch in range(7) if checkpointer.accepts(epoch)] == [0, 3, 6]
        assert SearchCheckpointer(ArtifactStore(tmp_path), "key").accepts(5)
        with pytest.raises(ValueError):
            SearchCheckpointer(ArtifactStore(tmp_path), "key", every=0)

    def test_save_load_clear_round_trip(self, tmp_path):
        checkpointer = SearchCheckpointer(ArtifactStore(tmp_path), "key")
        assert checkpointer.load() is None
        checkpointer.save({"phase": "stage1_supernet", "progress": 2}, {"w": np.arange(3.0)})
        assert checkpointer.saves == 1
        # A later save overwrites the single slot.
        checkpointer.save({"phase": "stage1_functions", "progress": 0})
        meta, arrays = SearchCheckpointer(ArtifactStore(tmp_path), "key").load()
        assert meta["phase"] == "stage1_functions" and arrays == {}
        checkpointer.clear()
        assert checkpointer.load() is None

    def test_kill_at_checkpoint_leaves_committed_entry(self, tmp_path):
        checkpointer = SearchCheckpointer(ArtifactStore(tmp_path), "key")
        plan = FaultPlan.of(FaultSpec(point="nas.search.checkpoint", action="error", times=1))
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                checkpointer.save({"phase": "stage1_supernet", "progress": 0})
        # The fault fires *after* the commit — the entry survives the kill.
        meta, _ = SearchCheckpointer(ArtifactStore(tmp_path), "key").load()
        assert meta["progress"] == 0


class TestSearchResume:
    def _make_search(self, tiny_train, tiny_test):
        config = HGNASConfig(
            num_positions=6,
            hidden_dim=12,
            supernet_k=4,
            num_classes=4,
            population_size=4,
            function_iterations=2,
            operation_iterations=2,
            function_epochs=1,
            operation_epochs=1,
            batch_size=5,
            eval_max_batches=1,
            paths_per_function_eval=1,
            seed=0,
        )
        evaluator = OracleLatencyEvaluator(get_device("jetson-tx2"), num_points=256, k=10, num_classes=4)
        return HGNAS(config, tiny_train, tiny_test, evaluator, rng=np.random.default_rng(0))

    def test_kill_and_resume_is_bit_identical(self, tiny_train, tiny_test, tmp_path):
        baseline = self._make_search(tiny_train, tiny_test).run()
        # Interrupted run: an error spec at the checkpoint fault point
        # simulates a kill landing right after the third commit.
        plan = FaultPlan.of(FaultSpec(point="nas.search.checkpoint", action="error", after=2, times=1))
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                self._make_search(tiny_train, tiny_test).run(
                    checkpointer=SearchCheckpointer(ArtifactStore(tmp_path), "run")
                )
        # Resume with a fresh search object and a fresh store (disk only).
        checkpointer = SearchCheckpointer(ArtifactStore(tmp_path), "run")
        resumed = self._make_search(tiny_train, tiny_test).run(checkpointer=checkpointer)
        assert resumed.best_architecture.key() == baseline.best_architecture.key()
        assert resumed.best_score == baseline.best_score
        assert resumed.best_accuracy == baseline.best_accuracy
        assert resumed.search_time_s == baseline.search_time_s
        assert [point.best_score for point in resumed.history] == [
            point.best_score for point in baseline.history
        ]
        # The checkpoint slot is cleared once the search completes.
        assert checkpointer.load() is None
        assert ArtifactStore(tmp_path).keys(CHECKPOINT_STAGE) == []

    def test_strategy_mismatch_rejected(self, tiny_train, tiny_test, tmp_path):
        checkpointer = SearchCheckpointer(ArtifactStore(tmp_path), "run")
        plan = FaultPlan.of(FaultSpec(point="nas.search.checkpoint", action="error", times=1))
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                self._make_search(tiny_train, tiny_test).run(checkpointer=checkpointer)
        with pytest.raises(ValueError, match="cannot resume"):
            self._make_search(tiny_train, tiny_test).run_one_stage(
                checkpointer=SearchCheckpointer(ArtifactStore(tmp_path), "run")
            )
