"""Tests for the pluggable compute-backend registry (``repro.backends``).

Covers the registry semantics, per-backend equivalence of every kernel
primitive call site against the ``numpy`` reference, the deprecated fused
toggle shims, and the backend plumbing through the serving engine, the
workspace, the calibration hook and the CLI.
"""

import numpy as np
import pytest

from repro.backends import (
    ComputeBackend,
    NumbaBackend,
    NumpyBackend,
    NumpyBlockedBackend,
    active_backend,
    active_backend_name,
    backend_status,
    get_backend,
    list_backends,
    register_backend,
    set_active_backend,
    unregister_backend,
    use_backend,
)
from repro.cli.main import main as cli_main
from repro.graph import (
    FUSED_MESSAGE_TYPES,
    build_messages,
    fused_aggregate,
    fused_edgeconv,
    knn_graph,
    scatter,
    use_fused_kernels,
)
from repro.graph.fused import fused_kernels_enabled, set_fused_kernels
from repro.hardware.calibration import PAPER_TARGETS, calibrate_backend_target, calibrate_coefficients
from repro.models.edgeconv import EdgeConv
from repro.nn import MLP, Tensor, default_dtype, no_grad
from repro.nn.functional import embedding_lookup, matmul
from repro.serving.engine import EngineConfig, InferenceEngine
from repro.workspace import Workspace

#: Every backend that ships with the repo and is importable here.
EQUIVALENCE_BACKENDS = [name for name in ("numpy-blocked", "materialized", "numba") if name in list_backends()]


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """No test may leak a non-default active backend into the next one."""
    before = active_backend_name()
    yield
    set_active_backend(before)


class TestRegistry:
    def test_shipped_backends_registered(self, request):
        names = list_backends()
        assert "numpy" in names
        assert "numpy-blocked" in names
        assert "materialized" in names
        # The suite-wide --backend option (conftest.py) pins the active
        # backend; without it the reference backend is the default.
        expected = request.config.getoption("--backend") or "numpy"
        assert active_backend_name() == expected

    def test_get_backend_canonicalizes_and_reports_unknown(self):
        assert get_backend("NumPy").name == "numpy"
        assert get_backend("  numpy-blocked ").name == "numpy-blocked"
        with pytest.raises(KeyError, match="registered"):
            get_backend("cuda")

    def test_duplicate_registration_requires_replace(self):
        class Dummy(NumpyBackend):
            name = "dummy-test-backend"

        try:
            register_backend(Dummy())
            with pytest.raises(ValueError, match="already registered"):
                register_backend(Dummy())
            register_backend(Dummy(), replace=True)
        finally:
            unregister_backend("dummy-test-backend")
        assert "dummy-test-backend" not in list_backends()

    def test_reference_backend_cannot_be_removed(self):
        with pytest.raises(ValueError):
            unregister_backend("numpy")

    def test_unregistering_active_backend_resets_to_reference(self):
        class Doomed(NumpyBackend):
            name = "doomed-test-backend"

        register_backend(Doomed())
        set_active_backend("doomed-test-backend")
        unregister_backend("doomed-test-backend")
        assert active_backend_name() == "numpy"

    def test_use_backend_nests_and_restores_on_error(self):
        ambient = active_backend_name()
        with use_backend("numpy-blocked") as outer:
            assert outer.name == "numpy-blocked"
            assert active_backend_name() == "numpy-blocked"
            with use_backend("materialized"):
                assert active_backend_name() == "materialized"
            assert active_backend_name() == "numpy-blocked"
        assert active_backend_name() == ambient
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("materialized"):
                raise RuntimeError("boom")
        assert active_backend_name() == ambient

    def test_backend_status_lists_optional_backends(self):
        rows = {row["name"]: row for row in backend_status()}
        assert rows["numpy"]["available"]
        assert rows[active_backend_name()]["active"]
        assert rows["materialized"]["fused_dispatch"] is False
        # numba is optional: present either as registered or as unavailable.
        assert "numba" in rows
        if not NumbaBackend.is_available():
            assert rows["numba"]["available"] is False

    def test_abstract_backend_has_no_kernels(self):
        base = ComputeBackend()
        with pytest.raises(NotImplementedError):
            base.matmul(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(NotImplementedError):
            base.gather(np.ones((2, 2)), np.array([0]))

    def test_metric_name_is_dot_segment_safe(self):
        assert NumpyBlockedBackend().metric_name == "numpy_blocked"
        assert NumpyBackend().metric_name == "numpy"


class TestPrimitiveEquivalence:
    """Each shipped backend matches the numpy reference primitive-by-primitive."""

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_matmul(self, backend_name, rng):
        reference = get_backend("numpy")
        backend = get_backend(backend_name)
        # K=300 exceeds the blocked backend's K-block of 128.
        a = rng.normal(size=(17, 300)).astype(np.float32)
        b = rng.normal(size=(300, 23)).astype(np.float32)
        np.testing.assert_allclose(backend.matmul(a, b), reference.matmul(a, b), rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("aggregator", ["sum", "mean", "max", "min"])
    def test_segment_reduce(self, backend_name, aggregator, rng):
        reference = get_backend("numpy")
        backend = get_backend(backend_name)
        # Ragged segments over a width beyond the column block of 32.
        counts = np.array([3, 1, 7, 2, 5], dtype=np.int64)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        values = rng.normal(size=(int(counts.sum()), 50)).astype(np.float32)
        got = backend.segment_reduce(values, starts, counts, aggregator)
        want = reference.segment_reduce(values, starts, counts, aggregator)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_uniform_degree_segment_reduce(self, backend_name, rng):
        reference = get_backend("numpy")
        backend = get_backend(backend_name)
        counts = np.full(6, 4, dtype=np.int64)
        starts = np.arange(6, dtype=np.int64) * 4
        values = rng.normal(size=(24, 40)).astype(np.float32)
        for aggregator in ("sum", "mean", "max", "min"):
            got = backend.segment_reduce(values, starts, counts, aggregator)
            want = reference.segment_reduce(values, starts, counts, aggregator)
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_scatter_primitives(self, backend_name, rng):
        reference = get_backend("numpy")
        backend = get_backend(backend_name)
        index = rng.integers(0, 5, size=40)
        values = rng.normal(size=(40, 7)).astype(np.float32)
        out_got = np.zeros((5, 7), dtype=np.float32)
        out_want = np.zeros((5, 7), dtype=np.float32)
        backend.scatter_add(out_got, index, values)
        reference.scatter_add(out_want, index, values)
        np.testing.assert_allclose(out_got, out_want, rtol=1e-6, atol=1e-6)
        for mode, fill in (("max", -np.inf), ("min", np.inf)):
            ext_got = np.full((5, 7), fill, dtype=np.float32)
            ext_want = np.full((5, 7), fill, dtype=np.float32)
            backend.scatter_extreme(ext_got, index, values, mode)
            reference.scatter_extreme(ext_want, index, values, mode)
            np.testing.assert_array_equal(ext_got, ext_want)
        np.testing.assert_array_equal(backend.gather(values, index), reference.gather(values, index))

    def test_scatter_extreme_rejects_unknown_mode(self):
        backend = get_backend("numpy")
        with pytest.raises(ValueError):
            backend.scatter_extreme(np.zeros((2, 2)), np.array([0, 1]), np.ones((2, 2)), "median")


class TestKernelEquivalence:
    """Full ops produce equivalent results and gradients under every backend."""

    def _reference_forward_backward(self, points, edge_index, mlp, message_type, aggregator, dtype):
        with default_dtype(dtype), use_backend("numpy"):
            x = Tensor(points.copy(), requires_grad=True)
            out = fused_edgeconv(x, edge_index, mlp, message_type=message_type, aggregator=aggregator)
            out.sum().backward()
            grads = {name: p.grad.copy() for name, p in mlp.named_parameters()}
            mlp.zero_grad()
        return out.data.copy(), x.grad.copy(), grads

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize("message_type", FUSED_MESSAGE_TYPES)
    def test_fused_edgeconv_matches_reference(self, backend_name, dtype, message_type, rng):
        from repro.graph import message_dim

        points = rng.normal(size=(40, 3))
        edge_index = knn_graph(points, 5)
        tol = dict(rtol=1e-4, atol=1e-5) if dtype == "float32" else dict(rtol=1e-9, atol=1e-11)
        for aggregator in ("sum", "max"):
            with default_dtype(dtype):
                width = message_dim(message_type, 3)
                # Hidden width 40 exceeds the blocked column block of 32.
                mlp = MLP([width, 40, 8], activation="leaky_relu", final_activation=True,
                          rng=np.random.default_rng(3))
            expected, x_grad, w_grads = self._reference_forward_backward(
                points, edge_index, mlp, message_type, aggregator, dtype
            )
            with default_dtype(dtype), use_backend(backend_name):
                x = Tensor(points.copy(), requires_grad=True)
                out = fused_edgeconv(
                    x, edge_index, mlp, message_type=message_type, aggregator=aggregator
                )
                out.sum().backward()
            assert out.shape == expected.shape
            np.testing.assert_allclose(out.data, expected, **tol)
            assert x.grad.shape == points.shape
            np.testing.assert_allclose(x.grad, x_grad, **tol)
            for name, param in mlp.named_parameters():
                assert param.grad.shape == param.data.shape
                np.testing.assert_allclose(param.grad, w_grads[name], **tol)
            mlp.zero_grad()

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_ragged_and_unsorted_graphs(self, backend_name, rng):
        sources = np.array([1, 2, 3, 0, 0, 4, 4, 4, 4])
        targets = np.array([1, 1, 1, 2, 4, 4, 4, 4, 4])
        ragged = np.stack([sources, targets])
        points = rng.normal(size=(6, 3)).astype(np.float32)
        shuffled = ragged[:, rng.permutation(ragged.shape[1])]
        for edge_index in (ragged, shuffled):
            for aggregator in ("sum", "mean", "max", "min"):
                with use_backend("numpy"):
                    want = fused_aggregate(Tensor(points), edge_index, "rel_pos", aggregator)
                with use_backend(backend_name):
                    got = fused_aggregate(Tensor(points), edge_index, "rel_pos", aggregator)
                np.testing.assert_allclose(got.data, want.data, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_empty_graph(self, backend_name):
        with use_backend(backend_name):
            x = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
            out = fused_aggregate(x, np.zeros((2, 0), dtype=np.int64), "rel_pos", "sum")
            out.sum().backward()
        assert out.shape == (4, 3)
        np.testing.assert_array_equal(out.data, 0.0)
        np.testing.assert_array_equal(x.grad, 0.0)

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_materialized_scatter_path(self, backend_name, rng):
        points = rng.normal(size=(20, 3)).astype(np.float32)
        edge_index = knn_graph(points, 4)
        for aggregator in ("sum", "mean", "max", "min"):
            with use_backend("numpy"):
                x_ref = Tensor(points.copy(), requires_grad=True)
                messages = build_messages(x_ref, edge_index, "rel_pos")
                want = scatter(messages, edge_index[1], 20, aggregator)
                want.sum().backward()
            with use_backend(backend_name):
                x = Tensor(points.copy(), requires_grad=True)
                messages = build_messages(x, edge_index, "rel_pos")
                got = scatter(messages, edge_index[1], 20, aggregator)
                got.sum().backward()
            np.testing.assert_allclose(got.data, want.data, rtol=1e-5, atol=1e-6)
            np.testing.assert_allclose(x.grad, x_ref.grad, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_functional_matmul_and_embedding(self, backend_name, rng):
        x2 = Tensor(rng.normal(size=(9, 200)).astype(np.float32), requires_grad=True)
        x3 = Tensor(rng.normal(size=(2, 5, 200)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(200, 6)).astype(np.float32), requires_grad=True)
        with use_backend("numpy"):
            want2 = matmul(x2, w)
            want3 = matmul(x3, w)
        with use_backend(backend_name):
            got2 = matmul(x2, w)
            got3 = matmul(x3, w)
            got2.sum().backward()
        np.testing.assert_allclose(got2.data, want2.data, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(got3.data, want3.data, rtol=1e-4, atol=1e-5)
        assert x2.grad.shape == x2.shape and w.grad.shape == w.shape

        table = Tensor(rng.normal(size=(7, 4)).astype(np.float32), requires_grad=True)
        indices = np.array([0, 3, 3, 6])
        with use_backend(backend_name):
            looked_up = embedding_lookup(table, indices)
            looked_up.sum().backward()
        np.testing.assert_array_equal(looked_up.data, table.data[indices])
        assert table.grad.shape == table.shape

    def test_numpy_backend_is_bit_identical_default(self, rng, request):
        """use_backend('numpy') must not change a single bit vs the ambient default."""
        if request.config.getoption("--backend") not in (None, "numpy"):
            pytest.skip("suite is pinned to a non-reference backend")
        points = rng.normal(size=(30, 3)).astype(np.float32)
        edge_index = knn_graph(points, 5)
        baseline = fused_aggregate(Tensor(points), edge_index, "target_rel", "mean")
        with use_backend("numpy"):
            pinned = fused_aggregate(Tensor(points), edge_index, "target_rel", "mean")
        np.testing.assert_array_equal(baseline.data, pinned.data)


class TestFusedToggleShims:
    """The deprecated boolean toggle now drives the backend registry."""

    def test_set_fused_kernels_switches_backends(self):
        assert fused_kernels_enabled()
        set_fused_kernels(False)
        try:
            assert active_backend_name() == "materialized"
            assert not fused_kernels_enabled()
        finally:
            set_fused_kernels(True)
        assert active_backend_name() == "numpy"
        assert fused_kernels_enabled()

    def test_use_fused_kernels_nested_toggle(self):
        """The PR-5 benchmark pattern: off, on inside, off inside that."""
        with use_fused_kernels(False):
            assert not fused_kernels_enabled()
            with use_fused_kernels(True):
                assert fused_kernels_enabled()
                with use_fused_kernels(False):
                    assert not fused_kernels_enabled()
                assert fused_kernels_enabled()
            assert not fused_kernels_enabled()
        assert fused_kernels_enabled()

    def test_materialized_backend_disables_model_dispatch(self, rng):
        conv = EdgeConv(3, 8, aggregator="max", message_type="target_rel",
                        rng=np.random.default_rng(2)).eval()
        points = rng.normal(size=(30, 3)).astype(np.float32)
        edge_index = knn_graph(points, 5)
        with no_grad():
            fused = conv(Tensor(points), edge_index)
            with use_backend("materialized"):
                materialized = conv(Tensor(points), edge_index)
        np.testing.assert_allclose(fused.data, materialized.data, rtol=1e-5, atol=1e-6)

    def test_enable_inside_non_fused_backend_falls_back_to_reference(self):
        with use_backend("materialized"):
            with use_fused_kernels(True):
                assert active_backend_name() == "numpy"
            assert active_backend_name() == "materialized"


class TestBackendPlumbing:
    def _clouds(self, rng, n=6):
        return [rng.standard_normal((24, 3)) for _ in range(n)]

    def _workspace_with_model(self, backend=None):
        from repro.nas.presets import device_fast_architecture

        workspace = Workspace(device="jetson-tx2", backend=backend)
        architecture = device_fast_architecture(workspace.device.name)
        deployed = workspace.deploy(architecture, num_classes=4, name="m", k=4)
        return workspace, deployed

    def test_engine_config_validates_backend(self):
        with pytest.raises(KeyError):
            EngineConfig(backend="not-a-backend")
        assert EngineConfig(backend="numpy-blocked").backend == "numpy-blocked"

    def test_engine_results_equivalent_across_backends(self, rng):
        workspace, deployed = self._workspace_with_model()
        clouds = self._clouds(rng)
        reference = InferenceEngine(workspace.registry, EngineConfig(max_batch_size=4))
        blocked = InferenceEngine(
            workspace.registry, EngineConfig(max_batch_size=4, backend="numpy-blocked")
        )
        want = reference.submit_many(deployed.name, clouds)
        got = blocked.submit_many(deployed.name, clouds)
        for a, b in zip(got, want):
            assert a.label == b.label
            np.testing.assert_allclose(a.logits, b.logits, rtol=1e-4, atol=1e-5)

    def test_workspace_threads_backend_into_engine(self, rng):
        workspace, deployed = self._workspace_with_model(backend="numpy-blocked")
        assert workspace.backend == "numpy-blocked"
        report = workspace.serve(self._clouds(rng, 4), name=deployed.name)
        assert len(report.results) == 4
        assert workspace.engine().config.backend == "numpy-blocked"

    def test_workspace_rejects_unknown_backend(self):
        with pytest.raises(KeyError):
            Workspace(device="jetson-tx2", backend="not-a-backend")

    def test_workspace_records_backend_in_spans(self, rng):
        from repro.obs import get_tracer, reset_observability

        reset_observability()
        workspace, deployed = self._workspace_with_model(backend="numpy-blocked")
        workspace.serve(self._clouds(rng, 2), name=deployed.name)
        spans = {span.name: span for span in get_tracer().spans}
        assert spans["workspace.serve"].attributes["backend"] == "numpy-blocked"
        assert spans["workspace.deploy"].attributes["backend"] == "numpy-blocked"
        reset_observability()

    def test_calibrate_backend_target(self):
        target = calibrate_backend_target("numpy", repeats=1, num_points=64, k=4)
        assert target.backend == "numpy"
        assert target.name == "numpy-host"
        assert abs(sum(target.breakdown.values()) - 1.0) < 1e-9
        assert target.dgcnn_peak_memory_mb > target.base_memory_mb
        coefficients = calibrate_coefficients(target)
        assert all(value > 0 for value in coefficients.values())

    def test_paper_targets_are_analytic(self):
        assert all(target.backend == "analytic" for target in PAPER_TARGETS.values())

    def test_cli_backends_subcommand(self, capsys):
        assert cli_main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy-blocked" in out
        assert "materialized" in out

    def test_cli_serve_with_backend(self, capsys):
        code = cli_main(
            ["serve", "--requests", "4", "--num-points", "16", "--backend", "numpy-blocked"]
        )
        assert code == 0
        assert cli_main(["serve", "--requests", "1", "--backend", "bogus"]) == 2
