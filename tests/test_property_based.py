"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import degree, knn_graph, scatter_mean, scatter_sum, validate_edge_index
from repro.hardware import estimate_latency, estimate_peak_memory, get_device
from repro.nas import Architecture, DesignSpace, DesignSpaceConfig, OperationType
from repro.nas.ops import FunctionSet, random_function_set
from repro.nn import Tensor
from repro.nn import functional as F
from repro.predictor import FEATURE_DIM, architecture_to_graph

_DEVICES = ("rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi")


@st.composite
def architectures(draw):
    """Random architectures over the full operation/function space."""
    num_positions = draw(st.integers(min_value=2, max_value=12).filter(lambda n: n % 2 == 0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return Architecture.random(num_positions, rng)


class TestTensorProperties:
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, values):
        probs = F.softmax(Tensor(np.array(values))).data
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-9)

    @given(
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_backward_is_ones(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((rows, cols)))


class TestScatterProperties:
    @given(st.integers(1, 40), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_scatter_sum_conserves_mass(self, num_edges, dim_size, seed):
        rng = np.random.default_rng(seed)
        src = Tensor(rng.normal(size=(num_edges, 3)))
        index = rng.integers(0, dim_size, size=num_edges)
        out = scatter_sum(src, index, dim_size)
        np.testing.assert_allclose(out.data.sum(axis=0), src.data.sum(axis=0), atol=1e-9)

    @given(st.integers(1, 40), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_scatter_mean_bounded_by_extremes(self, num_edges, dim_size, seed):
        rng = np.random.default_rng(seed)
        src = Tensor(rng.normal(size=(num_edges, 2)))
        index = rng.integers(0, dim_size, size=num_edges)
        out = scatter_mean(src, index, dim_size).data
        # Empty segments are defined to be zero; only check populated ones.
        populated = np.bincount(index, minlength=dim_size) > 0
        assert out[populated].min() >= src.data.min() - 1e-9
        assert out[populated].max() <= src.data.max() + 1e-9


class TestGraphProperties:
    @given(st.integers(5, 40), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_knn_graph_in_degree_constant(self, num_points, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(num_points, 3))
        edge_index = knn_graph(points, k)
        validate_edge_index(edge_index, num_points)
        k_eff = min(k, num_points - 1)
        assert np.all(degree(edge_index, num_points, "in") == k_eff)
        assert not np.any(edge_index[0] == edge_index[1])


class TestArchitectureProperties:
    @given(architectures())
    @settings(max_examples=50, deadline=None)
    def test_serialisation_roundtrip(self, architecture):
        clone = Architecture.from_dict(architecture.to_dict())
        assert clone.key() == architecture.key()
        assert clone.output_dim() == architecture.output_dim()

    @given(architectures())
    @settings(max_examples=50, deadline=None)
    def test_effective_ops_invariants(self, architecture):
        ops = architecture.effective_ops()
        # No two consecutive samples survive merging, and dims chain correctly.
        previous_kind = None
        dim = architecture.input_dim
        for op in ops:
            assert not (op.kind == "sample" and previous_kind == "sample")
            assert op.in_dim == dim
            dim = op.out_dim
            previous_kind = op.kind
        assert architecture.output_dim() == dim

    @given(architectures())
    @settings(max_examples=30, deadline=None)
    def test_workload_latency_memory_positive(self, architecture):
        workload = architecture.to_workload(256, 8, 10)
        for device_name in _DEVICES:
            device = get_device(device_name)
            assert estimate_latency(workload, device).total_ms > 0
            assert estimate_peak_memory(workload, device).peak_mb >= device.base_memory_mb

    @given(architectures())
    @settings(max_examples=30, deadline=None)
    def test_predictor_graph_well_formed(self, architecture):
        graph = architecture_to_graph(architecture, num_points=256, k=8)
        assert graph.features.shape == (graph.num_nodes, FEATURE_DIM)
        assert graph.adjacency.shape == (graph.num_nodes, graph.num_nodes)
        assert np.all((graph.adjacency == 0) | (graph.adjacency == 1))

    @given(st.integers(0, 2**31 - 1), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_mutation_preserves_length(self, seed, num_mutations):
        rng = np.random.default_rng(seed)
        space = DesignSpace(DesignSpaceConfig(num_positions=8))
        arch = space.random_architecture(rng)
        mutated = space.mutate_operations(arch, rng, num_mutations)
        assert mutated.num_positions == arch.num_positions
        diffs = sum(a is not b for a, b in zip(arch.operations, mutated.operations))
        assert 1 <= diffs <= num_mutations

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_function_set_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        functions = random_function_set(rng)
        assert isinstance(functions, FunctionSet)
        # Construction validates every field; re-build from dict to be sure.
        assert FunctionSet.from_dict(functions.to_dict()) == functions


class TestHardwareProperties:
    @given(st.sampled_from(_DEVICES), st.integers(64, 2048))
    @settings(max_examples=40, deadline=None)
    def test_latency_monotone_in_points(self, device_name, num_points):
        from repro.hardware import dgcnn_workload

        device = get_device(device_name)
        smaller = estimate_latency(dgcnn_workload(num_points), device).total_ms
        larger = estimate_latency(dgcnn_workload(num_points * 2), device).total_ms
        assert larger > smaller

    @given(architectures())
    @settings(max_examples=30, deadline=None)
    def test_workload_mirrors_effective_ops(self, architecture):
        """The lowered workload is the effective op chain plus pooling+classifier."""
        ops = architecture.effective_ops()
        workload = architecture.to_workload(256, 8, 10)
        assert len(workload) == len(ops) + 2
        sample_ops = workload.count("knn_sample") + workload.count("random_sample")
        assert sample_ops == architecture.num_valid_samples()
        _ = OperationType  # imported for other tests in this module
