"""Tests for the high-level API and an end-to-end integration scenario."""

import numpy as np
import pytest

from repro import api
from repro.hardware import estimate_latency, get_device
from repro.nas import HGNASConfig, dgcnn_architecture, rtx_fast_architecture
from repro.nas.trainer import evaluate_classifier, train_classifier


class TestApi:
    def test_profile_architecture(self):
        profile = api.profile_architecture(dgcnn_architecture(), "gpu")
        assert profile.total_latency_ms > 0
        assert profile.device == "rtx3080"

    def test_measure_latency_oracle_vs_noisy(self):
        arch = rtx_fast_architecture()
        clean = api.measure_latency(arch, "pi")
        noisy = api.measure_latency(arch, "pi", noisy=True, seed=1)
        expected = estimate_latency(arch.to_workload(1024, 20, 40), get_device("pi")).total_ms
        assert clean == pytest.approx(expected)
        assert noisy != pytest.approx(clean)

    def test_train_latency_predictor_small(self):
        bundle = api.train_latency_predictor("rtx3080", num_samples=60, epochs=15, seed=0)
        assert bundle.device == "rtx3080"
        assert bundle.metrics.num_samples > 0
        prediction = bundle.predictor.predict_latency_ms(dgcnn_architecture())
        assert prediction > 0

    def test_build_model(self, tiny_train):
        model = api.build_model(rtx_fast_architecture(), num_classes=4, k=4, embed_dim=16)
        from repro.data import collate

        logits = model(collate([tiny_train[0], tiny_train[1]]))
        assert logits.shape == (2, 4)

    def test_search_architecture_invalid_oracle(self, tiny_train, tiny_test):
        with pytest.raises(ValueError):
            api.search_architecture("gpu", tiny_train, tiny_test, latency_oracle="psychic")


class TestEndToEnd:
    def test_search_then_deploy(self, tiny_train, tiny_test):
        """Full pipeline: search -> derive model -> train -> profile."""
        config = HGNASConfig(
            num_positions=6,
            hidden_dim=12,
            supernet_k=4,
            num_classes=tiny_train.num_classes,
            population_size=4,
            function_iterations=1,
            operation_iterations=2,
            function_epochs=1,
            operation_epochs=1,
            batch_size=5,
            eval_max_batches=1,
            paths_per_function_eval=1,
            deploy_num_points=512,
            deploy_k=10,
            seed=0,
        )
        result = api.search_architecture("jetson-tx2", tiny_train, tiny_test, config=config)
        assert result.best_latency_ms > 0

        # The searched design must be cheaper than DGCNN on the target device.
        device = get_device("jetson-tx2")
        dgcnn_latency = estimate_latency(dgcnn_architecture(6).to_workload(512, 10, 4), device).total_ms
        assert result.best_latency_ms <= dgcnn_latency * 1.5

        model = api.build_model(result.best_architecture, num_classes=tiny_train.num_classes, k=4, embed_dim=16)
        history = train_classifier(model, tiny_train, epochs=2, batch_size=5, rng=np.random.default_rng(0))
        assert history.num_epochs == 2
        metrics = evaluate_classifier(model, tiny_test, batch_size=5)
        assert 0.0 <= metrics.overall_accuracy <= 1.0

        profile = api.profile_architecture(result.best_architecture, device, num_points=512, k=10, num_classes=4)
        assert not profile.out_of_memory
